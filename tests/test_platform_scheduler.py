"""Tests for the core-pool scheduler: FIFO, preemption, RTC, DVFS, EWT."""

import pytest

from repro.hardware.energy import EnergyMeter
from repro.hardware.core import Core
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


def make_pool(env, n_cores=1, freq=3.0, **kwargs):
    meter = EnergyMeter()
    power = PowerModel()
    cores = [Core(env, i, power, meter, freq) for i in range(n_cores)]
    kwargs.setdefault("context_switch_s", 0.0)
    return CorePoolScheduler(env, cores, frequency_ghz=freq, **kwargs), meter


def simple_job(env, run_s=1.0, blocks=(), deadline=None, arrival=None):
    segments = [RunSegment(WorkUnit(gcycles=run_s * 3.0))]
    for block_s, next_run_s in blocks:
        segments.append(BlockSegment(block_s))
        segments.append(RunSegment(WorkUnit(gcycles=next_run_s * 3.0)))
    spec = InvocationSpec("fn", segments)
    return Job(env, spec, "bench",
               arrival_s=env.now if arrival is None else arrival,
               deadline_s=deadline)


class TestFifoExecution:
    def test_single_job_runs_to_completion(self):
        env = Environment()
        pool, _ = make_pool(env)
        job = simple_job(env, run_s=2.0)
        pool.submit(job)
        env.run()
        assert job.finished
        assert job.completion_time == pytest.approx(2.0)
        assert pool.stats.served == 1

    def test_fifo_order_on_one_core(self):
        env = Environment()
        pool, _ = make_pool(env)
        jobs = [simple_job(env, run_s=1.0) for _ in range(3)]
        for job in jobs:
            pool.submit(job)
        env.run()
        ends = [job.completion_time for job in jobs]
        assert ends == sorted(ends)
        assert ends[-1] == pytest.approx(3.0)

    def test_parallel_cores_share_queue(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=2)
        jobs = [simple_job(env, run_s=1.0) for _ in range(4)]
        for job in jobs:
            pool.submit(job)
        env.run()
        assert max(j.completion_time for j in jobs) == pytest.approx(2.0)

    def test_queue_time_measured(self):
        env = Environment()
        pool, _ = make_pool(env)
        first = simple_job(env, run_s=2.0)
        second = simple_job(env, run_s=1.0)
        pool.submit(first)
        pool.submit(second)
        env.run()
        assert second.t_queue == pytest.approx(2.0)
        assert pool.stats.total_wait_s == pytest.approx(2.0)

    def test_context_switch_cost_delays_start(self):
        env = Environment()
        pool, _ = make_pool(env, context_switch_s=0.1)
        job = simple_job(env, run_s=1.0)
        pool.submit(job)
        env.run()
        assert job.completion_time == pytest.approx(1.1)


class TestBlockingBehaviour:
    def test_switch_on_idle_overlaps_block_with_other_work(self):
        env = Environment()
        pool, _ = make_pool(env, switch_on_idle=True)
        blocker = simple_job(env, run_s=0.5, blocks=[(2.0, 0.5)])
        filler = simple_job(env, run_s=1.0)
        pool.submit(blocker)
        pool.submit(filler)
        env.run()
        # Filler runs inside blocker's 2 s I/O window.
        assert filler.completion_time == pytest.approx(1.5)
        assert blocker.completion_time == pytest.approx(3.0)

    def test_run_to_completion_holds_core_through_block(self):
        env = Environment()
        pool, _ = make_pool(env, switch_on_idle=False)
        blocker = simple_job(env, run_s=0.5, blocks=[(2.0, 0.5)])
        filler = simple_job(env, run_s=1.0)
        pool.submit(blocker)
        pool.submit(filler)
        env.run()
        assert blocker.completion_time == pytest.approx(3.0)
        # Filler had to wait for the whole blocker, idle time included.
        assert filler.completion_time == pytest.approx(4.0)

    def test_block_time_recorded(self):
        env = Environment()
        pool, _ = make_pool(env)
        job = simple_job(env, run_s=0.5, blocks=[(1.5, 0.5)])
        pool.submit(job)
        env.run()
        assert job.t_block == pytest.approx(1.5)
        assert job.t_run == pytest.approx(1.0)

    def test_blocked_counter_tracks_parked_jobs(self):
        env = Environment()
        pool, _ = make_pool(env)
        job = simple_job(env, run_s=0.5, blocks=[(2.0, 0.5)])
        pool.submit(job)
        env.run(until=1.0)
        assert pool.blocked_count == 1
        assert pool.load == 1
        env.run()
        assert pool.blocked_count == 0


class TestPreemption:
    def test_older_ready_job_preempts_youngest_running(self):
        env = Environment()
        pool, _ = make_pool(env, preemptive=True)
        old = simple_job(env, run_s=0.2, blocks=[(1.0, 0.5)], arrival=0.0)
        pool.submit(old)
        env.run(until=0.5)  # old is now blocked until t=1.2
        young = simple_job(env, run_s=5.0)
        pool.submit(young)   # starts at 0.5 on the only core
        env.run()
        # At t=1.2 old returns and preempts young.
        assert old.completion_time == pytest.approx(1.7)
        assert pool.stats.preemptions == 1
        # Young resumes after old finishes; its work is conserved.
        assert young.completion_time == pytest.approx(0.5 + 5.0 + 0.5)

    def test_non_preemptive_pool_waits(self):
        env = Environment()
        pool, _ = make_pool(env, preemptive=False)
        old = simple_job(env, run_s=0.2, blocks=[(1.0, 0.5)])
        pool.submit(old)
        env.run(until=0.5)
        young = simple_job(env, run_s=5.0)
        pool.submit(young)
        env.run()
        assert pool.stats.preemptions == 0
        # Young starts at 0.5 (the core idles while old blocks) and runs
        # till 5.5; old returns at 1.2 but must wait, finishing at 6.0.
        assert old.completion_time == pytest.approx(6.0)

    def test_younger_ready_job_does_not_preempt_older_running(self):
        env = Environment()
        pool, _ = make_pool(env, preemptive=True)
        first = simple_job(env, run_s=3.0)
        pool.submit(first)
        env.run(until=1.0)
        second = simple_job(env, run_s=1.0)
        pool.submit(second)
        env.run()
        assert pool.stats.preemptions == 0
        assert first.completion_time == pytest.approx(3.0)


class TestFrequencyHandling:
    def test_per_job_frequency_runs_at_chosen_speed(self):
        env = Environment()
        pool, _ = make_pool(env, per_job_frequency=True)
        job = simple_job(env, run_s=1.0)  # 3 gcycles
        job.chosen_freq_ghz = 1.5
        pool.submit(job)
        env.run()
        assert job.completion_time == pytest.approx(2.0)

    def test_switch_cost_paid_when_frequency_differs(self):
        env = Environment()
        pool, _ = make_pool(env, per_job_frequency=True,
                            switch_cost=lambda: 0.25)
        job = simple_job(env, run_s=1.0)
        job.chosen_freq_ghz = 1.5
        pool.submit(job)
        env.run()
        assert job.completion_time == pytest.approx(0.25 + 2.0)
        assert pool.stats.frequency_switches == 1

    def test_no_switch_cost_when_frequency_matches(self):
        env = Environment()
        pool, _ = make_pool(env, per_job_frequency=True,
                            switch_cost=lambda: 0.25)
        job = simple_job(env, run_s=1.0)
        job.chosen_freq_ghz = 3.0
        pool.submit(job)
        env.run()
        assert job.completion_time == pytest.approx(1.0)
        assert pool.stats.frequency_switches == 0

    def test_set_frequency_retunes_pool_and_running_jobs(self):
        env = Environment()
        pool, _ = make_pool(env, freq=3.0)
        job = simple_job(env, run_s=2.0)  # 6 gcycles
        pool.submit(job)
        env.run(until=1.0)  # 3 gcycles left
        pool.set_frequency(1.5)
        env.run()
        assert job.completion_time == pytest.approx(3.0)
        assert pool.frequency_ghz == 1.5

    def test_set_frequency_with_cost_stalls_running_job(self):
        env = Environment()
        pool, _ = make_pool(env, freq=3.0)
        job = simple_job(env, run_s=2.0)
        pool.submit(job)
        env.run(until=1.0)
        pool.set_frequency(1.5, cost_s=0.5)
        env.run()
        assert job.completion_time == pytest.approx(3.5)

    def test_invalid_frequency_rejected(self):
        env = Environment()
        pool, _ = make_pool(env)
        with pytest.raises(ValueError):
            pool.set_frequency(0.0)


class TestEwtCounter:
    def test_ewt_tracks_registered_run_seconds(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=2)
        jobs = [simple_job(env, run_s=1.0) for _ in range(4)]
        for job in jobs:
            pool.submit(job)
        assert pool.ewt_seconds == pytest.approx(4.0)
        assert pool.estimated_queue_seconds() == pytest.approx(2.0)
        env.run()
        assert pool.ewt_seconds == pytest.approx(0.0)

    def test_ewt_uses_explicit_registration_when_present(self):
        env = Environment()
        pool, _ = make_pool(env)
        job = simple_job(env, run_s=1.0)
        job.registered_run_seconds = 7.0
        pool.submit(job)
        assert pool.ewt_seconds == pytest.approx(7.0)
        env.run()
        assert pool.ewt_seconds == pytest.approx(0.0)

    def test_empty_pool_estimate_is_infinite(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=1)
        core = pool.release_idle_core()
        assert core is not None
        assert pool.estimated_queue_seconds() == float("inf")

    def test_ewt_estimate_approximates_actual_wait(self):
        """The paper's T_Queue ~= EWT / n_cores claim, on a saturated
        FIFO pool with uniform jobs."""
        env = Environment()
        pool, _ = make_pool(env, n_cores=2)
        for _ in range(10):
            pool.submit(simple_job(env, run_s=1.0))
        latecomer = simple_job(env, run_s=1.0)
        predicted = pool.estimated_queue_seconds()
        pool.submit(latecomer)
        env.run()
        assert latecomer.t_queue == pytest.approx(predicted, rel=0.05)


class TestElasticity:
    def test_add_core_increases_parallelism(self):
        env = Environment()
        pool, meter = make_pool(env, n_cores=1)
        extra = Core(env, 99, PowerModel(), meter, 3.0)
        pool.add_core(extra)
        jobs = [simple_job(env, run_s=1.0) for _ in range(2)]
        for job in jobs:
            pool.submit(job)
        env.run()
        assert max(j.completion_time for j in jobs) == pytest.approx(1.0)

    def test_add_core_retunes_to_pool_frequency(self):
        env = Environment()
        pool, meter = make_pool(env, n_cores=1, freq=1.5)
        extra = Core(env, 99, PowerModel(), meter, 3.0)
        pool.add_core(extra)
        assert extra.frequency == 1.5

    def test_duplicate_core_rejected(self):
        env = Environment()
        pool, meter = make_pool(env, n_cores=1)
        with pytest.raises(ValueError):
            pool.add_core(pool.cores[0])

    def test_release_idle_core(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=2)
        core = pool.release_idle_core()
        assert core is not None
        assert pool.n_cores == 1

    def test_release_when_all_busy_returns_none(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=1)
        pool.submit(simple_job(env, run_s=5.0))
        assert pool.release_idle_core() is None

    def test_request_core_removal_releases_after_job(self):
        env = Environment()
        released = []
        pool, _ = make_pool(env, n_cores=1)
        pool.on_core_released = released.append
        pool.submit(simple_job(env, run_s=1.0))
        assert pool.request_core_removal()
        env.run()
        assert len(released) == 1
        assert pool.n_cores == 0

    def test_request_core_removal_false_when_none_available(self):
        env = Environment()
        pool, _ = make_pool(env, n_cores=1)
        pool.submit(simple_job(env, run_s=5.0))
        assert pool.request_core_removal()
        assert not pool.request_core_removal()


class TestStats:
    def test_reset_returns_snapshot_and_zeroes(self):
        env = Environment()
        pool, _ = make_pool(env)
        pool.submit(simple_job(env, run_s=1.0))
        env.run()
        snapshot = pool.stats.reset()
        assert snapshot.served == 1
        assert pool.stats.served == 0

    def test_boost_and_lower_flags_counted(self):
        env = Environment()
        pool, _ = make_pool(env)
        job = simple_job(env, run_s=1.0)
        job.boosted = True
        job.wanted_lower_freq = True
        pool.submit(job)
        assert pool.stats.boosted == 1
        assert pool.stats.wanted_lower_freq == 1

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_pool(env, context_switch_s=-1.0)
