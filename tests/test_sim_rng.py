"""Unit and property tests for the named RNG registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, stable_hash


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("arrivals") is reg.stream("arrivals")


def test_different_names_are_independent():
    reg = RngRegistry(seed=1)
    a = reg.stream("a").random(100)
    b = reg.stream("b").random(100)
    assert not np.allclose(a, b)


def test_same_seed_replays_identically():
    a = RngRegistry(seed=7).stream("x").random(50)
    b = RngRegistry(seed=7).stream("x").random(50)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(50)
    b = RngRegistry(seed=2).stream("x").random(50)
    assert not np.array_equal(a, b)


def test_fresh_resets_stream_state():
    reg = RngRegistry(seed=3)
    first = reg.fresh("s").random(10)
    reg.fresh("s").random(5)  # consume from a throwaway generator
    again = reg.fresh("s").random(10)
    assert np.array_equal(first, again)


def test_spawn_derives_distinct_registry():
    reg = RngRegistry(seed=5)
    child = reg.spawn(1)
    assert child.seed != reg.seed
    a = reg.fresh("x").random(20)
    b = child.fresh("x").random(20)
    assert not np.array_equal(a, b)


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry(seed="abc")


@given(st.text())
def test_stable_hash_is_deterministic(name):
    assert stable_hash(name) == stable_hash(name)


@given(st.text(), st.integers(min_value=0, max_value=2**31 - 1))
def test_stream_draw_reproducible_for_any_name(name, seed):
    a = RngRegistry(seed=seed).fresh(name).random(3)
    b = RngRegistry(seed=seed).fresh(name).random(3)
    assert np.array_equal(a, b)


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=100))
def test_spawn_chain_stays_in_int32_range(seed, offset):
    child = RngRegistry(seed=seed).spawn(offset)
    assert 0 <= child.seed < 2**31
