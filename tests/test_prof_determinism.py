"""Self-profiling must not perturb the simulation, and must conserve wall.

Three guarantees:

* with ``repro.obs.prof`` imported but no profiler installed, the
  reference runs still reproduce the stored seed fingerprints
  byte-for-byte (including under chaos) — profiler-off is bit-identical;
* a *profiled* run produces bit-identical metrics to an unprofiled run
  of the same seed (the profiler reads only the host wall-clock);
* the profiler's attributed self-times sum to at least 90% of the
  externally measured wall-time (the wall-conservation contract of
  ``repro profile``).
"""

import pytest

import repro.obs.prof  # noqa: F401 - importable-but-unbound is the point
from tests.fingerprints import (
    cluster_fingerprint,
    current_fingerprints,
    load_reference,
    reference_runs,
)
from repro.obs import prof

MIN_CONSERVATION = 0.90


def test_profiler_off_reproduces_seed_fingerprints():
    """The hard opt-in contract, chaos run included."""
    assert prof.active() is None
    assert current_fingerprints() == load_reference()


def test_profiled_runs_are_bit_identical_to_unprofiled():
    for label, factory in reference_runs():
        plain = cluster_fingerprint(factory())
        profiler = prof.install(prof.Profiler())
        try:
            profiler.start()
            profiled_cluster = factory()
            profiler.stop()
        finally:
            prof.uninstall()
        assert cluster_fingerprint(profiled_cluster) == plain, label
        # And the profiler actually observed the run.
        assert profiler.pops > 0, label
        assert any("kernel.dispatch" in path
                   for path in profiler.self_s), label


def test_wall_conservation_on_quick_profile():
    from repro.obs import bench

    document = bench.run_profile(scales=(1,), quick=True)
    (entry,) = document["scales"]
    assert entry["wall_conservation"] >= MIN_CONSERVATION
    assert entry["profiled_s"] == pytest.approx(
        sum(row["self_s"] for row in entry["components"]), rel=1e-3)
    assert entry["events_per_s"] > 0
    assert entry["collapsed"].strip()
    # The scenario touches every heavily instrumented layer.
    names = {row["component"] for row in entry["components"]}
    assert {"kernel.dispatch", "core.predictor",
            "hardware.energy"} <= names


def test_profile_document_is_seed_deterministic_in_sim_metrics():
    from repro.obs import bench

    first = bench.run_profile(scales=(1,), quick=True)
    second = bench.run_profile(scales=(1,), quick=True)
    assert first["scales"][0]["sim_metrics"] == \
        second["scales"][0]["sim_metrics"]
