"""Tests for the NumPy MLP regressor (the input-aware predictor core)."""

import numpy as np
import pytest

from repro.core.mlp import MLPRegressor


def make_polynomial_data(n, rng, irrelevant=2):
    """y = 0.05 * x0 (+ noise); extra features are pure noise."""
    x_rel = rng.lognormal(mean=1.0, sigma=0.5, size=(n, 1))
    x_noise = rng.uniform(0, 10, size=(n, irrelevant))
    x = np.hstack([x_rel, x_noise])
    y = 0.05 * x_rel[:, 0] * np.exp(rng.normal(0, 0.02, size=n))
    return x, y


class TestMLPRegressor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(0)
        with pytest.raises(ValueError):
            MLPRegressor(3, hidden=(0, 4))
        with pytest.raises(ValueError):
            MLPRegressor(3, learning_rate=0.0)

    def test_shape_validation(self):
        model = MLPRegressor(3)
        with pytest.raises(ValueError):
            model.partial_fit([[1.0, 2.0]], [1.0])
        with pytest.raises(ValueError):
            model.partial_fit([[1.0, 2.0, 3.0]], [1.0, 2.0])
        with pytest.raises(ValueError):
            model.predict([[1.0]])

    def test_log_target_rejects_nonpositive(self):
        model = MLPRegressor(2, log_target=True)
        with pytest.raises(ValueError):
            model.partial_fit([[1.0, 2.0]], [0.0])

    def test_predictions_positive_with_log_target(self):
        model = MLPRegressor(2, log_target=True, seed=0)
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 5, size=(50, 2))
        y = x[:, 0] * 0.1
        model.partial_fit(x, y, epochs=20)
        assert np.all(model.predict(x) > 0)

    def test_learns_linear_relation_under_4_percent_error(self):
        """The paper's claim: execution time from input features predicted
        with <4% mean error for polynomially input-dependent functions."""
        rng = np.random.default_rng(42)
        model = MLPRegressor(3, seed=1)
        x_train, y_train = make_polynomial_data(600, rng)
        for _ in range(60):
            idx = rng.choice(len(x_train), size=32, replace=False)
            model.partial_fit(x_train[idx], y_train[idx])
        x_test, y_test = make_polynomial_data(200, rng)
        pred = model.predict(x_test)
        error = np.mean(np.abs(pred - y_test) / y_test)
        assert error < 0.08  # generous bound; typical runs land near 3-5%

    def test_irrelevant_features_do_not_prevent_learning(self):
        """Fig. 4: training on *all* features costs almost nothing."""
        rng = np.random.default_rng(7)

        def error_with_irrelevant(k):
            model = MLPRegressor(1 + k, seed=2)
            x, y = make_polynomial_data(600, np.random.default_rng(3),
                                        irrelevant=k)
            for _ in range(60):
                idx = rng.choice(len(x), size=32, replace=False)
                model.partial_fit(x[idx], y[idx])
            x_t, y_t = make_polynomial_data(200, np.random.default_rng(4),
                                            irrelevant=k)
            return float(np.mean(np.abs(model.predict(x_t) - y_t) / y_t))

        selected = error_with_irrelevant(0)
        all_features = error_with_irrelevant(4)
        assert all_features < max(2.5 * selected, 0.10)

    def test_online_training_adapts_to_drift(self):
        model = MLPRegressor(1, seed=0)
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 3, size=(400, 1))
        model.partial_fit(x, 0.1 * x[:, 0], epochs=40)
        # The relation doubles; online updates must follow.
        for _ in range(80):
            xb = rng.uniform(1, 3, size=(32, 1))
            model.partial_fit(xb, 0.2 * xb[:, 0])
        test = np.array([[2.0]])
        assert model.predict(test)[0] == pytest.approx(0.4, rel=0.25)

    def test_deterministic_given_seed(self):
        x = [[1.0, 2.0]] * 8
        y = [0.5] * 8
        a = MLPRegressor(2, seed=5)
        b = MLPRegressor(2, seed=5)
        a.partial_fit(x, y, epochs=3)
        b.partial_fit(x, y, epochs=3)
        assert a.predict([[1.0, 2.0]])[0] == b.predict([[1.0, 2.0]])[0]

    def test_samples_seen_counts(self):
        model = MLPRegressor(1)
        model.partial_fit([[1.0], [2.0]], [1.0, 2.0])
        assert model.samples_seen == 2

    def test_predict_one(self):
        model = MLPRegressor(2, seed=0)
        model.partial_fit([[1.0, 1.0]] * 4, [2.0] * 4, epochs=10)
        value = model.predict_one([1.0, 1.0])
        assert isinstance(value, float)
        assert value > 0

    def test_prediction_latency_is_microseconds(self):
        """Section VIII-D: prediction takes 10-30 µs. Allow generous slack
        for interpreter overhead but require well under a millisecond."""
        import time
        model = MLPRegressor(6, seed=0)
        model.partial_fit([[1.0] * 6] * 8, [1.0] * 8)
        row = [1.0] * 6
        model.predict_one(row)  # warm up
        start = time.perf_counter()
        for _ in range(100):
            model.predict_one(row)
        per_call = (time.perf_counter() - start) / 100
        assert per_call < 1e-3
