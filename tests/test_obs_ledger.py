"""Energy-attribution ledger: conservation, classification, epochs.

The load-bearing property: across seeds and operating regimes (plain,
chaos faults, guarded overload, HA partition), the classified ledger
components sum to the hardware energy model's total within the 1e-6
relative tolerance — and attaching a ledger never perturbs the
simulation itself.
"""

import pytest

from repro import obs
from repro.baselines import PowerCtrlSystem
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import overload as overload_experiment
from repro.experiments import partition as partition_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultPlan
from repro.obs.ledger import EnergyConservationError, EnergyLedger, LedgerEntry
from repro.obs.registry import LEDGER_COMPONENTS
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy


def ecofaas():
    return EcoFaaSSystem(EcoFaaSConfig())


def scenario(name, seed):
    """(system_factory, trace, config, fault_plan) for one regime."""
    if name == "plain":
        return (ecofaas(), make_load_trace("low", 2, 6.0, seed=seed),
                ClusterConfig(n_servers=2, seed=seed, drain_s=4.0), None)
    if name == "chaos":
        plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"],
                                    seed=seed + 2)
        config = ClusterConfig(
            n_servers=2, seed=seed, drain_s=4.0,
            reliability=ReliabilityPolicy(max_retries=8,
                                          backoff_base_s=0.05))
        return (ecofaas(), make_load_trace("low", 2, 6.0, seed=seed),
                config, plan)
    if name == "overload":
        config = ClusterConfig(
            n_servers=2, seed=seed,
            guard=overload_experiment.guard_config(2, 20))
        return (ecofaas(),
                make_load_trace("high", 2, 6.0, seed=seed,
                                cores_per_server=20),
                config, None)
    assert name == "partition"
    config = ClusterConfig(
        n_servers=3, seed=seed, drain_s=8.0,
        reliability=partition_experiment.reliability_policy(),
        ha=partition_experiment.ha_config())
    return (ecofaas(), make_load_trace("low", 3, 16.0, seed=seed + 1),
            config, partition_experiment.partition_plan())


def run_with_ledger(name, seed):
    system, trace, config, plan = scenario(name, seed)
    ledger = EnergyLedger()
    obs.install(obs.Tracer(ledger=ledger))
    try:
        cluster = run_cluster(system, trace, config, fault_plan=plan)
    finally:
        obs.uninstall()
    return cluster, ledger


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("name",
                         ["plain", "chaos", "overload", "partition"])
def test_components_sum_to_hardware_energy(name, seed):
    cluster, ledger = run_with_ledger(name, seed)
    assert len(ledger.reports) == 1
    report = ledger.reports[0]
    assert report.ok
    assert report.rel_error <= EnergyLedger.TOLERANCE
    assert report.hardware_j == cluster.total_energy_j
    total = sum(report.by_component.values())
    assert total == pytest.approx(report.hardware_j, rel=1e-6)
    assert set(report.by_component) == set(LEDGER_COMPONENTS)
    for component, joules in report.by_component.items():
        assert joules >= 0.0, component


def test_ledger_run_is_bit_identical_to_plain_run():
    """Attaching a ledger must not perturb the simulation."""
    def fingerprint(cluster):
        m = cluster.metrics
        return (m.function_records, m.workflow_records, m.retries,
                m.failures,
                [s.meter.total_j for s in cluster.servers])

    system, trace, config, plan = scenario("plain", 3)
    bare = run_cluster(system, trace, config, fault_plan=plan)
    ledgered, _ = run_with_ledger("plain", 3)
    assert fingerprint(ledgered) == fingerprint(bare)


def test_chaos_attributes_retry_waste():
    _, ledger = run_with_ledger("chaos", 3)
    assert ledger.reports[0].by_component["retry_waste"] > 0.0


def test_run_to_completion_attributes_block_energy():
    """The RTC baseline holds cores through blocks; EcoFaaS releases
    them — the ledger's block component is the visible difference."""
    trace = make_load_trace("medium", 2, 8.0, seed=1)
    by_system = {}
    for factory in (PowerCtrlSystem, ecofaas):
        ledger = EnergyLedger()
        obs.install(obs.Tracer(ledger=ledger))
        try:
            run_cluster(factory(), trace,
                        ClusterConfig(n_servers=2, seed=1))
        finally:
            obs.uninstall()
        by_system[factory] = ledger.reports[0].by_component
    assert by_system[PowerCtrlSystem]["block"] > 0.0
    assert by_system[ecofaas]["block"] == 0.0


def test_epoch_components_sum_to_run_totals():
    _, ledger = run_with_ledger("plain", 3)
    totals = ledger.by_component(run=0)
    n_epochs, epoch_s = 8, 2.0
    rows = ledger.epoch_component_j(0, n_epochs, epoch_s)
    assert len(rows) == n_epochs
    for component in LEDGER_COMPONENTS:
        summed = sum(row[component] for row in rows)
        assert summed == pytest.approx(totals[component], rel=1e-9,
                                       abs=1e-9)


def test_aggregations_cover_every_joule():
    _, ledger = run_with_ledger("plain", 3)
    report = ledger.reports[0]
    assert sum(ledger.by_node(0).values()) == \
        pytest.approx(report.ledger_j, rel=1e-9)
    # Pool/benchmark/function only cover core-attributed energy.
    assert 0.0 < sum(ledger.by_benchmark(0).values()) < report.ledger_j
    assert set(ledger.by_node(0)) == {"node0", "node1"}


def test_conservation_violation_raises():
    ledger = EnergyLedger()
    ledger.begin_run(0, "synthetic")
    ledger.record_static("node0", 0.0, 1.0, 10.0)

    class FakeCluster:
        total_energy_j = 25.0

    with pytest.raises(EnergyConservationError):
        ledger.close_run(FakeCluster())
    assert not ledger.reports[0].ok


class FakeJob:
    def __init__(self, aborted=False, abandoned=False, is_prewarm=False,
                 cancelled=False):
        self.aborted = aborted
        self.abandoned = abandoned
        self.is_prewarm = is_prewarm
        self.cancelled = cancelled


def classify(raw, job=None, uid=None, shed_uids=frozenset(),
             doomed_uids=frozenset()):
    entry = LedgerEntry(run=0, t0=0.0, t1=1.0, joules=1.0, raw=raw,
                        uid=uid, job=job)
    return EnergyLedger._classify(entry, shed_uids, doomed_uids)


def test_classification_precedence():
    assert classify("idle") == "idle"
    assert classify("blocked_hold", job=FakeJob()) == "block"
    assert classify("freq_switch") == "freq_switch"
    assert classify("static") == "static"
    # Aborted/abandoned beats cold_start and shed.
    assert classify("active_setup", job=FakeJob(aborted=True)) == \
        "retry_waste"
    assert classify("active_run", job=FakeJob(abandoned=True)) == \
        "retry_waste"
    assert classify("active_setup", job=FakeJob()) == "cold_start"
    assert classify("active_run", job=FakeJob(is_prewarm=True)) == \
        "cold_start"
    assert classify("active_run", job=FakeJob(), uid=7,
                    shed_uids={7}) == "shed"
    assert classify("active_run", job=FakeJob(), uid=8,
                    shed_uids={7}) == "run"
    # Cancelled beats everything but the direct raws (repro.cancel).
    assert classify("active_setup", job=FakeJob(cancelled=True)) == \
        "cancelled"
    assert classify("active_run",
                    job=FakeJob(cancelled=True, abandoned=True)) == \
        "cancelled"
    # Doomed workflows beat shed; completed doomed work is its own bucket.
    assert classify("active_run", job=FakeJob(), uid=9,
                    shed_uids={9}, doomed_uids={9}) == "doomed"


def test_ledger_summary_is_json_serializable(tmp_path):
    import json

    _, ledger = run_with_ledger("plain", 3)
    path = tmp_path / "ledger.json"
    document = ledger.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["components"] == list(LEDGER_COMPONENTS)
    assert loaded["runs"][0]["conserved"] is True
    assert document["runs"][0]["label"] == "EcoFaaS"


def test_cli_ledger_audit_burnrate_flags(monkeypatch, tmp_path, capsys):
    """--ledger/--audit/--burnrate end to end through the CLI."""
    import importlib
    import json
    import sys
    import types

    import repro.cli as cli
    from repro.experiments.common import ExperimentResult

    def tiny_run(quick=True, seed=0):
        trace = make_load_trace("low", 1, 3.0, seed=3)
        run_cluster(ecofaas(), trace,
                    ClusterConfig(n_servers=1, seed=3))
        result = ExperimentResult("tiny", "cli smoke")
        result.add(value=1.0)
        return result

    module = types.ModuleType("fake_experiments.tiny")
    module.run = tiny_run
    sys.modules[module.__name__] = module
    monkeypatch.setattr(cli, "EXPERIMENTS", {"tiny": module.__name__})
    monkeypatch.setattr(importlib, "import_module",
                        lambda name: sys.modules[name])

    trace_path = tmp_path / "trace.json"
    ledger_path = tmp_path / "ledger.json"
    audit_path = tmp_path / "audit.jsonl"
    epochs_path = tmp_path / "epochs.csv"
    assert cli.main(["tiny", "--trace", str(trace_path),
                     "--ledger", str(ledger_path),
                     "--audit", str(audit_path), "--burnrate",
                     "--epoch-metrics", str(epochs_path)]) == 0
    out = capsys.readouterr().out
    assert "conservation OK" in out
    document = json.loads(ledger_path.read_text())
    assert document["runs"][0]["conserved"] is True
    assert audit_path.read_text().strip()
    # Ledger columns ride along in the epoch-metrics CSV.
    header = epochs_path.read_text().splitlines()[0]
    assert "energy_run_j" in header and "is_partial" in header


def test_cli_ledger_requires_trace():
    import pytest as _pytest

    from repro.cli import main

    with _pytest.raises(SystemExit):
        main(["fig16", "--ledger", "x.json"])
