"""repro.tenancy end-to-end: enforcement, capping, billing, conservation.

The acceptance bars from the tenancy issue:

* per-tenant ledger rollups sum to the cluster ledger total within 1e-6
  across plain / chaos / overload regimes (conservation property);
* a cap sweep produces monotonically non-increasing cluster energy;
* enforcement decisions leave audit records and trace instants, and the
  report/bill/explain pipelines surface them;
* tenancy-off runs still match the stored seed fingerprints, and armed
  runs are bitwise repeatable.
"""

import json

import pytest

from repro import obs
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.experiments.common import make_load_trace, run_cluster
from repro.experiments.overload import guard_config
from repro.faults.plan import FaultPlan
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.tenancy import (
    PowerCapConfig,
    TenancyConfig,
    TenantSpec,
)
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.workloads.registry import all_benchmarks, benchmark_names

from tests.fingerprints import (
    cluster_fingerprint,
    load_reference,
    reference_runs,
)

#: A tenant set that partitions every benchmark, with budgets small
#: enough that enforcement fires even on short test traces.
def tight_tenancy(power_cap=None, batch_budget_j=25.0):
    names = sorted(benchmark_names())
    third = len(names) // 3
    return TenancyConfig(
        tenants=(
            TenantSpec("alpha", tuple(names[:third]), budget_j=400.0,
                       window_s=4.0),
            TenantSpec("beta", tuple(names[third:2 * third]),
                       budget_j=150.0, window_s=4.0),
            TenantSpec("gamma", tuple(names[2 * third:]),
                       budget_j=batch_budget_j, window_s=4.0,
                       best_effort=True),
        ),
        meter_period_s=0.5,
        power_cap=power_cap,
    )


def run_armed(tenancy, trace=None, fault_plan=None, policy=None,
              guard=None, seed=3):
    config = ClusterConfig(n_servers=2, drain_s=4.0, seed=seed,
                           reliability=policy, guard=guard,
                           tenancy=tenancy)
    return run_cluster(
        EcoFaaSSystem(EcoFaaSConfig()),
        trace if trace is not None
        else make_load_trace("medium", 2, 6.0, seed=seed),
        config, fault_plan=fault_plan)


@pytest.fixture(scope="module")
def armed_artifacts(tmp_path_factory):
    """One enforced, capped, chaos-free run with every artifact exported."""
    out = tmp_path_factory.mktemp("tenancy")
    tracer = obs.install(obs.Tracer(ledger=obs.EnergyLedger()))
    audit = obs.install_audit(obs.AuditLog())
    try:
        cluster = run_armed(tight_tenancy(
            power_cap=PowerCapConfig(cap_w=150.0, period_s=0.5)))
    finally:
        obs.uninstall()
        obs.uninstall_audit()
    trace_path = str(out / "trace.json")
    ledger_path = str(out / "ledger.json")
    audit_path = str(out / "audit.jsonl")
    obs.write_chrome_trace(tracer, trace_path)
    tracer.ledger.write(ledger_path)
    audit.write(audit_path)
    return {"cluster": cluster, "tracer": tracer, "audit": audit,
            "trace": trace_path, "ledger": ledger_path,
            "audit_path": audit_path}


class TestEnforcement:
    def test_throttles_fired_and_were_recorded(self, armed_artifacts):
        cluster = armed_artifacts["cluster"]
        assert cluster.metrics.tenant_throttles > 0
        counts = cluster.tenancy.registry.throttle_counts
        assert sum(counts.values()) == cluster.metrics.tenant_throttles
        # The best-effort tenant, with the smallest budget, is hit first.
        assert counts.get("gamma", 0) > 0

    def test_best_effort_sheds_account_in_metrics(self, armed_artifacts):
        metrics = armed_artifacts["cluster"].metrics
        assert metrics.shed_count("tenant_budget") > 0

    def test_audit_records_every_throttle(self, armed_artifacts):
        audit = armed_artifacts["audit"]
        records = audit.of_kind("tenant_throttle")
        assert len(records) \
            == armed_artifacts["cluster"].metrics.tenant_throttles
        sample = records[0]
        assert sample.inputs["tenant"]
        assert sample.action["decision"] in ("shed", "throttled_admit",
                                             "throttled_drop")

    def test_trace_instants_match_the_count(self, armed_artifacts):
        tracer = armed_artifacts["tracer"]
        instants = [i for i in tracer.instants
                    if i.name == "tenant_throttle"]
        assert len(instants) \
            == armed_artifacts["cluster"].metrics.tenant_throttles


class TestPowerCap:
    def test_governor_stepped(self, armed_artifacts):
        metrics = armed_artifacts["cluster"].metrics
        assert metrics.power_cap_steps > 0
        assert metrics.power_cap_tightens > 0
        assert metrics.power_cap_steps \
            == metrics.power_cap_tightens + metrics.power_cap_releases

    def test_cap_step_instants_carry_epochs(self, armed_artifacts):
        tracer = armed_artifacts["tracer"]
        epochs = [i.args["epoch"] for i in tracer.instants
                  if i.name == "power_cap_step"]
        assert epochs and epochs == sorted(epochs)

    def test_cap_sweep_energy_is_monotone(self):
        """The issue's acceptance bar, in miniature: cap 100%→40%."""
        energies = []
        for cap_w in (None, 150.0, 80.0):
            cap = (PowerCapConfig(cap_w=cap_w, period_s=0.5)
                   if cap_w is not None else None)
            cluster = run_armed(tight_tenancy(power_cap=cap,
                                              batch_budget_j=1e6))
            energies.append(cluster.total_energy_j)
        assert energies[0] >= energies[1] >= energies[2], energies

    def test_schedule_change_bumps_epoch(self):
        cap = PowerCapConfig(cap_w=1e6, period_s=0.5,
                             schedule=((3.0, 120.0),))
        cluster = run_armed(tight_tenancy(power_cap=cap,
                                          batch_budget_j=1e6))
        governor = cluster.tenancy.governor
        assert governor.epoch > 0
        # After the schedule step the active cap is the scheduled one.
        assert governor._active_cap_w == pytest.approx(120.0)


class TestConservation:
    """Per-tenant rollups sum to the ledger total within 1e-6."""

    def check(self, tracer, cluster):
        ledger = tracer.ledger
        registry = cluster.tenancy.registry
        for report in ledger.reports:
            assert report.ok
            by_tenant = ledger.by_tenant(registry.tenant_name_of,
                                         run=report.run)
            total = sum(by_tenant.values())
            assert total == pytest.approx(report.ledger_j, rel=1e-6), (
                f"run {report.run}: tenant rollup {total} !="
                f" ledger {report.ledger_j}")
            bill = cluster.tenancy.bills[report.run]
            assert bill["total_j"] == pytest.approx(report.ledger_j,
                                                    rel=1e-6)

    def run_regime(self, regime):
        tracer = obs.install(obs.Tracer(ledger=obs.EnergyLedger()))
        try:
            if regime == "plain":
                cluster = run_armed(tight_tenancy())
            elif regime == "chaos":
                policy = ReliabilityPolicy(max_retries=8,
                                           backoff_base_s=0.05)
                plan = FaultPlan.calibrated(6.0, 2,
                                            ["WebServ", "CNNServ"],
                                            seed=5)
                cluster = run_armed(tight_tenancy(), fault_plan=plan,
                                    policy=policy)
            else:  # overload
                rate = 2.0 * rate_for_utilization(
                    all_benchmarks(), 1.0, total_cores=40)
                trace = generate_poisson_trace(PoissonLoadConfig(
                    benchmark_names(), rate_rps=rate, duration_s=6.0,
                    seed=7))
                cluster = run_armed(tight_tenancy(), trace=trace,
                                    guard=guard_config(2, 20))
        finally:
            obs.uninstall()
        return tracer, cluster

    @pytest.mark.parametrize("regime", ["plain", "chaos", "overload"])
    def test_rollup_sums_to_ledger_total(self, regime):
        tracer, cluster = self.run_regime(regime)
        assert cluster.metrics.completed_workflows() > 0
        self.check(tracer, cluster)


class TestReportAndBillPipelines:
    def test_report_text_has_tenant_section(self, armed_artifacts):
        text = obs.report(armed_artifacts["trace"])
        assert "tenants (energy share / billed cost / throttles)" in text
        assert "gamma" in text

    def test_report_json_has_tenant_rows(self, armed_artifacts):
        document = json.loads(obs.report(armed_artifacts["trace"],
                                         fmt="json"))
        rows = document["runs"][0]["tenants"]
        assert rows, "tenant rows missing from --format json"
        by_name = {row["tenant"]: row for row in rows}
        assert by_name["gamma"]["throttles"] > 0
        total_share = sum(row["energy_share"] for row in rows)
        assert total_share == pytest.approx(1.0, abs=1e-6)

    def test_report_without_tenancy_has_no_section(self, tmp_path):
        tracer = obs.install(obs.Tracer())
        try:
            run_armed(None)
        finally:
            obs.uninstall()
        path = str(tmp_path / "plain.json")
        obs.write_chrome_trace(tracer, path)
        text = obs.report(path)
        assert "tenants (energy share" not in text
        document = json.loads(obs.report(path, fmt="json"))
        assert document["runs"][0]["tenants"] == []

    def test_cli_bill_text_and_json(self, armed_artifacts, capsys):
        from repro.cli import main
        names = sorted(benchmark_names())
        third = len(names) // 3
        argv = ["bill", armed_artifacts["ledger"],
                "--tenant", "alpha=" + ",".join(names[:third]),
                "--tenant", "beta=" + ",".join(names[third:2 * third]),
                "--tenant", "gamma=" + ",".join(names[2 * third:])]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "energy bill" in text and "Jain" in text
        assert main(argv + ["--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        bill = document["runs"][0]["bill"]
        with open(armed_artifacts["ledger"]) as handle:
            ledger_doc = json.load(handle)
        assert bill["total_j"] == pytest.approx(
            ledger_doc["runs"][0]["ledger_j"], rel=1e-6)

    def test_cli_bill_rejects_bad_tenant_spec(self, armed_artifacts,
                                              capsys):
        from repro.cli import main
        assert main(["bill", armed_artifacts["ledger"],
                     "--tenant", "nonsense"]) == 2
        capsys.readouterr()

    def test_explain_names_budget_and_cap(self, armed_artifacts):
        from repro.obs.explain import (
            explain,
            load_explain_data,
            missed_workflows,
        )
        data = load_explain_data(armed_artifacts["trace"],
                                 audit_path=armed_artifacts["audit_path"])
        kinds = set()
        for span in missed_workflows(data)[:20]:
            result = explain(data, span.uid, run=span.run)
            kinds |= {c["kind"] for c in result["causes"]}
        assert "tenant_budget" in kinds or "power_cap" in kinds, (
            "no missed workflow was explained by a tenancy cause despite"
            " throttles and cap steps firing in this run")


class TestTenancyOffDeterminism:
    """No TenancyConfig == the pre-tenancy code path, to the byte."""

    @pytest.mark.parametrize("label", ["baseline", "ecofaas",
                                       "ecofaas_chaos"])
    def test_reference_fingerprint_is_reproduced(self, label):
        reference = load_reference()
        factory = dict(reference_runs())[label]
        assert cluster_fingerprint(factory()) == reference[label], (
            f"tenancy-off run {label!r} no longer matches the stored seed"
            f" fingerprint — an unarmed code path changed behaviour")


class TestArmedDeterminism:
    def test_armed_runs_are_bitwise_repeatable(self):
        def run():
            return run_armed(tight_tenancy(
                power_cap=PowerCapConfig(cap_w=150.0, period_s=0.5)))
        first, second = run(), run()
        assert cluster_fingerprint(first) == cluster_fingerprint(second)
        # Repeatability is not vacuous: enforcement and capping fired.
        assert first.metrics.tenant_throttles > 0
        assert first.metrics.power_cap_steps > 0
        assert (first.metrics.tenant_throttles
                == second.metrics.tenant_throttles)

    def test_armed_chaos_runs_are_bitwise_repeatable(self):
        policy = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05)

        def run():
            plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"],
                                        seed=5)
            return run_armed(tight_tenancy(), fault_plan=plan,
                             policy=policy)
        assert cluster_fingerprint(run()) == cluster_fingerprint(run())

    def test_armed_differs_from_unarmed(self):
        """Sanity: the tenancy layer is live once configured."""
        armed = run_armed(tight_tenancy(
            power_cap=PowerCapConfig(cap_w=150.0, period_s=0.5)))
        plain = run_armed(None)
        assert cluster_fingerprint(armed) != cluster_fingerprint(plain)
