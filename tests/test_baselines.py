"""Integration tests: cluster + Baseline and Baseline+PowerCtrl systems."""

import pytest

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.baselines.powerctrl import proportional_deadlines
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.registry import all_benchmarks, workflow_for


def small_trace(names, rate=20.0, duration=10.0, seed=1):
    return generate_poisson_trace(
        PoissonLoadConfig(names, rate_rps=rate, duration_s=duration,
                          seed=seed))


def run_cluster(system, trace, n_servers=2, seed=3, drain=30.0):
    env = Environment()
    cluster = Cluster(env, system,
                      ClusterConfig(n_servers=n_servers, seed=seed,
                                    drain_s=drain))
    cluster.run_trace(trace)
    return cluster


class TestProportionalDeadlines:
    def test_deadlines_are_cumulative_and_end_at_slo(self):
        workflow = workflow_for("eBank")
        deadlines = proportional_deadlines(workflow, arrival_s=100.0,
                                           slo_s=2.0)
        values = [deadlines[f.name] for f in workflow.functions]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(102.0)

    def test_parallel_stage_members_share_a_deadline(self):
        workflow = workflow_for("MLTune")
        deadlines = proportional_deadlines(workflow, 0.0, 10.0)
        stage = workflow.stages[1]
        stage_deadlines = {deadlines[f.name] for f in stage.functions}
        assert len(stage_deadlines) == 1

    def test_split_proportional_to_stage_latency(self):
        workflow = workflow_for("VidAn")
        slo = 10.0
        deadlines = proportional_deadlines(workflow, 0.0, slo)
        latencies = [s.warm_latency(3.0) for s in workflow.stages]
        first_budget = deadlines[workflow.stages[0].functions[0].name]
        assert first_budget == pytest.approx(
            slo * latencies[0] / sum(latencies))

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            proportional_deadlines(workflow_for("eBank"), 0.0, 0.0)


class TestBaselineSystem:
    def test_completes_all_workflows(self):
        trace = small_trace(["WebServ", "ImgProc"], rate=30.0)
        cluster = run_cluster(BaselineSystem(), trace)
        assert cluster.metrics.completed_workflows() == len(trace)
        assert cluster.inflight == 0

    def test_everything_runs_at_max_frequency(self):
        trace = small_trace(["CNNServ"], rate=10.0)
        cluster = run_cluster(BaselineSystem(), trace)
        for record in cluster.metrics.function_records:
            assert set(record.freq_run_seconds) == {3.0}

    def test_no_deadlines_assigned(self):
        system = BaselineSystem()
        assert system.function_deadlines(workflow_for("eBank"), 0.0, 1.0) is None

    def test_cold_starts_only_until_containers_warm(self):
        trace = small_trace(["WebServ"], rate=20.0, duration=5.0)
        cluster = run_cluster(BaselineSystem(), trace, n_servers=1)
        cold = cluster.metrics.cold_start_count()
        assert 1 <= cold <= 3  # first request(s) only; rest hit warm

    def test_multi_function_app_executes_all_stages(self):
        trace = Trace([TraceEvent(0.1, "eBank")], 1.0)
        cluster = run_cluster(BaselineSystem(), trace, n_servers=1)
        functions = {r.function for r in cluster.metrics.function_records}
        assert functions == {f.name for f in workflow_for("eBank").functions}

    def test_energy_accrues_and_attributes(self):
        trace = small_trace(["MLTrain"], rate=5.0, duration=5.0)
        cluster = run_cluster(BaselineSystem(), trace, n_servers=1)
        assert cluster.total_energy_j > 0
        assert cluster.energy_by_benchmark().get("MLTrain", 0.0) > 0

    def test_deterministic_under_same_seed(self):
        trace = small_trace(["WebServ", "CNNServ"], rate=20.0, duration=5.0)
        a = run_cluster(BaselineSystem(), trace, seed=5)
        b = run_cluster(BaselineSystem(), trace, seed=5)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)
        assert a.metrics.latency_p99() == pytest.approx(b.metrics.latency_p99())


class TestPowerCtrlSystem:
    def test_completes_all_workflows(self):
        trace = small_trace(["WebServ", "LRServ"], rate=30.0)
        cluster = run_cluster(PowerCtrlSystem(), trace)
        assert cluster.metrics.completed_workflows() == len(trace)

    def test_uses_lower_frequencies_when_slack_allows(self):
        trace = small_trace(["CNNServ"], rate=2.0)
        cluster = run_cluster(PowerCtrlSystem(), trace)
        chosen = {r.chosen_freq_ghz
                  for r in cluster.metrics.function_records
                  if not r.cold_start}
        assert min(chosen) < 3.0

    def test_saves_energy_against_baseline(self):
        names = [wf.name for wf in all_benchmarks()]
        rate = rate_for_utilization(all_benchmarks(), 0.4, total_cores=40)
        trace = small_trace(names, rate=rate, duration=20.0)
        base = run_cluster(BaselineSystem(), trace)
        power = run_cluster(PowerCtrlSystem(), trace)
        assert power.total_energy_j < base.total_energy_j

    def test_average_latency_higher_than_baseline(self):
        # PowerCtrl deliberately slows requests toward their deadline.
        trace = small_trace(["CNNServ"], rate=5.0)
        base = run_cluster(BaselineSystem(), trace)
        power = run_cluster(PowerCtrlSystem(), trace)
        assert power.metrics.latency_avg() > base.metrics.latency_avg()

    def test_pays_sandbox_switch_overhead(self):
        trace = small_trace(["CNNServ", "WebServ"], rate=20.0)
        cluster = run_cluster(PowerCtrlSystem(), trace)
        overhead = cluster.energy_by_component()["dvfs_overhead"]
        assert overhead > 0
