"""Unit tests for the discrete-event kernel: clock, ordering, run/step."""

import pytest

from repro.sim import Environment
from repro.sim.engine import EmptySchedule


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_run_until_stops_clock_exactly_at_until():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_processes_events_at_until():
    env = Environment()
    fired = []
    env.timeout(4.0).callbacks.append(lambda ev: fired.append(env.now))
    env.run(until=4.0)
    assert fired == [4.0]


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_at_same_time_fire_in_scheduling_order():
    env = Environment()
    order = []
    for i in range(5):
        env.timeout(1.0).callbacks.append(
            lambda ev, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_peek_on_empty_heap_is_inf():
    assert Environment().peek() == float("inf")


def test_interleaved_timeouts_process_in_time_order():
    env = Environment()
    times = []
    for delay in [5.0, 1.0, 3.0, 2.0, 4.0]:
        env.timeout(delay).callbacks.append(
            lambda ev: times.append(env.now))
    env.run()
    assert times == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_event_value_accessible_after_trigger():
    env = Environment()
    ev = env.event()
    ev.succeed("payload")
    assert ev.triggered
    assert ev.ok
    assert ev.value == "payload"


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_surfaces_from_run():
    env = Environment()
    env.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_timeout_carries_value():
    env = Environment()
    got = []
    t = env.timeout(1.0, value=42)
    t.callbacks.append(lambda ev: got.append(ev.value))
    env.run()
    assert got == [42]
