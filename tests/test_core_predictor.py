"""Tests for FrequencyProfile and the compute/memory fit."""

import numpy as np
import pytest

from repro.core.predictor import FrequencyProfile, fit_compute_memory
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel


class TestFitComputeMemory:
    def test_single_point_is_pure_compute(self):
        a, b = fit_compute_memory([(3.0, 0.3)])
        assert a == pytest.approx(0.9)
        assert b == 0.0

    def test_two_points_recover_exact_model(self):
        # t = 0.6/f + 0.1
        points = [(3.0, 0.3), (1.2, 0.6)]
        a, b = fit_compute_memory(points)
        assert a == pytest.approx(0.6)
        assert b == pytest.approx(0.1)

    def test_fit_is_least_squares_over_many_points(self):
        rng = np.random.default_rng(0)
        freqs = [1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0]
        points = [(f, 0.5 / f + 0.2 + rng.normal(0, 0.002)) for f in freqs]
        a, b = fit_compute_memory(points)
        assert a == pytest.approx(0.5, abs=0.05)
        assert b == pytest.approx(0.2, abs=0.03)

    def test_negative_memory_falls_back_to_compute_scaling(self):
        # Noise implying negative b must not produce negative times.
        points = [(3.0, 0.3), (1.2, 0.4)]  # slower than 1/f would allow
        a, b = fit_compute_memory(points)
        assert a >= 0 and b >= 0

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            fit_compute_memory([])


def make_profile(use_mlp=False, feature_names=None):
    return FrequencyProfile(FrequencyScale(), PowerModel(),
                            use_mlp=use_mlp,
                            feature_names=feature_names, seed=0)


class TestFrequencyProfile:
    def test_predictions_require_data(self):
        profile = make_profile()
        assert not profile.has_data
        with pytest.raises(RuntimeError):
            profile.predict_t_run(3.0)
        with pytest.raises(RuntimeError):
            profile.predict_t_block()
        with pytest.raises(RuntimeError):
            profile.predict_energy(3.0)

    def test_observed_frequency_uses_smoothed_measurements(self):
        profile = make_profile()
        for _ in range(20):
            profile.observe(3.0, 0.1, 0.05, 1.0)
        assert profile.predict_t_run(3.0) == pytest.approx(0.1, rel=0.05)
        assert profile.predict_t_block() == pytest.approx(0.05, rel=0.05)
        assert profile.predict_energy(3.0) == pytest.approx(1.0, rel=0.05)

    def test_single_frequency_extrapolates_conservatively(self):
        """With only top-frequency data, lower frequencies are predicted
        by pure compute scaling — an overestimate that can never cause a
        deadline miss by itself."""
        profile = make_profile()
        for _ in range(10):
            profile.observe(3.0, 0.12, 0.0, 1.0)
        predicted = profile.predict_t_run(1.2)
        assert predicted == pytest.approx(0.12 * 2.5, rel=0.05)

    def test_two_frequencies_recover_memory_component(self):
        profile = make_profile()
        # t(f) = 0.24/f + 0.04: t(3.0)=0.12, t(1.5)=0.20
        for _ in range(10):
            profile.observe(3.0, 0.12, 0.0, 1.0)
            profile.observe(1.5, 0.20, 0.0, 0.6)
        predicted = profile.predict_t_run(1.2)
        assert predicted == pytest.approx(0.24 / 1.2 + 0.04, rel=0.1)

    def test_energy_at_unmeasured_frequency_uses_power_model(self):
        profile = make_profile()
        power = PowerModel()
        for _ in range(10):
            profile.observe(3.0, 0.12, 0.0,
                            0.12 * power.core_active_power(3.0))
        e_low = profile.predict_energy(1.2)
        t_low = profile.predict_t_run(1.2)
        expected = t_low * (power.core_active_power(1.2)
                            + power.dram_active_power(1))
        assert e_low == pytest.approx(expected, rel=0.01)

    def test_lower_frequency_costs_less_energy_despite_longer_runtime(self):
        """The headroom the whole paper exploits must hold in the profile's
        own estimates."""
        profile = make_profile()
        power = PowerModel()
        for _ in range(10):
            profile.observe(3.0, 0.2, 0.0,
                            0.2 * power.core_active_power(3.0))
        assert profile.predict_energy(1.2) < profile.predict_energy(3.0)
        assert profile.predict_t_run(1.2) > profile.predict_t_run(3.0)

    def test_observation_counter(self):
        profile = make_profile()
        profile.observe(3.0, 0.1, 0.0, 1.0)
        profile.observe(3.0, 0.1, 0.0, 1.0)
        assert profile.observations == 2

    def test_mlp_refines_input_dependent_predictions(self):
        rng = np.random.default_rng(0)
        profile = make_profile(use_mlp=True, feature_names=["size", "noise"])
        # t_run at 3.0 = 0.01 * size
        for _ in range(300):
            size = float(rng.uniform(5, 20))
            profile.observe(3.0, 0.01 * size, 0.0, 1.0,
                            {"size": size, "noise": float(rng.uniform())})
        small = profile.predict_t_run(3.0, {"size": 6.0, "noise": 0.5})
        large = profile.predict_t_run(3.0, {"size": 18.0, "noise": 0.5})
        assert large > 1.8 * small

    def test_mlp_prediction_clamped_to_fit(self):
        profile = make_profile(use_mlp=True, feature_names=["x"])
        for i in range(40):
            profile.observe(3.0, 0.1, 0.0, 1.0, {"x": 1.0})
        # An absurd feature value cannot push the prediction outside the
        # safety band around the physical fit.
        wild = profile.predict_t_run(3.0, {"x": 1e9})
        assert 0.2 * 0.1 <= wild <= 5 * 0.1

    def test_history_is_shared_with_table(self):
        profile = make_profile()
        profile.observe(3.0, 0.1, 0.02, 1.0, {"a": 1.0})
        assert len(profile.history) == 1
        assert profile.history.rows[0].features == {"a": 1.0}
