"""End-to-end fuzzer tests: clean trials pass, planted bugs are found,
shrunk, saved as artifacts, and replay byte-identically."""

import json
import pathlib

import pytest

from repro.verify import fuzz


class TestSampleSpec:
    def test_spec_is_pure_json_and_deterministic(self):
        spec = fuzz.sample_spec(0, 7)
        again = fuzz.sample_spec(0, 7)
        assert spec == again
        assert json.loads(json.dumps(spec)) == spec
        assert spec["trial"] == 0 and spec["seed"] == 7
        assert isinstance(spec["plan"], list)

    def test_different_trials_draw_different_schedules(self):
        specs = [fuzz.sample_spec(trial, 7) for trial in range(4)]
        assert len({json.dumps(s, sort_keys=True) for s in specs}) == 4


class TestCleanTrial:
    def test_zero_violations_and_stable_fingerprint(self):
        spec = fuzz.sample_spec(0, 7)
        result = fuzz.run_trial(spec)
        assert result["violations"] == []
        assert result["fingerprint"]
        assert fuzz.run_trial(spec) == result  # byte-determinism


class TestMutationsAreFound:
    # (mutation, known-violating trial at seed 7) — kept in sync with
    # the CI fuzz-smoke step's seed.
    CASES = [("ledger-bucket", 0), ("breaker-jump", 0),
             ("journal-fence", 1), ("cancel-leak", 0)]

    @pytest.mark.parametrize("mutate,trial", CASES)
    def test_planted_bug_trips_its_invariant(self, mutate, trial):
        from repro.verify.mutate import MUTATIONS
        spec = fuzz.sample_spec(trial, 7)
        result = fuzz.run_trial(spec, mutate=mutate)
        names = {v["invariant"] for v in result["violations"]}
        assert MUTATIONS[mutate] in names


class TestShrinkAndReplay:
    def test_shrunk_artifact_replays_byte_identically(self, tmp_path):
        mutate, trial = "journal-fence", 1
        spec = fuzz.sample_spec(trial, 7)
        result = fuzz.run_trial(spec, mutate=mutate)
        assert result["violations"]
        shrunk = fuzz.shrink(spec, result, mutate=mutate, max_tests=48)
        assert shrunk["events_after"] <= shrunk["events_before"]

        artifact = fuzz.make_artifact(spec, result, shrunk, mutate)
        assert artifact["format"] == fuzz.ARTIFACT_FORMAT
        assert artifact["mutate"] == mutate
        names = {v["invariant"] for v in artifact["violations"]}
        assert "ha-journal-crosscheck" in names

        path = fuzz.write_artifact(artifact, str(tmp_path))
        with open(path) as fh:
            assert json.load(fh) == artifact

        replayed = fuzz.replay(path)
        assert replayed["match"], (
            "replaying the stored artifact diverged from its recorded"
            " violations/fingerprint")


class TestCorpus:
    """The seeded corpus/ of previously-shrunk artifacts must keep
    replaying byte-for-byte (ROADMAP item 6); see corpus/README.md."""

    CORPUS = pathlib.Path(__file__).resolve().parent.parent / "corpus"

    def corpus_paths(self):
        return sorted(self.CORPUS.glob("*.json"))

    def test_corpus_is_seeded(self):
        paths = self.corpus_paths()
        assert len(paths) >= 4, (
            "corpus/ must hold at least one shrunk artifact per planted"
            " mutation")
        from repro.verify.mutate import MUTATIONS
        stems = "\n".join(p.stem for p in paths)
        for mutation in MUTATIONS:
            assert mutation in stems, f"no corpus artifact for {mutation}"

    def test_every_artifact_replays_byte_identically(self):
        for path in self.corpus_paths():
            outcome = fuzz.replay(str(path))
            assert outcome["match"], (
                f"{path.name}: replay diverged from the stored"
                f" violations/fingerprint\n stored: {outcome['stored']}\n"
                f" replayed: {outcome['replayed']}")
            assert outcome["violations"], (
                f"{path.name}: corpus artifacts must reproduce a"
                " violation")


class TestCampaign:
    def test_clean_campaign_reports_nothing(self, tmp_path):
        lines = []
        outcome = fuzz.campaign(2, 7, artifact_dir=str(tmp_path),
                                echo=lines.append)
        assert outcome["violating_trials"] == []
        assert outcome["found"] == []
        assert outcome["trials"] == 2
        assert not list(tmp_path.iterdir())  # no artifacts on clean runs
        assert sum(line.startswith("trial") for line in lines) == 2

    def test_mutated_campaign_writes_artifact(self, tmp_path):
        outcome = fuzz.campaign(1, 7, mutate="ledger-bucket",
                                artifact_dir=str(tmp_path),
                                max_shrink=16, echo=lambda *_: None)
        assert outcome["violating_trials"] == [0]
        assert len(outcome["found"]) == 1
        found = outcome["found"][0]
        names = {v["invariant"]
                 for v in found["artifact"]["violations"]}
        assert "energy-conservation" in names
        artifacts = list(tmp_path.iterdir())
        assert len(artifacts) == 1
        assert fuzz.replay(str(artifacts[0]))["match"]
