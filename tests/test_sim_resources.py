"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Environment, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_release_grants_next_waiter_fifo():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered and not third.triggered
    res.release(second)
    assert third.triggered


def test_release_of_waiting_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)
    holder = res.request()
    waiter = res.request()
    res.release(waiter)
    assert res.queue_length == 0
    res.release(holder)
    assert not waiter.triggered


def test_resource_with_processes_serialises_execution():
    env = Environment()
    res = Resource(env, capacity=1)
    trace = []

    def worker(tag):
        with res.request() as req:
            yield req
            trace.append((tag, "start", env.now))
            yield env.timeout(2.0)
            trace.append((tag, "end", env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert trace == [
        ("a", "start", 0.0), ("a", "end", 2.0),
        ("b", "start", 2.0), ("b", "end", 4.0),
    ]


def test_resource_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def failing():
        with res.request() as req:
            yield req
            raise ValueError("dies holding the resource")

    def follower():
        with res.request() as req:
            yield req
            return env.now

    env.process(failing())
    p = env.process(follower())
    with pytest.raises(ValueError):
        env.run()
    env.run()
    assert p.ok and p.value == 0.0


def test_store_put_get_fifo_order():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    g1, g2 = store.get(), store.get()
    assert g1.value == "a"
    assert g2.value == "b"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(3.0)
        store.put("item")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3.0, "item")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    p1 = store.put("x")
    p2 = store.put("y")
    assert p1.triggered and not p2.triggered
    assert store.get().value == "x"
    assert p2.triggered
    assert store.get().value == "y"


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    store.get()
    assert len(store) == 1
