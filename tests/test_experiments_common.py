"""Tests for the experiment infrastructure (fast paths only)."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    MicroRun,
    make_azure_benchmark_trace,
    make_load_trace,
    make_systems,
    measure_unloaded,
)
from repro.workloads.functionbench import CNN_SERV, WEB_SERV


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("T", "test")
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        assert result.column("a") == [1, 2]

    def test_row_for(self):
        result = ExperimentResult("T", "test")
        result.add(a=1, b="x")
        result.add(a=2, b="y")
        assert result.row_for(a=2)["b"] == "y"
        with pytest.raises(KeyError):
            result.row_for(a=3)

    def test_format_table_contains_all_cells(self):
        result = ExperimentResult("T", "test description")
        result.add(metric="energy", value=1.234)
        result.note("a note")
        text = result.format_table()
        assert "T: test description" in text
        assert "energy" in text
        assert "1.234" in text
        assert "note: a note" in text

    def test_format_empty(self):
        assert "(no rows)" in ExperimentResult("E", "empty").format_table()


class TestFactories:
    def test_make_systems_has_all_three(self):
        systems = make_systems()
        assert set(systems) == {"Baseline", "Baseline+PowerCtrl", "EcoFaaS"}

    def test_make_load_trace_levels(self):
        low = make_load_trace("low", 2, 10.0)
        high = make_load_trace("high", 2, 10.0)
        assert high.mean_rate_rps > 2 * low.mean_rate_rps

    def test_make_load_trace_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            make_load_trace("extreme", 2, 10.0)

    def test_azure_benchmark_trace_uses_benchmark_names(self):
        trace = make_azure_benchmark_trace(30.0, seed=0)
        from repro.workloads.registry import benchmark_names
        assert set(trace.invocation_counts()) <= set(benchmark_names())


class TestMeasureUnloaded:
    def test_returns_consistent_microrun(self):
        run = measure_unloaded(WEB_SERV, 3.0, n_invocations=5, seed=0)
        assert isinstance(run, MicroRun)
        assert run.service_s > run.run_s > 0
        assert run.energy_j > 0

    def test_service_time_near_model(self):
        run = measure_unloaded(CNN_SERV, 3.0, n_invocations=30, seed=0)
        assert run.service_s == pytest.approx(
            CNN_SERV.service_seconds(3.0), rel=0.25)

    def test_lower_frequency_is_slower_and_cheaper(self):
        fast = measure_unloaded(CNN_SERV, 3.0, n_invocations=10, seed=0)
        slow = measure_unloaded(CNN_SERV, 1.2, n_invocations=10, seed=0)
        assert slow.service_s > fast.service_s
        assert slow.energy_j < fast.energy_j

    def test_mem_multiplier_slows_execution(self):
        base = measure_unloaded(CNN_SERV, 3.0, n_invocations=10, seed=0)
        throttled = measure_unloaded(CNN_SERV, 3.0, n_invocations=10,
                                     seed=0, mem_time_multiplier=2.0)
        assert throttled.service_s > base.service_s


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main
        assert main(["nonsense"]) == 2

    def test_run_table1(self, capsys):
        from repro.cli import main
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "completed in" in out
