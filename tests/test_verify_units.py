"""Unit tests for repro.verify: the monitors and the planted mutations."""

import pytest

from repro import verify
from repro.sim.engine import Environment
from repro.tenancy.config import TenantSpec
from repro.verify import (
    BREAKER_STATES,
    LEGAL_BREAKER_TRANSITIONS,
    NULL_VERIFIER,
    Verifier,
    Violation,
)
from repro.verify.mutate import MUTATIONS, planted


class TestNullVerifier:
    def test_every_environment_starts_null(self):
        env = Environment()
        assert env.verify is NULL_VERIFIER
        assert not env.verify.enabled

    def test_null_hooks_are_no_ops(self):
        null = NULL_VERIFIER
        assert null.bind(None) is null
        null.begin_run("x")
        null.on_step(1.0)
        null.on_breaker_transition("f", "open", "closed")
        null.on_tenant_admit("b", None, "run")
        null.arm(None)
        null.close_run(None)


class TestInstall:
    def test_install_uninstall_round_trip(self):
        assert verify.active() is None
        verifier = verify.install(Verifier())
        try:
            assert verify.active() is verifier
        finally:
            verify.uninstall()
        assert verify.active() is None


class TestViolation:
    def test_to_json_carries_details_as_dict(self):
        violation = Violation(
            invariant="clock-monotonic", time_s=2.5, run="EcoFaaS",
            message="clock moved backwards",
            details=(("now_s", 1.0), ("previous_s", 2.0)))
        assert violation.to_json() == {
            "invariant": "clock-monotonic", "time_s": 2.5,
            "run": "EcoFaaS", "message": "clock moved backwards",
            "details": {"now_s": 1.0, "previous_s": 2.0}}


class TestVerifierHooks:
    def _bound(self):
        verifier = Verifier()
        verifier.bind(Environment())
        verifier.begin_run("Test")
        return verifier

    def test_sweep_period_must_be_positive(self):
        with pytest.raises(ValueError):
            Verifier(sweep_period_s=0.0)

    def test_clock_monotonicity(self):
        verifier = self._bound()
        verifier.on_step(1.0)
        verifier.on_step(1.0)   # equal is fine
        verifier.on_step(2.0)
        assert verifier.violations == []
        verifier.on_step(1.5)
        assert verifier.summary() == {"clock-monotonic": 1}
        assert verifier.violations[0].run == "Test"

    def test_legal_breaker_transitions_pass(self):
        verifier = self._bound()
        for old, new in sorted(LEGAL_BREAKER_TRANSITIONS):
            verifier.on_breaker_transition("fn", old, new)
        assert verifier.violations == []

    def test_illegal_breaker_transitions_recorded(self):
        verifier = self._bound()
        illegal = [(old, new) for old in BREAKER_STATES
                   for new in BREAKER_STATES
                   if old != new
                   and (old, new) not in LEGAL_BREAKER_TRANSITIONS]
        for old, new in illegal:
            verifier.on_breaker_transition("fn", old, new)
        assert verifier.summary() == {"breaker-transition": len(illegal)}

    def test_unknown_breaker_state_recorded(self):
        verifier = self._bound()
        verifier.on_breaker_transition("fn", "closed", "ajar")
        assert verifier.summary() == {"breaker-transition": 1}

    def test_over_budget_best_effort_must_shed(self):
        verifier = self._bound()
        batch = TenantSpec(name="batch", benchmarks=("WebServ",),
                           budget_j=5.0, best_effort=True)
        slo = TenantSpec(name="slo", benchmarks=("MLServ",),
                         budget_j=5.0, best_effort=False)
        verifier.on_tenant_admit("WebServ", batch, "shed")
        verifier.on_tenant_admit("WebServ", slo, "throttle")
        assert verifier.violations == []
        verifier.on_tenant_admit("WebServ", batch, "throttle")
        assert verifier.summary() == {"tenant-enforcement": 1}

    def test_summary_counts_per_invariant(self):
        verifier = self._bound()
        verifier.record("a", "first")
        verifier.record("a", "second")
        verifier.record("b", "third", key=1)
        assert verifier.summary() == {"a": 2, "b": 1}


class TestMutations:
    def test_catalog_names_four_layers(self):
        assert MUTATIONS == {
            "journal-fence": "ha-journal-crosscheck",
            "ledger-bucket": "energy-conservation",
            "breaker-jump": "breaker-transition",
            "cancel-leak": "cancel-lifecycle"}

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            with planted("nonsense"):
                pass

    def test_planted_restores_originals(self):
        from repro.guard.breaker import CircuitBreaker
        from repro.ha.journal import RedispatchJournal
        from repro.obs.ledger import EnergyLedger
        from repro.platform.scheduler import CorePoolScheduler

        def snapshot():
            return (RedispatchJournal.record_redispatch,
                    EnergyLedger.record_core, CircuitBreaker.allow,
                    CorePoolScheduler.cancel_job)

        originals = snapshot()
        for name in MUTATIONS:
            with pytest.raises(RuntimeError):
                with planted(name):
                    assert snapshot() != originals
                    raise RuntimeError("unwind")
            assert snapshot() == originals

    def test_journal_fence_bug_drops_the_write(self):
        from repro.ha.journal import RedispatchJournal
        journal = RedispatchJournal()
        journal.register((1, 0, 0), 0.5)
        with planted("journal-fence"):
            journal.record_redispatch((1, 0, 0), 1.0)
        assert journal.redispatch_count() == 0
