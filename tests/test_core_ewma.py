"""Tests for adaptive EWMA and the History Table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ewma import AdaptiveEwma
from repro.core.history import HistoryRow, HistoryTable


class TestAdaptiveEwma:
    def test_first_value_becomes_level(self):
        ewma = AdaptiveEwma()
        ewma.update(5.0)
        assert ewma.forecast() == 5.0
        assert ewma.initialized
        assert ewma.count == 1

    def test_forecast_before_data_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveEwma().forecast()

    def test_forecast_or_default(self):
        ewma = AdaptiveEwma()
        assert ewma.forecast_or(3.0) == 3.0
        ewma.update(7.0)
        assert ewma.forecast_or(3.0) == 7.0

    def test_converges_to_constant_signal(self):
        ewma = AdaptiveEwma()
        for _ in range(100):
            ewma.update(10.0)
        assert ewma.forecast() == pytest.approx(10.0, rel=1e-6)

    def test_tracks_level_shift(self):
        ewma = AdaptiveEwma()
        for _ in range(50):
            ewma.update(1.0)
        for _ in range(50):
            ewma.update(5.0)
        assert ewma.forecast() == pytest.approx(5.0, rel=0.1)

    def test_follows_linear_trend(self):
        # Holt smoothing should anticipate the next point of a ramp.
        ewma = AdaptiveEwma(beta=0.2)
        for i in range(200):
            ewma.update(float(i))
        assert ewma.forecast() > 190.0

    def test_adaptive_alpha_rises_during_regime_change(self):
        ewma = AdaptiveEwma()
        for _ in range(50):
            ewma.update(1.0)
        settled_alpha = ewma.alpha
        for _ in range(10):
            ewma.update(100.0)
        assert ewma.alpha > settled_alpha

    def test_alpha_stays_within_bounds(self):
        ewma = AdaptiveEwma(alpha_bounds=(0.1, 0.4))
        rng = np.random.default_rng(0)
        for _ in range(200):
            ewma.update(float(rng.normal(10, 5)))
            assert 0.1 <= ewma.alpha <= 0.4

    def test_noisy_signal_forecast_near_mean(self):
        ewma = AdaptiveEwma()
        rng = np.random.default_rng(1)
        for _ in range(500):
            ewma.update(float(rng.normal(10.0, 1.0)))
        assert ewma.forecast() == pytest.approx(10.0, abs=1.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEwma(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveEwma(beta=1.5)
        with pytest.raises(ValueError):
            AdaptiveEwma(tracking_gamma=0.0)
        with pytest.raises(ValueError):
            AdaptiveEwma(alpha_bounds=(0.5, 0.1))

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0),
                    min_size=2, max_size=50))
    def test_forecast_is_finite_for_any_positive_series(self, values):
        ewma = AdaptiveEwma()
        for value in values:
            ewma.update(value)
        assert np.isfinite(ewma.forecast())


class TestHistoryTable:
    def test_capacity_bounds_rows(self):
        table = HistoryTable(capacity=3)
        for i in range(5):
            table.record(3.0, float(i), 0.0, 0.0)
        assert len(table) == 3
        assert [row.t_run_s for row in table.rows] == [2.0, 3.0, 4.0]

    def test_default_capacity_is_paper_value(self):
        assert HistoryTable().capacity == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HistoryTable(capacity=0)

    def test_record_validation(self):
        table = HistoryTable()
        with pytest.raises(ValueError):
            table.record(0.0, 1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            table.record(3.0, -1.0, 0.0, 0.0)

    def test_grouping_by_frequency(self):
        table = HistoryTable()
        table.record(3.0, 0.1, 0.02, 1.0)
        table.record(1.2, 0.25, 0.02, 0.5)
        table.record(3.0, 0.11, 0.03, 1.1)
        runs = table.runs_by_frequency()
        assert runs[3.0] == [0.1, 0.11]
        assert runs[1.2] == [0.25]
        energy = table.energy_by_frequency()
        assert energy[3.0] == [1.0, 1.1]
        assert table.block_samples() == [0.02, 0.02, 0.03]

    def test_feature_rows_normalise_to_top_frequency(self):
        table = HistoryTable()
        table.record(1.5, 0.2, 0.0, 0.0, {"x": 1.0})
        rows = table.feature_rows()
        assert rows[0][0] == {"x": 1.0}
        assert rows[0][1] == pytest.approx(0.3)  # 0.2 * 1.5

    def test_save_and_restore_roundtrip(self):
        table = HistoryTable(capacity=10)
        table.record(3.0, 0.1, 0.02, 1.0, {"x": 2.0})
        saved = table.save()
        restored = HistoryTable.restore(saved, capacity=10)
        assert restored.rows == table.rows

    def test_rows_returns_copy(self):
        table = HistoryTable()
        table.record(3.0, 0.1, 0.0, 0.0)
        rows = table.rows
        rows.clear()
        assert len(table) == 1

    def test_history_row_is_immutable(self):
        row = HistoryRow(3.0, 0.1, 0.0, 1.0, {})
        with pytest.raises(AttributeError):
            row.t_run_s = 5.0
