"""Tests for the trace exporters, validator, and report loader."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.obs.export import _nearest_rank, _process_of
from repro.obs.validate import validate_events, validate_file
from repro.sim import Environment


def synthetic_tracer():
    """A tracer with one hand-built run covering every record type."""
    env = Environment()
    tracer = obs.Tracer()
    tracer.begin_run("Synthetic")
    tracer.bind(env)

    def proc():
        tracer.workflow_begin(0, "App", slo_s=2.0)
        tracer.invocation_begin(1, "App.fn", benchmark="App")
        tracer.phase(1, "queue")
        yield env.timeout(0.5)
        tracer.phase(1, "run", freq_ghz=np.float64(2.0))
        tracer.counter("node0", "power_w", 100.0)
        tracer.counter("node1", "power_w", 50.0)
        tracer.counter("node0", "outstanding", 2)
        tracer.instant("freq_transition", "App.fn@0", to_ghz=2.0)
        yield env.timeout(1.0)
        tracer.invocation_end(
            1, "completed", energy_j=3.0, cold_start=True,
            met_deadline=bool(np.bool_(False)), latency_s=1.5)
        tracer.workflow_end(0, "completed", met_slo=np.bool_(True),
                            latency_s=1.5)
        tracer.instant("retry", "frontend", function="App.fn")
        tracer.instant("fault_node_crash", "faults", node=0)

    env.process(proc())
    env.run()
    return tracer


class TestProcessMapping:
    @pytest.mark.parametrize("track,process", [
        ("node0", "node0"),
        ("node12", "node12"),
        ("App.fn@3", "node3"),
        ("frontend", "frontend"),
        ("faults", "faults"),
        ("nodeX", "cluster"),
        ("misc", "cluster"),
    ])
    def test_track_to_process(self, track, process):
        assert _process_of(track) == process


class TestChromeTrace:
    def test_events_cover_spans_instants_counters(self):
        tracer = synthetic_tracer()
        events = obs.chrome_trace_events(tracer)
        phases = {e["ph"] for e in events}
        assert phases == {"M", "b", "e", "i", "C"}
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == 4  # workflow + invocation + 2 phases
        # Timestamps are microseconds.
        run_phase = next(e for e in begins if e["name"] == "run")
        assert run_phase["ts"] == 500000.0

    def test_numpy_scalars_are_json_serializable(self, tmp_path):
        tracer = synthetic_tracer()
        path = str(tmp_path / "trace.json")
        n = obs.write_chrome_trace(tracer, path)
        document = json.loads((tmp_path / "trace.json").read_text())
        assert len(document["traceEvents"]) == n
        end = next(e for e in document["traceEvents"]
                   if e["ph"] == "e" and e["name"] == "App.fn")
        assert end["args"]["met_deadline"] is False
        assert end["args"]["energy_j"] == 3.0

    def test_written_trace_validates(self, tmp_path):
        tracer = synthetic_tracer()
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(tracer, path)
        assert validate_file(path) == []

    def test_process_names_carry_run_labels(self, tmp_path):
        tracer = synthetic_tracer()
        events = obs.chrome_trace_events(tracer)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert "Synthetic [0] invocations" in names
        assert "Synthetic [0] node0" in names

    def test_identical_traces_serialize_to_identical_bytes(self, tmp_path):
        paths = [str(tmp_path / f"t{i}.json") for i in range(2)]
        for path in paths:
            obs.write_chrome_trace(synthetic_tracer(), path)
        assert (tmp_path / "t0.json").read_bytes() == \
               (tmp_path / "t1.json").read_bytes()


class TestValidator:
    def test_accepts_minimal_balanced_events(self):
        events = [
            {"ph": "b", "name": "x", "cat": "c", "id": 1, "pid": 1,
             "tid": 0, "ts": 0.0, "args": {}},
            {"ph": "e", "name": "x", "cat": "c", "id": 1, "pid": 1,
             "tid": 0, "ts": 5.0, "args": {}},
        ]
        assert validate_events(events) == []

    def test_flags_dangling_span(self):
        events = [{"ph": "b", "name": "x", "cat": "c", "id": 1, "pid": 1,
                   "tid": 0, "ts": 0.0, "args": {}}]
        problems = validate_events(events)
        assert any("never closed" in p for p in problems)

    def test_flags_bad_field_types(self):
        problems = validate_events([
            {"ph": "i", "s": "t", "name": 7, "pid": 1, "tid": 0, "ts": 0.0},
            {"ph": "C", "name": "c", "pid": 1, "tid": 0, "ts": 1.0,
             "args": {"value": "not-a-number"}},
        ])
        assert len(problems) >= 2

    def test_flags_unknown_phase(self):
        problems = validate_events(
            [{"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0.0}])
        assert any("ph" in p for p in problems)

    def test_flags_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"notTraceEvents\": []}")
        assert validate_file(str(path)) != []


class TestEpochRows:
    def test_nearest_rank(self):
        assert math.isnan(_nearest_rank([], 99.0))
        assert _nearest_rank([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert _nearest_rank([1.0, 2.0, 3.0, 4.0], 99.0) == 4.0

    def test_rows_bin_by_span_end(self):
        tracer = synthetic_tracer()
        rows = obs.epoch_rows(tracer, epoch_s=1.0)
        assert [r["epoch"] for r in rows] == [0, 1]
        # Invocation ends at t=1.5 -> second epoch.
        assert rows[0]["invocations"] == 0
        assert rows[1]["invocations"] == 1
        assert rows[1]["energy_j"] == 3.0
        assert rows[1]["cold_starts"] == 1
        assert rows[1]["deadline_misses"] == 1
        assert rows[1]["workflows"] == 1
        assert rows[1]["slo_violations"] == 0
        assert rows[1]["p99_latency_s"] == pytest.approx(1.5)

    def test_rows_count_instants_and_average_counters(self):
        rows = obs.epoch_rows(synthetic_tracer(), epoch_s=1.0)
        assert rows[0]["freq_transitions"] == 1
        assert rows[1]["retries"] == 1
        assert rows[1]["faults"] == 1
        # Both nodes sampled at t=0.5: summed across the cluster.
        assert rows[0]["mean_power_w"] == pytest.approx(150.0)
        assert rows[0]["mean_outstanding"] == pytest.approx(2.0)
        assert math.isnan(rows[1]["mean_power_w"])

    def test_epoch_length_must_be_positive(self):
        with pytest.raises(ValueError):
            obs.epoch_rows(synthetic_tracer(), epoch_s=0.0)

    def test_final_partial_epoch_is_emitted_and_flagged(self):
        # The synthetic run ends at t=1.5: the second epoch covers only
        # [1.0, 1.5) and must be emitted with its true end time rather
        # than silently padded to the epoch boundary.
        rows = obs.epoch_rows(synthetic_tracer(), epoch_s=1.0)
        assert rows[0]["is_partial"] is False
        assert rows[0]["t1_s"] == 1.0
        assert rows[1]["is_partial"] is True
        assert rows[1]["t1_s"] == pytest.approx(1.5)
        # The partial row still carries the tail's data (satellite fix:
        # it used to be dropped when the run ended off-boundary).
        assert rows[1]["invocations"] == 1

    def test_final_epoch_on_boundary_is_not_flagged(self):
        rows = obs.epoch_rows(synthetic_tracer(), epoch_s=1.5)
        assert [r["is_partial"] for r in rows] == [False]
        assert rows[0]["t1_s"] == pytest.approx(1.5)

    def test_instant_columns_come_from_shared_registry(self):
        from repro.obs.registry import EPOCH_INSTANT_COLUMNS

        rows = obs.epoch_rows(synthetic_tracer(), epoch_s=1.0)
        for column in EPOCH_INSTANT_COLUMNS.values():
            assert column in rows[0], column
        # The registry is the single source of truth: export has no
        # private copy of the instant → column mapping left.
        import repro.obs.export as export_module
        assert not hasattr(export_module, "_EPOCH_INSTANTS")

    def test_csv_and_json_writers(self, tmp_path):
        tracer = synthetic_tracer()
        csv_path = tmp_path / "epochs.csv"
        json_path = tmp_path / "epochs.json"
        rows = obs.write_epoch_metrics(tracer, str(csv_path), epoch_s=1.0)
        obs.write_epoch_metrics(tracer, str(json_path), epoch_s=1.0)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(rows)
        assert lines[0].startswith("run,system,epoch")
        parsed = json.loads(json_path.read_text())
        assert len(parsed) == len(rows)
        assert parsed[1]["invocations"] == 1


class TestSummaryAndReport:
    def test_run_summary_mentions_counts(self):
        text = obs.run_summary(synthetic_tracer())
        assert "run 0 (Synthetic)" in text
        assert "1/1 invocations completed" in text
        assert "1 workflows" in text
        assert "top by energy: App.fn=3J" in text
        assert "retry=1" in text

    def test_queueing_by_function(self):
        totals = obs.queueing_by_function(synthetic_tracer())
        assert totals == {"App.fn": pytest.approx(0.5)}

    def test_report_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(synthetic_tracer(), path)
        text = obs.report(path)
        assert "run 0 (Synthetic): 1 completed invocations" in text
        assert "App.fn" in text
        assert "3.0J" in text

    def test_report_json_format(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(synthetic_tracer(), path)
        document = json.loads(obs.report(path, fmt="json"))
        run = document["runs"][0]
        assert run["label"] == "Synthetic"
        assert run["completed_invocations"] == 1
        assert run["top_energy_j"][0] == {"function": "App.fn",
                                          "energy_j": 3.0}

    def test_cli_report_json_format(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(synthetic_tracer(), path)
        assert main(["report", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["completed_invocations"] == 1
