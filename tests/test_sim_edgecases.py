"""Edge cases of the simulation kernel beyond the basic suites."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


class TestInterruptEdgeCases:
    def test_interrupt_before_first_yield_point(self):
        env = Environment()
        trace = []

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                trace.append(("interrupted", env.now))

        p = env.process(victim())
        # Interrupt scheduled at t=0, before the victim even starts: the
        # kernel delivers it at the victim's first yield point.
        def attacker():
            yield env.timeout(0.0)
            p.interrupt("early")

        env.process(attacker())
        env.run()
        assert trace == [("interrupted", 0.0)]

    def test_double_interrupt_delivers_both(self):
        env = Environment()
        causes = []

        def victim():
            target = env.timeout(10.0)
            for _ in range(2):
                try:
                    yield target
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)

        def attacker(p):
            yield env.timeout(1.0)
            p.interrupt("first")
            p.interrupt("second")

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert causes == ["first", "second"]

    def test_interrupt_then_completion_value_still_correct(self):
        env = Environment()
        results = []

        def victim():
            target = env.timeout(5.0, value="payload")
            try:
                yield target
            except Interrupt:
                pass
            value = yield target
            results.append((env.now, value))

        def attacker(p):
            yield env.timeout(1.0)
            p.interrupt()

        p = env.process(victim())
        env.process(attacker(p))
        env.run()
        assert results == [(5.0, "payload")]


class TestConditionEdgeCases:
    def test_all_of_empty_succeeds_immediately(self):
        env = Environment()
        results = []

        def proc():
            value = yield AllOf(env, [])
            results.append((env.now, value))

        env.process(proc())
        env.run()
        assert results == [(0.0, {})]

    def test_all_of_fails_when_member_fails(self):
        env = Environment()
        caught = []
        gate = env.event()

        def proc():
            try:
                yield AllOf(env, [env.timeout(10.0), gate])
            except ValueError as error:
                caught.append((env.now, str(error)))

        def failer():
            yield env.timeout(1.0)
            gate.fail(ValueError("member died"))

        env.process(proc())
        env.process(failer())
        env.run()
        assert caught == [(1.0, "member died")]

    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = env.timeout(0.0, value="fast")
        results = []

        def proc():
            yield env.timeout(1.0)  # let `done` be processed first
            value = yield AnyOf(env, [done, env.timeout(10.0)])
            results.append((env.now, list(value.values())))

        env.process(proc())
        env.run()
        assert results == [(1.0, ["fast"])]

    def test_condition_rejects_foreign_environment(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env_a, [env_b.timeout(1.0)])


class TestSelfInterruptGuard:
    def test_process_cannot_interrupt_itself(self):
        env = Environment()
        errors = []

        def selfish():
            this = env.active_process
            try:
                this.interrupt()
            except RuntimeError as error:
                errors.append(str(error))
            yield env.timeout(0.1)

        env.process(selfish())
        env.run()
        assert len(errors) == 1


class TestClockPrecision:
    def test_many_tiny_timeouts_accumulate_exactly(self):
        env = Environment()

        def ticker():
            for _ in range(1000):
                yield env.timeout(1e-6)

        p = env.process(ticker())
        env.run()
        assert env.now == pytest.approx(1e-3, rel=1e-9)
        assert not p.is_alive

    def test_zero_delay_timeouts_preserve_order(self):
        env = Environment()
        order = []
        for i in range(10):
            env.timeout(0.0).callbacks.append(
                lambda ev, i=i: order.append(i))
        env.run()
        assert order == list(range(10))
