"""Property-based tests (seeded stdlib random — no new dependencies).

Random operation sequences against two safety-critical state machines:

* ``guard.breaker`` — under any interleaving of successes, failures,
  and admission probes at random times, every state transition stays
  inside the legal set closed→open→half_open→{closed,open}, and the
  half-open probe is exclusive.
* ``ha.journal`` — under any interleaving of register / may_redispatch /
  record_redispatch / record_completion, each key is re-dispatched at
  most once per completion epoch and duplicate completions are fenced
  exactly (first write wins, every later write is counted).
"""

import random

from repro.guard.breaker import CircuitBreaker
from repro.guard.config import BreakerConfig
from repro.ha.journal import RedispatchJournal
from repro.verify.invariants import LEGAL_BREAKER_TRANSITIONS

N_SEQUENCES = 30
N_OPS = 400


class TestBreakerTransitionLegality:
    def _run_sequence(self, seed: int):
        rng = random.Random(seed)
        config = BreakerConfig(
            window_s=rng.uniform(2.0, 10.0),
            min_failures=rng.randint(1, 4),
            failure_rate=rng.uniform(0.2, 0.9),
            open_for_s=rng.uniform(0.5, 4.0))
        transitions = []
        breaker = CircuitBreaker(
            config, name="fn",
            observer=lambda name, old, new: transitions.append((old, new)))
        now = 0.0
        for _ in range(N_OPS):
            now += rng.uniform(0.0, 1.5)
            op = rng.random()
            if op < 0.4:
                breaker.record_failure(now)
            elif op < 0.7:
                breaker.record_success(now)
            else:
                breaker.allow(now)
            assert breaker.state in ("closed", "open", "half_open")
        return transitions

    def test_random_sequences_only_take_legal_transitions(self):
        total = 0
        for seed in range(N_SEQUENCES):
            for old, new in self._run_sequence(seed):
                assert (old, new) in LEGAL_BREAKER_TRANSITIONS, (
                    f"seed {seed}: illegal transition {old} -> {new}")
                total += 1
        # The sequences must actually exercise the machine.
        assert total > N_SEQUENCES

    def test_half_open_probe_is_exclusive(self):
        for seed in range(N_SEQUENCES):
            rng = random.Random(1000 + seed)
            breaker = CircuitBreaker(BreakerConfig(
                window_s=5.0, min_failures=1, failure_rate=0.1,
                open_for_s=1.0))
            now = 0.0
            for _ in range(N_OPS):
                now += rng.uniform(0.0, 0.7)
                if rng.random() < 0.5:
                    breaker.record_failure(now)
                else:
                    admitted = breaker.allow(now)
                    if breaker.state == "half_open" and admitted:
                        # A second call while the probe is out must fail
                        # fast: only one probe may be in flight.
                        assert not breaker.allow(now)
                        if rng.random() < 0.5:
                            breaker.record_success(now)


class TestJournalDuplicateFencing:
    def test_random_sequences_fence_exactly_once(self):
        for seed in range(N_SEQUENCES):
            rng = random.Random(seed)
            journal = RedispatchJournal()
            keys = [(uid, 0, fn) for uid in range(6) for fn in range(2)]
            redispatched = set()
            completed = set()
            expected_duplicates = 0
            now = 0.0
            for _ in range(N_OPS):
                now += rng.uniform(0.0, 0.5)
                key = rng.choice(keys)
                op = rng.random()
                if op < 0.25:
                    journal.register(key, now)
                elif op < 0.5:
                    journal.register(key, now)
                    if journal.may_redispatch(key):
                        assert key not in redispatched
                        assert key not in completed
                        journal.record_redispatch(key, now)
                        redispatched.add(key)
                    else:
                        # Either already re-dispatched or already done.
                        assert key in redispatched or key in completed
                else:
                    journal.register(key, now)
                    first = journal.record_completion(key, now)
                    if key in completed:
                        assert not first
                        expected_duplicates += 1
                    else:
                        assert first
                        completed.add(key)
            assert journal.duplicate_completions == expected_duplicates
            assert journal.redispatch_count() == len(redispatched)
