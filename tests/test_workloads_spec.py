"""Tests for invocation specs and input spaces."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.work import WorkUnit
from repro.workloads.inputs import (
    FeatureSpec,
    InputDataset,
    SyntheticInputSpace,
    image_space,
    json_space,
    tabular_space,
    text_space,
    video_space,
)
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


def make_spec():
    return InvocationSpec("f", [
        RunSegment(WorkUnit(gcycles=3.0)),            # 1.0 s at 3 GHz
        BlockSegment(0.5),
        RunSegment(WorkUnit(gcycles=0.0, mem_seconds=0.2)),
    ])


class TestInvocationSpec:
    def test_totals(self):
        spec = make_spec()
        assert spec.total_run_seconds(3.0) == pytest.approx(1.2)
        assert spec.total_block_seconds == pytest.approx(0.5)
        assert spec.service_time(3.0) == pytest.approx(1.7)

    def test_run_time_depends_on_frequency_block_does_not(self):
        spec = make_spec()
        assert spec.total_run_seconds(1.5) == pytest.approx(2.2)
        assert spec.total_block_seconds == pytest.approx(0.5)

    def test_idle_fraction(self):
        spec = make_spec()
        assert spec.idle_fraction(3.0) == pytest.approx(0.5 / 1.7)

    def test_segment_views(self):
        spec = make_spec()
        assert len(spec.run_segments) == 2
        assert len(spec.block_segments) == 1

    def test_must_start_with_run_segment(self):
        with pytest.raises(ValueError):
            InvocationSpec("f", [BlockSegment(1.0)])

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            InvocationSpec("f", [])

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            BlockSegment(-0.1)


class TestFeatureSpec:
    def test_lognormal_centred_on_median(self):
        spec = FeatureSpec("x", "lognormal", (10.0, 0.5))
        rng = np.random.default_rng(0)
        values = [spec.sample(rng) for _ in range(2000)]
        assert np.median(values) == pytest.approx(10.0, rel=0.1)

    def test_uniform_within_bounds(self):
        spec = FeatureSpec("x", "uniform", (2.0, 4.0))
        rng = np.random.default_rng(0)
        assert all(2.0 <= spec.sample(rng) <= 4.0 for _ in range(200))

    def test_choice_draws_from_values(self):
        spec = FeatureSpec("x", "choice", (1.0, 2.0))
        rng = np.random.default_rng(0)
        assert {spec.sample(rng) for _ in range(100)} == {1.0, 2.0}

    def test_zero_dispersion_collapses_lognormal(self):
        spec = FeatureSpec("x", "lognormal", (10.0, 0.5))
        rng = np.random.default_rng(0)
        assert spec.sample(rng, dispersion=0.0) == pytest.approx(10.0)

    def test_dispersion_widens_spread(self):
        spec = FeatureSpec("x", "lognormal", (10.0, 0.5))
        narrow = np.std([
            spec.sample(np.random.default_rng(i), dispersion=0.2)
            for i in range(300)])
        wide = np.std([
            spec.sample(np.random.default_rng(i), dispersion=2.0)
            for i in range(300)])
        assert wide > narrow * 2

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpec("x", "gaussian", (0.0, 1.0))
        with pytest.raises(ValueError):
            FeatureSpec("x", "lognormal", (-1.0, 0.5))
        with pytest.raises(ValueError):
            FeatureSpec("x", "uniform", (4.0, 2.0))
        with pytest.raises(ValueError):
            FeatureSpec("x", "choice", ())

    def test_negative_dispersion_rejected(self):
        spec = FeatureSpec("x", "lognormal", (1.0, 0.5))
        with pytest.raises(ValueError):
            spec.sample(np.random.default_rng(0), dispersion=-1.0)


class TestInputSpaces:
    @pytest.mark.parametrize("factory", [
        json_space, image_space, video_space, text_space, tabular_space])
    def test_every_space_has_relevant_and_irrelevant_features(self, factory):
        space = factory()
        assert space.relevant_names
        assert len(space.relevant_names) < len(space.feature_names)

    def test_sample_covers_all_features(self):
        space = image_space()
        row = space.sample(np.random.default_rng(0))
        assert set(row) == set(space.feature_names)

    def test_duplicate_feature_names_rejected(self):
        spec = FeatureSpec("x", "choice", (1.0,))
        with pytest.raises(ValueError):
            SyntheticInputSpace("bad", (spec, spec))


class TestInputDataset:
    def test_generate_and_matrix(self):
        space = text_space()
        dataset = InputDataset.generate(space, 50, np.random.default_rng(0))
        assert len(dataset) == 50
        matrix = dataset.to_matrix(space.feature_names)
        assert matrix.shape == (50, len(space.feature_names))

    def test_generate_needs_rows(self):
        with pytest.raises(ValueError):
            InputDataset.generate(text_space(), 0, np.random.default_rng(0))

    @given(st.integers(min_value=0, max_value=10_000))
    def test_generation_is_seed_deterministic(self, seed):
        space = json_space()
        a = InputDataset.generate(space, 5, np.random.default_rng(seed))
        b = InputDataset.generate(space, 5, np.random.default_rng(seed))
        assert a.rows == b.rows
