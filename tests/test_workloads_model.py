"""Tests for FunctionModel: calibration, sampling, paper-shape checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.functionbench import (
    CNN_SERV,
    ML_TRAIN,
    STANDALONE_FUNCTIONS,
    VID_PROC,
    WEB_SERV,
)
from repro.workloads.model import FunctionModel


class TestFunctionModelBasics:
    def test_run_seconds_at_top_frequency_matches_parameter(self):
        for f in STANDALONE_FUNCTIONS:
            assert f.run_seconds(3.0) == pytest.approx(f.run_seconds_at_max)

    def test_run_seconds_grows_at_lower_frequency(self):
        for f in STANDALONE_FUNCTIONS:
            assert f.run_seconds(1.2) > f.run_seconds(3.0)

    def test_slo_is_five_times_warm_latency(self):
        f = CNN_SERV
        assert f.slo_seconds() == pytest.approx(5 * f.service_seconds(3.0))
        assert f.slo_seconds(multiple=3.0) == pytest.approx(
            3 * f.service_seconds(3.0))

    def test_slo_multiple_must_be_positive(self):
        with pytest.raises(ValueError):
            CNN_SERV.slo_seconds(multiple=0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FunctionModel("bad", run_seconds_at_max=0.0,
                          compute_fraction=0.5, block_seconds=0.0,
                          n_blocks=0, cold_start_seconds=0.1)
        with pytest.raises(ValueError):
            FunctionModel("bad", run_seconds_at_max=0.1,
                          compute_fraction=1.5, block_seconds=0.0,
                          n_blocks=0, cold_start_seconds=0.1)
        with pytest.raises(ValueError):
            FunctionModel("bad", run_seconds_at_max=0.1,
                          compute_fraction=0.5, block_seconds=0.1,
                          n_blocks=0, cold_start_seconds=0.1)

    def test_frequency_must_be_positive(self):
        with pytest.raises(ValueError):
            CNN_SERV.run_seconds(0.0)


class TestPaperCalibration:
    """The characterization shapes the whole design rests on (Figs. 2-3)."""

    def test_webserv_is_io_dominated(self):
        # WebServ at 1.2 GHz loses only ~12% response time in the paper.
        rt_slow = WEB_SERV.service_seconds(1.2)
        rt_fast = WEB_SERV.service_seconds(3.0)
        assert 1.05 < rt_slow / rt_fast < 1.25

    def test_cnnserv_loses_about_quarter_at_2ghz(self):
        # Paper: 2 GHz costs CNNServ ~23% response time.
        rt_slow = CNN_SERV.service_seconds(2.1)
        rt_fast = CNN_SERV.service_seconds(3.0)
        assert 1.15 < rt_slow / rt_fast < 1.35

    def test_mltrain_is_most_frequency_sensitive(self):
        ratios = {
            f.name: f.service_seconds(1.2) / f.service_seconds(3.0)
            for f in STANDALONE_FUNCTIONS
        }
        assert max(ratios, key=ratios.get) == "MLTrain"

    def test_storage_functions_idle_majority_of_time(self):
        # Section III-3: storage-accessing functions idle ~70%.
        assert WEB_SERV.idle_fraction > 0.6

    def test_execution_times_span_milliseconds_to_seconds(self):
        times = [f.run_seconds_at_max for f in STANDALONE_FUNCTIONS]
        assert min(times) < 0.01
        assert max(times) > 1.0

    def test_energy_saving_headroom_exists_for_compute_bound(self):
        """Running CNNServ at 2.1 GHz must cost ~40% less energy than at
        3.0 GHz (Fig. 2b) under the calibrated power model."""
        from repro.hardware.power import PowerModel
        power = PowerModel()
        def run_energy(freq):
            return power.core_active_power(freq) * CNN_SERV.run_seconds(freq)
        saving = 1.0 - run_energy(2.1) / run_energy(3.0)
        assert 0.25 < saving < 0.55


class TestInvocationSampling:
    def test_sampled_run_time_near_model_median(self):
        rng = np.random.default_rng(0)
        samples = [
            CNN_SERV.sample_invocation(rng).total_run_seconds(3.0)
            for _ in range(500)
        ]
        assert np.median(samples) == pytest.approx(
            CNN_SERV.run_seconds_at_max, rel=0.15)

    def test_segment_structure_matches_n_blocks(self):
        rng = np.random.default_rng(0)
        spec = VID_PROC.sample_invocation(rng)
        assert len(spec.run_segments) == VID_PROC.n_blocks + 1
        assert len(spec.block_segments) == VID_PROC.n_blocks

    def test_features_populated_for_input_sensitive_functions(self):
        rng = np.random.default_rng(0)
        spec = VID_PROC.sample_invocation(rng)
        assert "duration_s" in spec.features

    def test_input_dependence_moves_execution_time(self):
        rng = np.random.default_rng(0)
        specs = [VID_PROC.sample_invocation(rng) for _ in range(300)]
        durations = [s.features["duration_s"] for s in specs]
        runs = [s.total_run_seconds(3.0) for s in specs]
        corr = np.corrcoef(durations, runs)[0, 1]
        assert corr > 0.9

    def test_zero_dispersion_removes_input_variation(self):
        rng = np.random.default_rng(0)
        runs = [
            VID_PROC.sample_invocation(rng, dispersion=0.0).total_run_seconds(3.0)
            for _ in range(100)
        ]
        spread = np.std(runs) / np.mean(runs)
        assert spread < 0.15  # only the residual run noise remains

    def test_mem_multiplier_inflates_memory_time_only(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        base = CNN_SERV.sample_invocation(rng1)
        throttled = CNN_SERV.sample_invocation(rng2, mem_time_multiplier=1.5)
        base_cycles = sum(s.work.gcycles for s in base.run_segments)
        throttled_cycles = sum(s.work.gcycles for s in throttled.run_segments)
        base_mem = sum(s.work.mem_seconds for s in base.run_segments)
        throttled_mem = sum(s.work.mem_seconds for s in throttled.run_segments)
        assert throttled_cycles == pytest.approx(base_cycles)
        assert throttled_mem == pytest.approx(base_mem * 1.5)

    def test_mem_multiplier_below_one_rejected(self):
        with pytest.raises(ValueError):
            CNN_SERV.sample_invocation(np.random.default_rng(0),
                                       mem_time_multiplier=0.5)

    def test_cold_start_work_is_compute_heavy(self):
        rng = np.random.default_rng(0)
        work = CNN_SERV.sample_cold_start_work(rng)
        assert work.duration(3.0) == pytest.approx(
            CNN_SERV.cold_start_seconds, rel=0.5)
        # Cold starts are compute-dominated (interpreter + library init).
        assert work.gcycles / 3.0 > work.mem_seconds

    def test_sampling_is_deterministic_per_seed(self):
        a = ML_TRAIN.sample_invocation(np.random.default_rng(3))
        b = ML_TRAIN.sample_invocation(np.random.default_rng(3))
        assert a.total_run_seconds(3.0) == b.total_run_seconds(3.0)
        assert a.features == b.features


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=10_000),
       freq=st.sampled_from([1.2, 1.8, 2.4, 3.0]))
def test_sampled_segments_always_consistent(seed, freq):
    """Sampled invocations always satisfy the structural invariants the
    platform relies on: positive run work, block total matches segments."""
    rng = np.random.default_rng(seed)
    for model in STANDALONE_FUNCTIONS:
        spec = model.sample_invocation(rng)
        assert spec.total_run_seconds(freq) > 0
        assert spec.total_block_seconds >= 0
        assert spec.function_name == model.name
        assert spec.service_time(freq) == pytest.approx(
            spec.total_run_seconds(freq) + spec.total_block_seconds)
