"""Tests for the CLI chart rendering (synthetic results, no simulation)."""

from repro.cli import _chart
from repro.experiments.common import ExperimentResult


def make_fig15_result():
    result = ExperimentResult("Fig. 15", "freq distribution")
    for freq, share in ((1.2, 10.0), (1.8, 50.0), (3.0, 40.0)):
        result.add(freq_ghz=freq, share_pct=share, invocations=int(share))
    return result


def make_fig14_result():
    result = ExperimentResult("Fig. 14", "freq timeline")
    for system, freq in (("Baseline", 3.0), ("EcoFaaS", 2.0)):
        for t in range(5):
            result.add(system=system, time_s=float(t), avg_freq_ghz=freq)
        result.add(system=system, time_s=-1.0, avg_freq_ghz=freq)
    return result


def make_norm_result():
    result = ExperimentResult("Fig. 12", "energy")
    result.add(benchmark="WebServ", norm_Baseline=1.0, norm_EcoFaaS=0.6)
    result.add(benchmark="CNNServ", norm_Baseline=1.0, norm_EcoFaaS=0.7)
    return result


def test_fig15_chart_renders_bars(capsys):
    _chart("fig15", make_fig15_result())
    out = capsys.readouterr().out
    assert "1.8GHz" in out
    assert "█" in out


def test_fig14_chart_renders_timelines(capsys):
    _chart("fig14", make_fig14_result())
    out = capsys.readouterr().out
    assert "Baseline" in out and "EcoFaaS" in out
    assert "[0s..4s]" in out


def test_normalized_chart_renders_groups(capsys):
    _chart("fig12", make_norm_result())
    out = capsys.readouterr().out
    assert "WebServ" in out
    assert "norm_EcoFaaS" in out


def test_unknown_key_renders_nothing(capsys):
    _chart("table1", make_norm_result())
    out = capsys.readouterr().out
    assert out.strip() == ""
