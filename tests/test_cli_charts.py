"""Tests for the CLI chart rendering (synthetic results, no simulation)."""

from repro.cli import _chart
from repro.experiments.common import ExperimentResult


def make_fig15_result():
    result = ExperimentResult("Fig. 15", "freq distribution")
    for freq, share in ((1.2, 10.0), (1.8, 50.0), (3.0, 40.0)):
        result.add(freq_ghz=freq, share_pct=share, invocations=int(share))
    return result


def make_fig14_result():
    result = ExperimentResult("Fig. 14", "freq timeline")
    for system, freq in (("Baseline", 3.0), ("EcoFaaS", 2.0)):
        for t in range(5):
            result.add(system=system, time_s=float(t), avg_freq_ghz=freq)
        result.add(system=system, time_s=-1.0, avg_freq_ghz=freq)
    return result


def make_norm_result():
    result = ExperimentResult("Fig. 12", "energy")
    result.add(benchmark="WebServ", norm_Baseline=1.0, norm_EcoFaaS=0.6)
    result.add(benchmark="CNNServ", norm_Baseline=1.0, norm_EcoFaaS=0.7)
    return result


def test_fig15_chart_renders_bars(capsys):
    _chart("fig15", make_fig15_result())
    out = capsys.readouterr().out
    assert "1.8GHz" in out
    assert "█" in out


def test_fig14_chart_renders_timelines(capsys):
    _chart("fig14", make_fig14_result())
    out = capsys.readouterr().out
    assert "Baseline" in out and "EcoFaaS" in out
    assert "[0s..4s]" in out


def test_normalized_chart_renders_groups(capsys):
    _chart("fig12", make_norm_result())
    out = capsys.readouterr().out
    assert "WebServ" in out
    assert "norm_EcoFaaS" in out


def test_unknown_key_renders_nothing(capsys):
    _chart("table1", make_norm_result())
    out = capsys.readouterr().out
    assert out.strip() == ""


# ----------------------------------------------------------------------
# Exit codes and the `repro all` pass/fail summary
# ----------------------------------------------------------------------
def _fake_experiments(monkeypatch, modules):
    """Install synthetic experiment modules into the CLI registry."""
    import importlib
    import sys
    import types

    import repro.cli as cli

    registry = {}
    for key, run in modules.items():
        module = types.ModuleType(f"fake_experiments.{key}")
        module.run = run
        sys.modules[module.__name__] = module
        registry[key] = module.__name__
    monkeypatch.setattr(cli, "EXPERIMENTS", registry)
    monkeypatch.setattr(importlib, "import_module",
                        lambda name: sys.modules[name])
    return cli


def _ok_run(quick=True, seed=0):
    result = ExperimentResult("OK", "always passes")
    result.add(value=1.0)
    return result


def _boom_run(quick=True, seed=0):
    raise RuntimeError("boom")


def test_single_experiment_failure_exits_nonzero(monkeypatch, capsys):
    cli = _fake_experiments(monkeypatch, {"ok": _ok_run, "bad": _boom_run})
    assert cli.main(["ok"]) == 0
    assert cli.main(["bad"]) == 1
    err = capsys.readouterr().err
    assert "bad FAILED: RuntimeError: boom" in err


def test_unknown_experiment_exits_2(monkeypatch, capsys):
    cli = _fake_experiments(monkeypatch, {"ok": _ok_run})
    assert cli.main(["nope"]) == 2


def test_all_keeps_going_and_summarises(monkeypatch, capsys):
    cli = _fake_experiments(monkeypatch, {"ok": _ok_run, "bad": _boom_run,
                                          "ok2": _ok_run})
    assert cli.main(["all"]) == 1
    captured = capsys.readouterr()
    # Every experiment ran despite the failure in the middle.
    assert "== summary ==" in captured.out
    assert "2/3 experiments passed" in captured.out
    assert "RuntimeError: boom" in captured.out  # the FAIL row's detail
    lines = [line for line in captured.out.splitlines()
             if line.startswith(("ok", "bad"))]
    assert any("PASS" in line for line in lines)
    assert any("FAIL" in line for line in lines)


def test_all_green_exits_zero(monkeypatch, capsys):
    cli = _fake_experiments(monkeypatch, {"ok": _ok_run, "ok2": _ok_run})
    assert cli.main(["all"]) == 0
    assert "2/2 experiments passed" in capsys.readouterr().out
