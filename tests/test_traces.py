"""Tests for trace containers, the Azure-like generator, and Poisson load."""

import numpy as np
import pytest

from repro.traces.azure import (
    AzureTraceConfig,
    generate_azure_trace,
    map_to_benchmarks,
)
from repro.traces.poisson import (
    PoissonLoadConfig,
    expected_core_seconds,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent, cdf
from repro.workloads.registry import all_benchmarks, benchmark_names


class TestTrace:
    def test_events_sorted_on_construction(self):
        trace = Trace([TraceEvent(5.0, "b"), TraceEvent(1.0, "a")], 10.0)
        assert [e.time_s for e in trace] == [1.0, 5.0]

    def test_event_beyond_duration_rejected(self):
        with pytest.raises(ValueError):
            Trace([TraceEvent(11.0, "a")], 10.0)

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(-1.0, "a")

    def test_mean_rate(self):
        trace = Trace([TraceEvent(float(i), "a") for i in range(10)], 20.0)
        assert trace.mean_rate_rps == 0.5

    def test_invocation_counts_and_popularity_order(self):
        trace = Trace(
            [TraceEvent(0.1, "a"), TraceEvent(0.2, "b"), TraceEvent(0.3, "b")],
            1.0)
        assert trace.invocation_counts() == {"a": 1, "b": 2}
        assert trace.benchmarks() == ["b", "a"]

    def test_distinct_per_window(self):
        trace = Trace([
            TraceEvent(0.1, "a"), TraceEvent(0.2, "b"),   # window 0
            TraceEvent(1.5, "a"),                          # window 1
        ], 3.0)
        assert trace.distinct_per_window(1.0) == [2, 1, 0]

    def test_count_per_window_includes_boundary_events(self):
        trace = Trace([TraceEvent(0.5, "a"), TraceEvent(2.9, "a")], 3.0)
        assert trace.count_per_window(1.0) == [1, 0, 1]

    def test_window_validation(self):
        trace = Trace([], 1.0)
        with pytest.raises(ValueError):
            trace.distinct_per_window(0.0)
        with pytest.raises(ValueError):
            trace.count_per_window(-1.0)

    def test_restrict_and_rename(self):
        trace = Trace(
            [TraceEvent(0.1, "x"), TraceEvent(0.2, "y")], 1.0)
        only_x = trace.restrict_to(["x"])
        assert len(only_x) == 1
        renamed = only_x.rename({"x": "WebServ"})
        assert renamed.events[0].benchmark == "WebServ"

    def test_truncate(self):
        trace = Trace([TraceEvent(0.5, "a"), TraceEvent(5.0, "a")], 10.0)
        cut = trace.truncate(1.0)
        assert len(cut) == 1
        assert cut.duration_s == 1.0

    def test_cdf(self):
        pairs = cdf([3.0, 1.0, 2.0])
        assert pairs == [(1.0, pytest.approx(1 / 3)),
                         (2.0, pytest.approx(2 / 3)),
                         (3.0, pytest.approx(1.0))]
        with pytest.raises(ValueError):
            cdf([])


class TestAzureGenerator:
    def test_deterministic_per_seed(self):
        config = AzureTraceConfig(n_functions=20, duration_s=60.0, seed=3)
        a = generate_azure_trace(config)
        b = generate_azure_trace(config)
        assert len(a) == len(b)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        base = dict(n_functions=20, duration_s=60.0)
        a = generate_azure_trace(AzureTraceConfig(seed=0, **base))
        b = generate_azure_trace(AzureTraceConfig(seed=1, **base))
        assert a.events != b.events

    def test_popularity_is_heavy_tailed(self):
        trace = generate_azure_trace(
            AzureTraceConfig(n_functions=100, duration_s=300.0, seed=0))
        counts = sorted(trace.invocation_counts().values(), reverse=True)
        top_decile = sum(counts[:len(counts) // 10])
        assert top_decile > 0.4 * sum(counts)

    def test_burstiness_creates_overdispersion(self):
        # A pure Poisson process has variance == mean per window; bursts
        # push the index of dispersion well above 1.
        trace = generate_azure_trace(
            AzureTraceConfig(n_functions=50, duration_s=300.0, seed=1))
        counts = np.array(trace.count_per_window(1.0))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 2.0

    def test_evaluation_preset_matches_quoted_statistics(self):
        """§VIII-A: ~119 distinct functions per 10 s window and ~14
        invocations per active function per window (we accept ±40%)."""
        trace = generate_azure_trace(
            AzureTraceConfig.evaluation(duration_s=300.0, seed=0))
        distinct = np.mean(trace.distinct_per_window(10.0))
        assert 70 <= distinct <= 160
        per_fn = (np.mean(trace.count_per_window(10.0)) / distinct)
        assert 8 <= per_fn <= 22

    def test_small_cluster_preset_matches_fig7(self):
        """Fig. 7: on average ~3 distinct functions per second, with a
        heavy tail reaching tens."""
        trace = generate_azure_trace(
            AzureTraceConfig.small_cluster(duration_s=600.0, seed=0))
        distinct_1s = trace.distinct_per_window(1.0)
        assert 1.5 <= np.mean(distinct_1s) <= 6.0
        # Heavy tail: the busiest second sees several times the mean
        # (the paper reports up to 36; our per-function-independent bursts
        # reach ~2-3x the mean).
        assert max(distinct_1s) >= 2 * np.mean(distinct_1s)

    def test_fig7_windows_are_monotone_in_window_size(self):
        trace = generate_azure_trace(
            AzureTraceConfig.small_cluster(duration_s=600.0, seed=0))
        means = [np.mean(trace.distinct_per_window(w))
                 for w in (1.0, 10.0, 60.0)]
        assert means[0] < means[1] < means[2]

    def test_map_to_benchmarks_covers_bulk_of_invocations(self):
        trace = generate_azure_trace(
            AzureTraceConfig.evaluation(duration_s=120.0, seed=0))
        mapped = map_to_benchmarks(trace, benchmark_names())
        assert set(mapped.invocation_counts()) <= set(benchmark_names())
        # The 12 most popular functions cover most of the invocations
        # (paper: 76%).
        assert len(mapped) > 0.5 * len(trace)

    def test_map_to_benchmarks_validates(self):
        trace = Trace([TraceEvent(0.1, "only")], 1.0)
        with pytest.raises(ValueError):
            map_to_benchmarks(trace, [])
        with pytest.raises(ValueError):
            map_to_benchmarks(trace, ["a", "b"])

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(n_functions=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(base_rate_hz=0.0)


class TestPoissonLoad:
    def test_rate_matches_request_count(self):
        config = PoissonLoadConfig(["A"], rate_rps=50.0, duration_s=100.0,
                                   seed=0)
        trace = generate_poisson_trace(config)
        assert trace.mean_rate_rps == pytest.approx(50.0, rel=0.1)

    def test_benchmarks_drawn_uniformly(self):
        config = PoissonLoadConfig(["A", "B", "C"], rate_rps=100.0,
                                   duration_s=60.0, seed=0)
        counts = generate_poisson_trace(config).invocation_counts()
        values = np.array(list(counts.values()))
        assert values.min() > 0.8 * values.mean()

    def test_interarrivals_are_exponential(self):
        config = PoissonLoadConfig(["A"], rate_rps=100.0, duration_s=200.0,
                                   seed=1)
        times = [e.time_s for e in generate_poisson_trace(config)]
        gaps = np.diff(times)
        # Exponential: cv == 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoissonLoadConfig([], 1.0, 1.0)
        with pytest.raises(ValueError):
            PoissonLoadConfig(["A"], 0.0, 1.0)
        with pytest.raises(ValueError):
            PoissonLoadConfig(["A"], 1.0, 0.0)

    def test_expected_core_seconds_sums_functions(self):
        wf = all_benchmarks()[7]  # an application
        assert expected_core_seconds(wf) == pytest.approx(
            sum(f.run_seconds(3.0) for f in wf.functions))

    def test_rate_for_utilization_scales_linearly(self):
        workflows = all_benchmarks()
        low = rate_for_utilization(workflows, 0.25, total_cores=100)
        high = rate_for_utilization(workflows, 0.50, total_cores=100)
        assert high == pytest.approx(2 * low)

    def test_rate_for_utilization_validation(self):
        workflows = all_benchmarks()
        with pytest.raises(ValueError):
            rate_for_utilization([], 0.5, 10)
        with pytest.raises(ValueError):
            rate_for_utilization(workflows, 0.0, 10)
        with pytest.raises(ValueError):
            rate_for_utilization(workflows, 0.5, 0)

    def test_generated_load_is_plausible_for_cluster(self):
        """The paper's trace drives 50-100 RPS per 20-core server; our
        medium-load rate for one server should be the same order."""
        workflows = all_benchmarks()
        rate = rate_for_utilization(workflows, 0.5, total_cores=20)
        assert 5.0 <= rate <= 500.0
