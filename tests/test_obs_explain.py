"""``repro explain``: ranked causes for missed-SLO workflows.

The acceptance bar: in both the guarded-overload and the HA-partition
regimes, at least one workflow misses its SLO and ``explain`` produces a
non-empty ranked cause list for it, joining trace spans, instants, and
audit records.
"""

import pytest

from repro import obs
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import overload as overload_experiment
from repro.experiments import partition as partition_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.obs.explain import (
    explain,
    format_explanation,
    load_explain_data,
    missed_workflows,
)
from repro.platform.cluster import ClusterConfig


@pytest.fixture(scope="module")
def overload_artifacts(tmp_path_factory):
    """Trace + audit files from one guarded overload run."""
    out = tmp_path_factory.mktemp("overload")
    tracer = obs.install(obs.Tracer())
    audit = obs.install_audit(obs.AuditLog())
    try:
        trace = make_load_trace("high", 2, 12.0, seed=6,
                                cores_per_server=20)
        config = ClusterConfig(
            n_servers=2, seed=6,
            guard=overload_experiment.guard_config(2, 20))
        run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)
    finally:
        obs.uninstall()
        obs.uninstall_audit()
    trace_path = out / "trace.json"
    audit_path = out / "audit.jsonl"
    obs.write_chrome_trace(tracer, str(trace_path))
    audit.write(str(audit_path))
    return str(trace_path), str(audit_path)


@pytest.fixture(scope="module")
def partition_artifacts(tmp_path_factory):
    """Trace + audit files from one HA partition run."""
    out = tmp_path_factory.mktemp("partition")
    tracer = obs.install(obs.Tracer())
    audit = obs.install_audit(obs.AuditLog())
    try:
        partition_experiment.run_one(seed=0, with_faults=True,
                                     duration_s=30.0, n_servers=3)
    finally:
        obs.uninstall()
        obs.uninstall_audit()
    trace_path = out / "trace.json"
    audit_path = out / "audit.jsonl"
    obs.write_chrome_trace(tracer, str(trace_path))
    audit.write(str(audit_path))
    return str(trace_path), str(audit_path)


def explain_worst(trace_path, audit_path):
    data = load_explain_data(trace_path, audit_path=audit_path)
    missed = missed_workflows(data)
    assert missed, "expected at least one missed-SLO workflow"
    worst = missed[0]
    return data, explain(data, worst.uid, run=worst.run)


def test_overload_miss_has_ranked_causes(overload_artifacts):
    _, result = explain_worst(*overload_artifacts)
    assert result["causes"]
    scores = [c["score"] for c in result["causes"]]
    assert scores == sorted(scores, reverse=True)
    # Overload misses queue: the dominant cause names the pool waited in.
    assert result["causes"][0]["kind"] == "queueing"
    assert "pool" in result["causes"][0]["text"]
    text = format_explanation(result)
    assert "ranked causes:" in text
    assert "missed SLO" in text or "failed" in text


def test_partition_miss_has_ranked_causes(partition_artifacts):
    data, result = explain_worst(*partition_artifacts)
    assert result["causes"]
    assert result["missed_by_s"] is None or result["missed_by_s"] > 0 \
        or result["status"] == "failed"
    # Somewhere in the partition run, HA redispatches left audit records
    # that explain can join by workflow uid.
    redispatched = [r for r in data.audit
                    if r.get("kind") == "ha_redispatch"]
    assert redispatched
    uid = redispatched[0].get("workflow_uid")
    if any(s.cat == "workflow" and s.uid == uid for s in data.spans):
        joined = explain(data, uid)
        kinds = {c["kind"] for c in joined["causes"]}
        assert "ha" in kinds or "audit" in kinds


def test_explain_links_jobs_to_workflows(overload_artifacts):
    data, result = explain_worst(*overload_artifacts)
    assert result["jobs"], "workflow uid should link to its job uids"
    assert data.links, "trace should carry workflowLinks metadata"


def test_explain_unknown_workflow_raises(overload_artifacts):
    data = load_explain_data(overload_artifacts[0])
    with pytest.raises(KeyError):
        explain(data, 10**9)


def test_cli_explain_end_to_end(overload_artifacts, capsys):
    from repro.cli import main

    trace_path, audit_path = overload_artifacts
    assert main(["explain", trace_path, "--audit", audit_path,
                 "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "ranked causes:" in out
    assert "1." in out


def test_cli_explain_specific_workflow(overload_artifacts, capsys):
    from repro.cli import main

    trace_path, audit_path = overload_artifacts
    data = load_explain_data(trace_path)
    uid = missed_workflows(data)[0].uid
    assert main(["explain", trace_path, str(uid)]) == 0
    out = capsys.readouterr().out
    assert f"workflow {uid} " in out


def test_cli_explain_missing_file(capsys):
    from repro.cli import main

    assert main(["explain", "/nonexistent/trace.json"]) == 2
