"""repro.obs.fingerprint: canonical JSON, chain digests, recorder.

Covers the three contracts the module makes:

* the canonical-JSON serialization is byte-stable (it backs every pinned
  digest in the repo — seed fingerprints, fuzz-corpus artifacts);
* chain digests are *progressive*: two chains agree at epoch ``e`` iff
  every epoch up to ``e`` agreed, which is what ``repro diff`` bisects;
* a fingerprints-armed run is bit-identical to the stored seed
  fingerprints (including under chaos), and the verify-layer self-check
  catches tampered chains.
"""

import dataclasses
import json

import pytest

from repro import obs, verify
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultPlan
from repro.obs.fingerprint import (
    SUBSYSTEMS,
    FingerprintRecorder,
    canon,
    canonical_json,
    chain_seed,
    cluster_fingerprint,
    digest,
    fold_chain,
    load_document,
)
from repro.obs.ledger import EnergyLedger
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy


# ---------------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------------
def test_canon_floats_are_full_precision_reprs():
    assert canon(0.1) == repr(0.1)
    assert canon(1.0) == "1.0"
    assert canon(True) is True  # bool is not an int here
    assert canon(7) == 7


def test_canonical_json_uses_default_separators():
    # The stored seed fingerprints were produced with json.dumps default
    # separators (", " / ": "); this byte-level contract must hold.
    assert canonical_json([1, 2]) == "[1, 2]"
    assert canonical_json({"a": 1}) == '{"a": 1}'


def test_canon_dict_keys_stringified_and_sorted():
    out = canonical_json({2: "b", 1: "a", "x": None})
    assert out == '{"1": "a", "2": "b", "x": null}'


def test_canon_dataclass_by_field():
    @dataclasses.dataclass
    class Row:
        t: float
        n: int

    assert canon(Row(t=0.5, n=3)) == {"t": "0.5", "n": 3}


def test_digest_is_stable_across_equivalent_inputs():
    assert digest({"b": 2, "a": 1}) == digest({"a": 1, "b": 2})
    assert digest({"a": 1}) != digest({"a": 2})


# ---------------------------------------------------------------------------
# Chain digests
# ---------------------------------------------------------------------------
def test_chain_seeds_are_distinct_per_subsystem():
    seeds = {chain_seed(sub) for sub in SUBSYSTEMS}
    assert len(seeds) == len(SUBSYSTEMS)


def test_fold_chain_is_progressive():
    a = fold_chain("metrics", ["p0", "p1", "p2", "p3"])
    b = fold_chain("metrics", ["p0", "p1", "px", "p3"])
    assert a[0] == b[0] and a[1] == b[1]  # shared prefix agrees
    assert a[2] != b[2]  # first differing payload breaks the chain...
    assert a[3] != b[3]  # ...and every later link, same tail or not
    assert fold_chain("ledger", ["p0"]) != fold_chain("metrics", ["p0"])


def test_recorder_rejects_nonpositive_epoch():
    with pytest.raises(ValueError):
        FingerprintRecorder(epoch_s=0.0)


# ---------------------------------------------------------------------------
# Armed reference runs (bit-identity + self-check)
# ---------------------------------------------------------------------------
def _armed_run(fault_plan=None, config=None):
    """One EcoFaaS reference run with every observer armed."""
    tracer = obs.install(obs.Tracer(ledger=EnergyLedger(),
                                    fingerprint=FingerprintRecorder()))
    audit = obs.install_audit(obs.AuditLog())
    verifier = verify.install(verify.Verifier())
    try:
        cluster = run_cluster(
            EcoFaaSSystem(EcoFaaSConfig()),
            make_load_trace("low", 2, 6.0, seed=3),
            config or ClusterConfig(n_servers=2, drain_s=4.0),
            fault_plan=fault_plan)
    finally:
        obs.uninstall()
        obs.uninstall_audit()
        verify.uninstall()
    return cluster, tracer, audit, verifier


@pytest.fixture(scope="module")
def armed():
    return _armed_run()


def _seed_reference():
    from tests.fingerprints import load_reference
    return load_reference()


def test_armed_run_matches_stored_seed_fingerprint(armed):
    cluster, tracer, _, _ = armed
    reference = _seed_reference()["ecofaas"]
    assert cluster_fingerprint(cluster) == reference
    assert tracer.fingerprint.entries[-1]["final"] == reference


def test_armed_chaos_run_matches_stored_seed_fingerprint():
    chaos_config = ClusterConfig(
        n_servers=2, drain_s=4.0,
        reliability=ReliabilityPolicy(max_retries=8, backoff_base_s=0.05))
    plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"], seed=5)
    cluster, _, _, verifier = _armed_run(fault_plan=plan,
                                         config=chaos_config)
    assert cluster_fingerprint(cluster) == \
        _seed_reference()["ecofaas_chaos"]
    assert verifier.violations == []


def test_entry_has_all_subsystem_chains(armed):
    _, tracer, _, _ = armed
    entry = tracer.fingerprint.entries[-1]
    assert set(entry["chains"]) == set(SUBSYSTEMS)
    for chain in entry["chains"].values():
        assert len(chain) == entry["n_epochs"]
    assert entry["n_epochs"] > 0
    assert entry["label"] == "EcoFaaS"


def test_summary_rolls_up_energy_and_workflows(armed):
    cluster, tracer, _, _ = armed
    summary = tracer.fingerprint.entries[-1]["summary"]
    assert summary["energy_total_j"] == pytest.approx(
        cluster.total_energy_j)
    assert summary["workflows_completed"] <= summary["workflows"]
    total_by_component = sum(summary["energy_by_component"].values())
    assert total_by_component == pytest.approx(cluster.total_energy_j,
                                               rel=1e-6)


def test_verify_selfcheck_passes_on_honest_run(armed):
    _, _, _, verifier = armed
    assert verifier.violations == []


def test_verify_selfcheck_catches_tampered_chain(armed):
    cluster, tracer, _, _ = armed
    entry = json.loads(json.dumps(tracer.fingerprint.entries[-1]))
    entry["chains"]["metrics"][1] = "0" * 64
    fresh = verify.Verifier()
    fresh.check_fingerprints(tracer.fingerprint, entry, cluster)
    assert [v.invariant for v in fresh.violations] == ["fingerprint-chain"]
    assert dict(fresh.violations[0].details)["epoch"] == 1


def test_verify_selfcheck_catches_tampered_final(armed):
    cluster, tracer, _, _ = armed
    entry = json.loads(json.dumps(tracer.fingerprint.entries[-1]))
    entry["final"] = "f" * 64
    fresh = verify.Verifier()
    fresh.check_fingerprints(tracer.fingerprint, entry, cluster)
    assert [v.invariant for v in fresh.violations] == ["fingerprint-chain"]


def test_document_roundtrip(tmp_path, armed):
    _, tracer, _, _ = armed
    path = tmp_path / "fp.json"
    manifest = {"seed": 3, "config_digest": digest({"seed": 3})}
    written = tracer.fingerprint.write(str(path), manifest)
    loaded = load_document(str(path))
    assert loaded == written
    assert loaded["manifest"]["seed"] == 3
    assert loaded["runs"][0]["chains"]["metrics"]


def test_load_document_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "other", "runs": []}))
    with pytest.raises(ValueError):
        load_document(str(path))
