"""Tests for scheduler draining and EWT remaining-work semantics."""

import pytest

from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


def make_pool(env, n_cores=1, freq=3.0, **kwargs):
    meter = EnergyMeter()
    power = PowerModel()
    cores = [Core(env, i, power, meter, freq) for i in range(n_cores)]
    kwargs.setdefault("context_switch_s", 0.0)
    return CorePoolScheduler(env, cores, frequency_ghz=freq, **kwargs)


def job_of(env, run_s=1.0, blocks=()):
    segments = [RunSegment(WorkUnit(gcycles=run_s * 3.0))]
    for block_s, next_run in blocks:
        segments.append(BlockSegment(block_s))
        segments.append(RunSegment(WorkUnit(gcycles=next_run * 3.0)))
    return Job(env, InvocationSpec("fn", segments), "bench",
               arrival_s=env.now)


class TestDrainReady:
    def test_drain_returns_queued_jobs_only(self):
        env = Environment()
        pool = make_pool(env, n_cores=1)
        running = job_of(env, run_s=5.0)
        queued = [job_of(env) for _ in range(3)]
        pool.submit(running)
        for job in queued:
            pool.submit(job)
        drained = pool.drain_ready()
        assert set(drained) == set(queued)
        assert pool.queue_length == 0
        assert pool.running_count == 1

    def test_drained_jobs_carry_remaining_ewt(self):
        env = Environment()
        pool = make_pool(env, n_cores=1)
        pool.submit(job_of(env, run_s=5.0))
        job = job_of(env, run_s=2.0)
        job.registered_run_seconds = 2.0
        pool.submit(job)
        ewt_before = pool.ewt_seconds
        drained = pool.drain_ready()
        assert drained == [job]
        assert pool.ewt_seconds == pytest.approx(ewt_before - 2.0)
        assert job.registered_run_seconds == pytest.approx(2.0)

    def test_drained_job_finishes_in_another_pool(self):
        env = Environment()
        pool_a = make_pool(env, n_cores=1)
        pool_b = make_pool(env, n_cores=1, freq=1.5)
        blocker = job_of(env, run_s=10.0)
        waiter = job_of(env, run_s=1.5)
        pool_a.submit(blocker)
        pool_a.submit(waiter)
        [drained] = pool_a.drain_ready()
        pool_b.submit(drained)
        env.run(until=5.0)
        assert waiter.finished
        assert waiter.completion_time == pytest.approx(3.0)  # 1.5s at 1.5GHz

    def test_drain_empty_queue(self):
        env = Environment()
        pool = make_pool(env)
        assert pool.drain_ready() == []


class TestEwtRemainingWork:
    def test_ewt_shrinks_as_segments_complete(self):
        """A blocked job only contributes its *remaining* run time, not its
        full registered amount (otherwise T_Queue estimates explode)."""
        env = Environment()
        pool = make_pool(env, n_cores=1)
        job = job_of(env, run_s=1.0, blocks=[(5.0, 1.0)])
        job.registered_run_seconds = 2.0
        pool.submit(job)
        assert pool.ewt_seconds == pytest.approx(2.0)
        env.run(until=1.5)  # first run segment done, job blocked
        assert pool.ewt_seconds == pytest.approx(1.0)
        env.run()
        assert pool.ewt_seconds == pytest.approx(0.0)

    def test_ewt_shrinks_on_preemption(self):
        env = Environment()
        pool = make_pool(env, n_cores=1, preemptive=True)
        old = job_of(env, run_s=0.5, blocks=[(1.0, 0.5)])
        pool.submit(old)
        env.run(until=0.6)  # old is blocked until 1.5
        young = job_of(env, run_s=10.0)
        young.registered_run_seconds = 10.0
        pool.submit(young)
        env.run(until=1.6)  # old came back and preempted young
        # Young consumed ~0.9s of its 10s; EWT reflects the remainder.
        assert pool.ewt_seconds < 10.0
        env.run()
        assert pool.ewt_seconds == pytest.approx(0.0, abs=1e-6)

    def test_ewt_never_negative(self):
        env = Environment()
        pool = make_pool(env, n_cores=2)
        for _ in range(5):
            job = job_of(env, run_s=0.3, blocks=[(0.2, 0.3)])
            job.registered_run_seconds = 0.1  # underestimate on purpose
            pool.submit(job)
        env.run()
        assert pool.ewt_seconds >= 0.0


class TestSeniorityInheritance:
    def test_workflow_seniority_overrides_arrival(self):
        env = Environment()
        env.run(until=5.0)
        spec = InvocationSpec("fn", [RunSegment(WorkUnit(1.0))])
        late_stage = Job(env, spec, "app", arrival_s=5.0,
                         seniority_time_s=1.0)
        fresh = Job(env, InvocationSpec("g", [RunSegment(WorkUnit(1.0))]),
                    "other", arrival_s=4.0)
        assert late_stage.seniority < fresh.seniority

    def test_inherited_seniority_preempts_younger_request(self):
        env = Environment()
        pool = make_pool(env, n_cores=1, preemptive=True)
        young = job_of(env, run_s=10.0)  # arrives at t=0, request t=0
        pool.submit(young)
        env.run(until=1.0)
        # A stage-2 function of a request that arrived BEFORE young.
        spec = InvocationSpec("fn", [RunSegment(WorkUnit(3.0))])
        old_stage = Job(env, spec, "app", arrival_s=env.now,
                        seniority_time_s=-1.0)
        pool.submit(old_stage)
        env.run(until=2.5)
        assert old_stage.finished  # it preempted young immediately
        assert not young.finished
