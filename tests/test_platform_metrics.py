"""Tests for percentile coercion and MetricsCollector reset."""

import math

import numpy as np
import pytest

from repro.platform.metrics import MetricsCollector, percentile


class TestPercentile:
    def test_list_input(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_numpy_array_input(self):
        values = np.array([10.0, 20.0, 30.0])
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 30.0

    def test_generator_input_is_consumed_once(self):
        # A one-shot generator supports neither len() nor a second pass;
        # percentile must materialize it instead of silently seeing [].
        result = percentile((x / 10 for x in range(11)), 50.0)
        assert result == pytest.approx(0.5)

    def test_empty_iterables_yield_nan(self):
        assert math.isnan(percentile([], 99.0))
        assert math.isnan(percentile(iter([]), 99.0))
        assert math.isnan(percentile(np.array([]), 99.0))

    def test_out_of_range_p_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestMetricsCollectorReset:
    def populate(self, collector):
        collector.record_workflow("WebServ", 0.0, 1.5, 1.0)
        collector.record_retry()
        collector.record_hedge()
        collector.record_timeout()
        collector.record_failure("rpc_spike")
        collector.record_crash(lost_jobs=2, lost_energy_j=5.0)
        collector.record_recovery(3.0)
        collector.record_workflow_failure("WebServ")

    def test_reset_restores_pristine_state(self):
        collector = MetricsCollector()
        self.populate(collector)
        assert collector.workflow_records
        assert collector.retries == 1
        collector.reset()
        fresh = MetricsCollector()
        assert vars(collector) == vars(fresh)

    def test_reset_clears_every_rollup(self):
        collector = MetricsCollector()
        self.populate(collector)
        collector.reset()
        assert collector.completed_workflows() == 0
        assert collector.failure_count() == 0
        assert collector.mttr_s() == 0.0
        assert collector.slo_violation_rate() == 0.0
        assert collector.retry_energy_j == 0.0
        assert collector.jobs_lost_to_crash == 0

    def test_reused_collector_matches_fresh_one(self):
        # The regression this guards: a collector carried through a sweep
        # must not leak one run's counters into the next run's rollups.
        reused = MetricsCollector()
        self.populate(reused)
        reused.reset()
        self.populate(reused)
        fresh = MetricsCollector()
        self.populate(fresh)
        assert vars(reused) == vars(fresh)
