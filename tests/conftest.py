"""Test-suite configuration: deterministic hypothesis profile.

The simulator itself is fully deterministic per seed; derandomizing
hypothesis makes the whole suite reproducible run-to-run (important when
asserting statistical shapes).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
