"""Canonical run fingerprints (the guard-determinism anchor).

A fingerprint digests every observable outcome of a small reference run —
function records, workflow records, reliability counters, per-server
energy — into one SHA-256 hex string. The reference fingerprints in
``tests/data/seed_fingerprint.json`` were generated from the pre-guard
seed code; ``tests/test_guard_determinism.py`` asserts that a guards-off
run still reproduces them byte-for-byte, which is the hard "opt-in means
untouched" contract of ``repro.guard``.

Regenerate (only when a PR *intentionally* changes baseline behaviour)::

    PYTHONPATH=src python tests/fingerprints.py --write
"""

from __future__ import annotations

import json
import os

from repro.obs.fingerprint import cluster_fingerprint  # noqa: F401
# Re-exported: the digest lives in repro.obs.fingerprint (shared with
# the fuzzer and the progressive-fingerprint recorder); this module
# keeps the reference-run definitions and the stored-seed plumbing.

DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                         "seed_fingerprint.json")


def reference_runs():
    """The three reference runs, as (label, cluster-factory) pairs."""
    from repro.baselines import BaselineSystem
    from repro.core import EcoFaaSSystem
    from repro.core.config import EcoFaaSConfig
    from repro.experiments.common import make_load_trace, run_cluster
    from repro.faults.plan import FaultPlan
    from repro.platform.cluster import ClusterConfig
    from repro.platform.reliability import ReliabilityPolicy

    def trace():
        return make_load_trace("low", 2, 6.0, seed=3)

    plain = ClusterConfig(n_servers=2, drain_s=4.0)
    chaos = ClusterConfig(
        n_servers=2, drain_s=4.0,
        reliability=ReliabilityPolicy(max_retries=8, backoff_base_s=0.05))

    def chaos_plan():
        return FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"], seed=5)

    return [
        ("baseline", lambda: run_cluster(BaselineSystem(), trace(), plain)),
        ("ecofaas", lambda: run_cluster(EcoFaaSSystem(EcoFaaSConfig()),
                                        trace(), plain)),
        ("ecofaas_chaos", lambda: run_cluster(
            EcoFaaSSystem(EcoFaaSConfig()), trace(), chaos,
            fault_plan=chaos_plan())),
    ]


def current_fingerprints() -> dict:
    return {label: cluster_fingerprint(factory())
            for label, factory in reference_runs()}


def load_reference() -> dict:
    with open(DATA_PATH) as fh:
        return json.load(fh)


if __name__ == "__main__":
    import sys
    prints = current_fingerprints()
    if "--write" in sys.argv:
        os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
        with open(DATA_PATH, "w") as fh:
            json.dump(prints, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {DATA_PATH}")
    for label, value in sorted(prints.items()):
        print(f"{label}: {value}")
