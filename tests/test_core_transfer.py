"""Tests for transfer learning across server types (Section VI-E3)."""

import numpy as np
import pytest

from repro.core.transfer import TransferModel, transfer_profiles
from repro.hardware.frequency import FrequencyScale
from repro.workloads.functionbench import STANDALONE_FUNCTIONS


def machine_profiles(speed_factor, noise_sigma=0.01, seed=0):
    """Per-function {freq -> exec time} on a machine scaled by a factor.

    Models a related microarchitecture (Broadwell/Skylake vs Haswell):
    same workloads, proportionally different cycle times.
    """
    rng = np.random.default_rng(seed)
    profiles = {}
    for fn in STANDALONE_FUNCTIONS:
        profiles[fn.name] = {
            level: fn.run_seconds(level) * speed_factor
            * float(np.exp(rng.normal(0, noise_sigma)))
            for level in FrequencyScale()
        }
    return profiles


class TestTransferModel:
    def test_fit_recovers_linear_map(self):
        source = [1.0, 2.0, 3.0, 4.0]
        target = [2.1, 4.1, 6.1, 8.1]  # 2x + 0.1
        model = TransferModel.fit(source, target)
        assert model.slope == pytest.approx(2.0, abs=1e-6)
        assert model.intercept == pytest.approx(0.1, abs=1e-6)
        assert model.r2 == pytest.approx(1.0, abs=1e-9)
        assert model.n_train == 4

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            TransferModel.fit([1.0], [2.0])
        with pytest.raises(ValueError):
            TransferModel.fit([1.0, 2.0], [1.0])

    def test_predict(self):
        model = TransferModel(slope=2.0, intercept=1.0)
        assert model.predict(3.0) == 7.0
        assert list(model.predict_many([0.0, 1.0])) == [1.0, 3.0]

    def test_accuracy_metric(self):
        model = TransferModel(slope=1.0, intercept=0.0)
        assert model.accuracy([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)
        assert model.accuracy([1.0], [2.0]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            model.accuracy([1.0], [0.0])


class TestTransferProfiles:
    def test_quarter_of_samples_reaches_paper_accuracy(self):
        """Section VI-E3: with 1/4 of the target-machine samples the
        transferred profiles reach ~93% accuracy."""
        haswell = machine_profiles(1.0)
        skylake_full = machine_profiles(0.8, seed=1)
        subset_functions = [f.name for f in STANDALONE_FUNCTIONS[:2]]
        subset = {fn: skylake_full[fn] for fn in subset_functions}
        model, predicted = transfer_profiles(haswell, subset)
        held_out = [f.name for f in STANDALONE_FUNCTIONS[2:]]
        source_vals, target_vals = [], []
        for fn in held_out:
            for level, value in skylake_full[fn].items():
                source_vals.append(haswell[fn][level])
                target_vals.append(value)
        accuracy = model.accuracy(source_vals, target_vals)
        assert accuracy > 0.90

    def test_predicted_covers_all_source_functions(self):
        haswell = machine_profiles(1.0)
        subset = {"WebServ": machine_profiles(0.9, seed=2)["WebServ"]}
        subset["ImgProc"] = machine_profiles(0.9, seed=2)["ImgProc"]
        _, predicted = transfer_profiles(haswell, subset)
        assert set(predicted) == set(haswell)
        for fn, freqs in predicted.items():
            assert set(freqs) == set(haswell[fn])

    def test_unknown_function_on_target_rejected(self):
        haswell = machine_profiles(1.0)
        with pytest.raises(KeyError):
            transfer_profiles(haswell, {"ghost": {3.0: 0.1, 1.2: 0.2}})

    def test_unknown_frequency_rejected(self):
        haswell = machine_profiles(1.0)
        with pytest.raises(KeyError):
            transfer_profiles(haswell, {"WebServ": {9.9: 0.1, 1.2: 0.2}})
