"""Decision audit log: coverage, determinism, and zero perturbation.

Every control-plane decision point must leave a structured "why" record
when a log is installed, two same-seed runs must serialize to
byte-identical JSONL, and an audited run must be bit-identical to an
unaudited one.
"""

import pytest

from repro import obs
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import overload as overload_experiment
from repro.experiments import partition as partition_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.obs.audit import AuditLog, load_jsonl
from repro.platform.cluster import ClusterConfig


def run_audited(seed=6, duration_s=8.0):
    """One guarded overload run with an audit log installed."""
    audit = obs.install_audit(AuditLog())
    try:
        trace = make_load_trace("high", 2, duration_s, seed=seed,
                                cores_per_server=20)
        config = ClusterConfig(
            n_servers=2, seed=seed,
            guard=overload_experiment.guard_config(2, 20))
        cluster = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                              config)
    finally:
        obs.uninstall_audit()
    return cluster, audit


def test_control_plane_decisions_are_recorded():
    _, audit = run_audited()
    kinds = {record.kind for record in audit.records}
    assert "milp_split" in kinds
    assert "pool_retune" in kinds
    assert "admission_shed" in kinds
    assert "brownout_change" in kinds
    for record in audit.records:
        assert record.actor
        assert record.reason
        assert record.action or record.alternatives


def test_ha_decisions_are_recorded():
    audit = obs.install_audit(AuditLog())
    try:
        partition_experiment.run_one(seed=0, with_faults=True,
                                     duration_s=25.0, n_servers=3)
    finally:
        obs.uninstall_audit()
    kinds = {record.kind for record in audit.records}
    assert "ha_failover" in kinds
    assert "ha_redispatch" in kinds
    redispatches = audit.of_kind("ha_redispatch")
    assert all(r.workflow_uid is not None for r in redispatches)
    # for_workflow() finds the redispatch by its workflow uid.
    uid = redispatches[0].workflow_uid
    assert audit.for_workflow(uid)


def test_same_seed_audit_logs_are_byte_identical(tmp_path):
    paths = []
    for i in range(2):
        _, audit = run_audited()
        path = tmp_path / f"audit{i}.jsonl"
        audit.write(str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    loaded = load_jsonl(str(paths[0]))
    assert loaded
    assert [r["seq"] for r in loaded] == \
        sorted(r["seq"] for r in loaded)
    assert all(r["kind"] for r in loaded)


def test_audited_run_is_bit_identical_to_unaudited():
    def fingerprint(cluster):
        m = cluster.metrics
        return (m.function_records, m.workflow_records, m.shed_workflows,
                [s.meter.total_j for s in cluster.servers])

    audited, _ = run_audited()
    trace = make_load_trace("high", 2, 8.0, seed=6, cores_per_server=20)
    config = ClusterConfig(n_servers=2, seed=6,
                           guard=overload_experiment.guard_config(2, 20))
    bare = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)
    assert fingerprint(audited) == fingerprint(bare)


def test_record_requires_binding():
    log = AuditLog()
    with pytest.raises(RuntimeError):
        _ = log.now


def test_breaker_trip_is_recorded():
    """Drive a breaker open via the guard runtime with a stub env."""
    from repro.guard.config import BreakerConfig, GuardConfig
    from repro.guard.runtime import GuardRuntime

    class StubTrace:
        enabled = False

        def instant(self, *args, **kwargs):
            pass

    class StubEnv:
        now = 1.0
        trace = StubTrace()
        audit = None
        ha = None

    class StubCluster:
        env = StubEnv()
        metrics = type("M", (), {"breaker_opens": 0,
                                 "breaker_fast_fails": 0})()
        nodes = ()

    config = GuardConfig(breaker=BreakerConfig(min_failures=2,
                                               failure_rate=0.5,
                                               window_s=10.0))
    runtime = GuardRuntime(StubCluster(), config)
    audit = AuditLog()
    audit.begin_run("stub")
    audit.bind(StubEnv)
    StubEnv.audit = audit
    runtime.record_attempt_failure("f")
    runtime.record_attempt_failure("f")
    trips = audit.of_kind("breaker_trip")
    assert len(trips) == 1
    assert trips[0].inputs["function"] == "f"
    assert trips[0].action["state"] == "open"
