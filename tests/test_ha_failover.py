"""repro.ha wired through the cluster: failover, fencing, routing.

No workload traffic here — clusters are built with the HA layer armed,
state is manipulated directly through the link table and the controller
group, and time is advanced with ``env.run``. The headline acceptance
claims live in this file: a crashed leader is replaced within one lease
period by the deterministic lowest-id election, and a partitioned stale
leader's pool-resize decisions are fenced, never applied.

End-to-end runs under load (determinism, duplicate fencing) are in
``test_ha_integration.py``.
"""

import pytest

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.faults import (
    CONTROLLER_CRASH,
    NETWORK_PARTITION,
    FaultEvent,
    FaultPlan,
)
from repro.ha import ALIVE, FRONTEND, SUSPECTED, HAConfig
from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.sim import Environment

#: Short lease so failover fits in a few simulated seconds.
LEASE_S = 1.0
#: The election loop's lease-expiry check period.
ELECTION_PERIOD_S = 0.25


def build_ha_cluster(n_servers=3, fault_plan=None):
    env = Environment()
    config = ClusterConfig(
        n_servers=n_servers, drain_s=2.0,
        reliability=ReliabilityPolicy(max_retries=4, backoff_base_s=0.05),
        ha=HAConfig(lease_s=LEASE_S,
                    election_period_s=ELECTION_PERIOD_S))
    return Cluster(env, EcoFaaSSystem(EcoFaaSConfig()), config,
                   fault_plan=fault_plan)


class TestConfigCoupling:
    def test_ha_requires_the_retry_machinery(self):
        env = Environment()
        with pytest.raises(ValueError, match="reliability"):
            Cluster(env, EcoFaaSSystem(EcoFaaSConfig()),
                    ClusterConfig(n_servers=2, ha=HAConfig()))

    @pytest.mark.parametrize("event", [
        FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=1,
                   duration_s=2.0),
        FaultEvent(time_s=1.0, kind=CONTROLLER_CRASH, node=0,
                   duration_s=2.0),
    ])
    def test_partition_faults_require_ha(self, event):
        env = Environment()
        with pytest.raises(ValueError, match="ClusterConfig.ha"):
            Cluster(env, EcoFaaSSystem(EcoFaaSConfig()),
                    ClusterConfig(n_servers=2),
                    fault_plan=FaultPlan((event,)))


class TestControllerFailover:
    def test_crash_failover_within_one_lease(self):
        cluster = build_ha_cluster()
        env, ha = cluster.env, cluster.ha
        env.run(until=0.6)
        ha.controller_crash(0)
        env.run(until=4.0)
        group = ha.controllers
        # Lowest-id up/reachable standby takes over under epoch 2. The
        # lease was last renewed at t=0.5, so it lapses at 1.5 and the
        # election tick there fires: failover 0.9 s after the crash.
        assert group.leader_id == 1
        assert group.epoch == 2
        assert group.snapshot() == ((pytest.approx(1.5), 1, 2),)
        assert cluster.metrics.ha_failovers == 1
        failover_s = cluster.metrics.ha_failover_times_s[0]
        assert failover_s == pytest.approx(0.9)
        assert failover_s <= LEASE_S
        assert cluster.metrics.ha_lease_renewals >= 1

    def test_rejoined_replica_is_a_standby_not_a_usurper(self):
        cluster = build_ha_cluster()
        env, ha = cluster.env, cluster.ha
        env.run(until=0.6)
        ha.controller_crash(0)
        env.run(until=4.0)
        ha.controller_rejoin(0)
        env.run(until=6.0)
        group = ha.controllers
        assert group.leader_id == 1 and group.epoch == 2
        ctl0 = group.replicas[0]
        assert not ctl0.down
        assert not ctl0.believes_leader
        # Epoch gossip caught the rejoined replica up.
        assert ctl0.believed_epoch == group.epoch


class TestEpochFencing:
    def partitioned_stale_leader(self):
        """A cluster where ctl0 is partitioned from the frontend, still
        believes it leads under epoch 1, and ctl1 holds epoch 2."""
        cluster = build_ha_cluster()
        env, ha = cluster.env, cluster.ha
        env.run(until=0.3)
        ha.links.cut("ctl0", FRONTEND)
        ha.links.cut(FRONTEND, "ctl0")
        env.run(until=2.0)
        group = ha.controllers
        assert group.leader_id == 1 and group.epoch == 2
        ctl0 = group.replicas[0]
        assert ctl0.believes_leader and ctl0.believed_epoch == 1
        return cluster

    def test_stale_claim_is_fenced_while_new_leader_reachable(self):
        cluster = self.partitioned_stale_leader()
        ha, node = cluster.ha, cluster.nodes[0]
        fenced_before = cluster.metrics.ha_fenced_decisions
        # The consumer hears both claimants: the epoch-1 claim is fenced,
        # the epoch-2 decision goes through.
        assert ha.authorize_resize(node)
        assert cluster.metrics.ha_fenced_decisions > fenced_before

    def test_stale_leader_alone_never_mutates_pool_state(self):
        cluster = self.partitioned_stale_leader()
        ha, node = cluster.ha, cluster.nodes[0]
        assert ha.authorize_resize(node)  # pins seen-epoch 2 at the node
        # Now sever the real leader (and the other standby) from this
        # node, leaving only the stale leader's claim audible.
        for endpoint in ("ctl1", "ctl2"):
            ha.links.cut(endpoint, node.track)
            ha.links.cut(node.track, endpoint)
        fenced_before = cluster.metrics.ha_fenced_decisions
        assert not ha.authorize_resize(node)
        assert cluster.metrics.ha_fenced_decisions > fenced_before

    def test_consumer_freezes_with_no_believed_leader(self):
        cluster = build_ha_cluster()
        ha, node = cluster.ha, cluster.nodes[0]
        # Only ctl0 believes it leads; cut it off from the node and no
        # authority is audible at all: freeze, don't act.
        ha.links.cut("ctl0", node.track)
        ha.links.cut(node.track, "ctl0")
        assert not ha.authorize_resize(node)
        assert cluster.metrics.ha_frozen_decisions == 1

    def test_split_authorization_uses_the_frontend_endpoint(self):
        cluster = self.partitioned_stale_leader()
        ha = cluster.ha
        # The frontend can hear the epoch-2 leader: splits may recompute.
        assert ha.authorize_split("VideoApp")
        # Cut it off and the frontend freezes the split too.
        ha.links.cut("ctl1", FRONTEND)
        ha.links.cut(FRONTEND, "ctl1")
        assert not ha.authorize_split("VideoApp")


class TestSuspectedNodeRouting:
    def test_dispatch_skips_suspected_nodes_until_revival(self):
        cluster = build_ha_cluster()
        env, ha = cluster.env, cluster.ha
        suspect = cluster.nodes[1]
        # Sever only the uplink: heartbeats vanish, dispatches deliver.
        ha.links.cut(suspect.track, FRONTEND)
        env.run(until=1.5)
        assert ha.membership.state(suspect.track) == SUSPECTED
        assert cluster.metrics.ha_suspicions == 1
        # The node process is alive — a cut link is a false suspicion.
        assert cluster.metrics.ha_false_suspicions == 1
        assert cluster.metrics.ha_heartbeats_lost > 0
        assert not ha.dispatchable(suspect)
        for _ in range(10):
            assert cluster.pick_node() is not suspect
        # Heal the uplink: heartbeats resume, the node is alive again
        # and dispatchable without any manual reset.
        ha.links.heal(suspect.track, FRONTEND)
        env.run(until=3.0)
        assert ha.membership.state(suspect.track) == ALIVE
        assert ha.dispatchable(suspect)

    def test_pick_node_falls_back_when_all_nodes_suspected(self):
        """Suspicion only *prefers* clean nodes; with every node suspect
        the frontend still routes rather than stalling the cluster."""
        cluster = build_ha_cluster()
        env, ha = cluster.env, cluster.ha
        for node in cluster.nodes:
            ha.links.cut(node.track, FRONTEND)
        env.run(until=1.5)
        assert all(ha.membership.state(n.track) == SUSPECTED
                   for n in cluster.nodes)
        assert cluster.pick_node() is not None


class TestInjectorDrivesHAFaults:
    def test_partition_and_controller_crash_events(self):
        plan = FaultPlan((
            FaultEvent(time_s=0.3, kind=NETWORK_PARTITION, node=1,
                       duration_s=0.6),
            FaultEvent(time_s=0.3, kind=CONTROLLER_CRASH, node=0,
                       duration_s=1.5),
        ))
        cluster = build_ha_cluster(fault_plan=plan)
        env, ha = cluster.env, cluster.ha
        env.run(until=4.0)
        assert cluster.metrics.failure_count(NETWORK_PARTITION) == 1
        assert cluster.metrics.failure_count(CONTROLLER_CRASH) == 1
        # The partition healed: both directions deliver again.
        assert ha.links.reachable("node1", FRONTEND)
        assert ha.links.cut_pairs() == []
        # The crashed leader failed over and rejoined as a standby.
        group = ha.controllers
        assert group.epoch == 2 and group.leader_id == 1
        assert not group.replicas[0].down
        assert cluster.metrics.ha_failovers == 1
