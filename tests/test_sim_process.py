"""Unit tests for generator processes: yields, returns, failures, interrupts."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_runs_and_advances_time():
    env = Environment()
    trace = []

    def proc():
        trace.append(env.now)
        yield env.timeout(1.0)
        trace.append(env.now)
        yield env.timeout(2.0)
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [0.0, 1.0, 3.0]


def test_process_return_value_becomes_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "done"

    p = env.process(proc())
    env.run()
    assert p.ok and p.value == "done"


def test_yield_value_of_timeout_is_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_process_waiting_on_manual_event():
    env = Environment()
    gate = env.event()
    got = []

    def waiter():
        value = yield gate
        got.append((env.now, value))

    def opener():
        yield env.timeout(5.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert got == [(5.0, "open")]


def test_failed_event_raises_inside_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("rpc error"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["rpc error"]


def test_uncaught_process_exception_surfaces():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("process bug")

    env.process(bad())
    with pytest.raises(RuntimeError, match="process bug"):
        env.run()


def test_process_exception_observed_by_waiter_does_not_surface():
    env = Environment()
    seen = []

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("expected")

    def watcher(p):
        try:
            yield p
        except RuntimeError as error:
            seen.append(str(error))

    p = env.process(bad())
    env.process(watcher(p))
    env.run()
    assert seen == ["expected"]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()
    trace = []

    def quick():
        yield env.timeout(1.0)
        return 7

    def late(p):
        yield env.timeout(10.0)
        value = yield p
        trace.append((env.now, value))

    p = env.process(quick())
    env.process(late(p))
    env.run()
    assert trace == [(10.0, 7)]


def test_interrupt_raises_in_target_process():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(10.0)
            trace.append("finished")
        except Interrupt as interrupt:
            trace.append(("interrupted", env.now, interrupt.cause))

    def attacker(p):
        yield env.timeout(3.0)
        p.interrupt(cause="preempted")

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert trace == [("interrupted", 3.0, "preempted")]


def test_interrupted_process_can_reyield_original_target():
    env = Environment()
    trace = []

    def victim():
        target = env.timeout(10.0)
        try:
            yield target
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield target
        trace.append(("resumed", env.now))

    def attacker(p):
        yield env.timeout(3.0)
        p.interrupt()

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert trace == [("interrupted", 3.0), ("resumed", 10.0)]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_is_alive_transitions():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_yielding_non_event_fails():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_nested_processes():
    env = Environment()
    trace = []

    def child(tag, delay):
        yield env.timeout(delay)
        return tag

    def parent():
        first = yield env.process(child("a", 2.0))
        second = yield env.process(child("b", 3.0))
        trace.append((env.now, first, second))

    env.process(parent())
    env.run()
    assert trace == [(5.0, "a", "b")]


def test_all_of_waits_for_every_event():
    env = Environment()
    trace = []

    def proc():
        results = yield env.all_of(
            [env.timeout(1.0, "x"), env.timeout(3.0, "y")])
        trace.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert trace == [(3.0, ["x", "y"])]


def test_any_of_fires_on_first_event():
    env = Environment()
    trace = []

    def proc():
        results = yield env.any_of(
            [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
        trace.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert trace == [(1.0, ["fast"])]


def test_parallel_children_via_all_of():
    env = Environment()

    def child(delay):
        yield env.timeout(delay)
        return delay

    def parent():
        children = [env.process(child(d)) for d in (1.0, 4.0, 2.0)]
        yield env.all_of(children)
        return env.now

    p = env.process(parent())
    env.run()
    assert p.value == 4.0
