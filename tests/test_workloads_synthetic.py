"""Tests for the synthetic workload generator + an EcoFaaS stress run."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.synthetic import (
    synthesize_function,
    synthesize_population,
    synthesize_workflow,
)


class TestSynthesizeFunction:
    def test_reasonable_characteristics(self):
        rng = np.random.default_rng(0)
        for i in range(50):
            fn = synthesize_function(rng, index=i)
            assert 0.0005 < fn.run_seconds_at_max < 3.0
            assert 0.3 <= fn.compute_fraction <= 0.95
            assert 0.0 <= fn.idle_fraction < 0.95
            assert fn.cold_start_seconds > 0

    def test_population_spans_three_decades(self):
        rng = np.random.default_rng(1)
        runs = [f.run_seconds_at_max
                for f in synthesize_population(200, rng)]
        assert min(runs) < 0.005
        assert max(runs) > 0.5

    def test_unique_names(self):
        rng = np.random.default_rng(2)
        names = [f.name for f in synthesize_population(100, rng)]
        assert len(set(names)) == 100

    def test_input_sensitivity_optional(self):
        rng = np.random.default_rng(3)
        plain = synthesize_function(rng, input_sensitive=False)
        assert plain.input_model is None

    def test_input_model_produces_positive_multipliers(self):
        rng = np.random.default_rng(4)
        fn = synthesize_function(rng)
        if fn.input_model is not None:
            for _ in range(20):
                features = fn.input_model.sample_features(rng)
                assert fn.input_model.time_multiplier(features) > 0

    def test_population_validation(self):
        with pytest.raises(ValueError):
            synthesize_population(0, np.random.default_rng(0))

    @given(st.integers(min_value=0, max_value=1000))
    def test_deterministic_per_seed(self, seed):
        a = synthesize_function(np.random.default_rng(seed))
        b = synthesize_function(np.random.default_rng(seed))
        assert a.run_seconds_at_max == b.run_seconds_at_max
        assert a.name == b.name


class TestSynthesizeWorkflow:
    def test_structure_within_bounds(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            wf = synthesize_workflow(rng)
            assert 2 <= wf.n_functions <= 8
            assert all(1 <= len(s.functions) <= 2 for s in wf.stages)
            assert wf.slo_seconds() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_workflow(np.random.default_rng(0),
                                min_functions=5, max_functions=3)

    def test_sampling_works_for_every_member(self):
        rng = np.random.default_rng(6)
        wf = synthesize_workflow(rng)
        for fn in wf.functions:
            spec = fn.sample_invocation(rng)
            assert spec.total_run_seconds(3.0) > 0


class TestStressEcoFaaS:
    def test_ecofaas_handles_a_random_population(self):
        """EcoFaaS must digest workloads it was never calibrated for."""
        rng = np.random.default_rng(7)
        functions = synthesize_population(8, rng)
        from repro.workloads.applications import Workflow
        workflows = {f.name: Workflow.single(f) for f in functions}
        events = []
        t = 0.1
        arrival_rng = np.random.default_rng(8)
        while t < 15.0:
            name = functions[arrival_rng.integers(len(functions))].name
            events.append(TraceEvent(t, name))
            t += float(arrival_rng.exponential(0.1))
        env = Environment()
        cluster = Cluster(env, EcoFaaSSystem(),
                          ClusterConfig(n_servers=1, seed=0, drain_s=60.0))
        cluster.run_trace(Trace(events, 15.0), workflows=workflows)
        metrics = cluster.metrics
        assert metrics.completed_workflows() == len(events)
        # The controller still saves energy relative to always-max: some
        # run time lands below the top frequency.
        histogram = metrics.frequency_time_histogram()
        below_max = sum(v for f, v in histogram.items() if f < 3.0)
        assert below_max > 0
