"""repro.ha mechanism unit tests: links, the phi detector, membership,
the re-dispatch journal, the controller group, and config/plan
validation.

Everything here exercises the pure state classes directly — no
simulation. The cluster-level wiring is covered by
``test_ha_failover.py`` and the determinism contract by
``test_ha_integration.py``.
"""

import math

import pytest

from repro.faults.plan import (
    CONTROLLER_CRASH,
    NETWORK_PARTITION,
    FaultEvent,
    FaultPlan,
)
from repro.ha import (
    ALIVE,
    DEAD,
    SUSPECTED,
    ControllerGroup,
    HAConfig,
    LinkTable,
    MembershipTable,
    PhiAccrualDetector,
    RedispatchJournal,
)


class TestLinkTable:
    def test_everything_delivers_by_default(self):
        links = LinkTable()
        assert links.delivers("node0", "frontend")
        assert links.reachable("ctl0", "frontend")
        assert links.cut_pairs() == []

    def test_cuts_are_directed(self):
        links = LinkTable()
        links.cut("node1", "frontend")
        assert not links.delivers("node1", "frontend")
        assert links.delivers("frontend", "node1")
        # A one-way cut already breaks the round trip.
        assert not links.reachable("node1", "frontend")

    def test_overlapping_cuts_compose_by_refcount(self):
        links = LinkTable()
        links.cut("a", "b")
        links.cut("a", "b")
        links.heal("a", "b")
        assert not links.delivers("a", "b")
        links.heal("a", "b")
        assert links.delivers("a", "b")

    def test_heal_of_uncut_link_raises(self):
        with pytest.raises(ValueError):
            LinkTable().heal("a", "b")

    def test_heal_callback_fires_only_at_full_heal(self):
        links = LinkTable()
        healed = []
        links.on_heal(lambda src, dst: healed.append((src, dst)))
        links.cut("a", "b")
        links.cut("a", "b")
        links.heal("a", "b")
        assert healed == []
        links.heal("a", "b")
        assert healed == [("a", "b")]

    def test_cut_pairs_sorted(self):
        links = LinkTable()
        links.cut("node2", "frontend")
        links.cut("ctl0", "frontend")
        assert links.cut_pairs() == [("ctl0", "frontend"),
                                     ("node2", "frontend")]


class TestPhiAccrualDetector:
    def make(self, expected=0.25, window=8, min_std=0.02):
        return PhiAccrualDetector(expected_interval_s=expected,
                                  window=window, min_std_s=min_std)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhiAccrualDetector(expected_interval_s=0.0)

    def test_unknown_member_is_unsuspicious(self):
        assert self.make().phi("ghost", 10.0) == 0.0

    def test_zero_phi_within_expected_interval(self):
        detector = self.make()
        detector.register("node0", 0.0)
        assert detector.phi("node0", 0.2) == 0.0

    def test_phi_grows_with_silence_and_is_capped(self):
        detector = self.make()
        detector.register("node0", 0.0)
        samples = [detector.phi("node0", t) for t in (0.3, 0.5, 1.0, 5.0)]
        assert samples == sorted(samples)
        assert samples[-1] == 300.0  # the cap, not inf

    def test_heartbeat_resets_suspicion(self):
        detector = self.make()
        detector.register("node0", 0.0)
        assert detector.phi("node0", 2.0) > 8.0
        detector.heartbeat("node0", 2.0)
        assert detector.phi("node0", 2.1) == 0.0
        assert detector.last_arrival("node0") == 2.0

    def test_regular_heartbeats_keep_std_floored(self):
        """Metronome heartbeats must not make the detector hair-triggered:
        the floored std means one expected interval of silence is still
        phi 0, while a few intervals cross any practical threshold."""
        detector = self.make(expected=0.25, min_std=0.02)
        detector.register("node0", 0.0)
        for i in range(1, 11):
            detector.heartbeat("node0", i * 0.25)
        assert detector.phi("node0", 2.5 + 0.25) == 0.0
        assert detector.phi("node0", 2.5 + 1.0) > 8.0


class TestMembershipTable:
    def make(self):
        detector = PhiAccrualDetector(expected_interval_s=0.25,
                                      min_std_s=0.02)
        table = MembershipTable(detector, phi_threshold=8.0,
                                dead_after_s=1.0)
        detector.register("node0", 0.0)
        return detector, table

    def test_alive_suspected_dead_revive_cycle(self):
        detector, table = self.make()
        assert table.state("node0") == ALIVE
        assert table.evaluate("node0", 0.2) is None
        assert table.evaluate("node0", 1.0) == SUSPECTED
        assert table.suspected_at("node0") == 1.0
        # Not yet dead_after_s past the suspicion.
        assert table.evaluate("node0", 1.5) is None
        assert table.evaluate("node0", 2.0) == DEAD
        detector.heartbeat("node0", 2.1)
        assert table.evaluate("node0", 2.2) == ALIVE
        assert table.suspected_at("node0") is None
        assert table.transitions == [(1.0, "node0", SUSPECTED),
                                     (2.0, "node0", DEAD),
                                     (2.2, "node0", ALIVE)]

    def test_snapshot_is_immutable_copy(self):
        _, table = self.make()
        table.evaluate("node0", 1.0)
        snap = table.snapshot()
        assert snap == ((1.0, "node0", SUSPECTED),)
        assert isinstance(snap, tuple)


class TestRedispatchJournal:
    KEY = (7, 1, 0)

    def test_register_is_idempotent(self):
        journal = RedispatchJournal()
        journal.register(self.KEY, 1.0)
        journal.register(self.KEY, 2.0)
        assert journal.entry(self.KEY).registered_s == 1.0

    def test_exactly_one_redispatch_per_key(self):
        journal = RedispatchJournal()
        assert not journal.may_redispatch(self.KEY)  # never registered
        journal.register(self.KEY, 1.0)
        assert journal.may_redispatch(self.KEY)
        journal.record_redispatch(self.KEY, 2.0)
        assert not journal.may_redispatch(self.KEY)
        assert journal.was_redispatched(self.KEY)
        with pytest.raises(ValueError):
            journal.record_redispatch(self.KEY, 3.0)

    def test_completion_blocks_redispatch(self):
        journal = RedispatchJournal()
        journal.register(self.KEY, 1.0)
        assert journal.record_completion(self.KEY, 2.0)
        assert not journal.may_redispatch(self.KEY)

    def test_duplicate_completion_is_flagged(self):
        journal = RedispatchJournal()
        journal.register(self.KEY, 1.0)
        assert journal.record_completion(self.KEY, 2.0)
        assert not journal.record_completion(self.KEY, 3.0)
        assert journal.duplicate_completions == 1
        entry = journal.entry(self.KEY)
        assert entry.completions == 2
        assert entry.completed_s == 2.0  # the first completion wins

    def test_snapshot_sorted_by_key(self):
        journal = RedispatchJournal()
        journal.register((2, 0, 0), 1.0)
        journal.register((1, 0, 0), 2.0)
        journal.record_redispatch((1, 0, 0), 3.0)
        assert journal.redispatch_count() == 1
        assert journal.snapshot() == (
            ((1, 0, 0), 2.0, 3.0, None, 0),
            ((2, 0, 0), 1.0, None, None, 0),
        )


class TestControllerGroup:
    def test_initial_state(self):
        group = ControllerGroup(n=3, lease_s=2.0)
        assert [r.endpoint for r in group.replicas] == ["ctl0", "ctl1",
                                                        "ctl2"]
        assert group.leader().rid == 0
        assert group.epoch == 1
        assert group.leader().believes_leader
        assert group.lease_expires_s == 2.0

    def test_lease_renewal_and_expiry(self):
        group = ControllerGroup(n=3, lease_s=2.0)
        assert not group.lease_expired(1.9)
        assert group.lease_expired(2.0)
        group.renew(3.0)
        assert not group.lease_expired(4.9)

    def test_election_bumps_epoch_and_logs(self):
        group = ControllerGroup(n=3, lease_s=2.0)
        epoch = group.elect(group.replicas[2], now=5.0)
        assert epoch == 2
        assert group.leader().rid == 2
        assert group.replicas[2].believed_epoch == 2
        assert group.lease_expires_s == 7.0
        assert group.snapshot() == ((5.0, 2, 2),)

    def test_crash_clears_belief(self):
        """A crashed process holds no beliefs — only partitioned replicas
        can act as stale leaders."""
        group = ControllerGroup(n=3, lease_s=2.0)
        group.crash(0, now=1.0)
        replica = group.replicas[0]
        assert replica.down and replica.down_at == 1.0
        assert not replica.believes_leader
        group.rejoin(0)
        assert not group.replicas[0].down
        assert not group.replicas[0].believes_leader


class TestHAConfigValidation:
    def test_defaults_are_valid(self):
        HAConfig()

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_period_s": 0.0},
        {"heartbeat_period_s": float("nan")},
        {"heartbeat_latency_s": -0.001},
        {"phi_threshold": 0.0},
        {"detector_window": 1},
        {"min_interval_std_s": 0.0},
        {"dead_after_s": 0.0},
        {"n_controllers": 0},
        {"lease_s": 0.0},
        {"lease_s": float("inf")},
        {"election_period_s": 0.0},
        # The lease must outlive the standbys' expiry-check period.
        {"lease_s": 0.25, "election_period_s": 0.25},
    ])
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            HAConfig(**kwargs)


class TestPartitionFaultValidation:
    def test_partition_needs_a_heal_time(self):
        with pytest.raises(ValueError, match="positive heal time"):
            FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=1)

    def test_partition_direction_is_checked(self):
        with pytest.raises(ValueError, match="direction"):
            FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=1,
                       duration_s=2.0, direction="sideways")

    def test_partition_needs_distinct_endpoints(self):
        with pytest.raises(ValueError, match="distinct"):
            FaultEvent(time_s=1.0, kind=NETWORK_PARTITION,
                       duration_s=2.0, endpoint="ctl0", peer="ctl0")
        with pytest.raises(ValueError, match="peer"):
            FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=1,
                       duration_s=2.0, peer="")

    def test_endpoint_a_defaults_to_node_track(self):
        event = FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=2,
                           duration_s=2.0)
        assert event.endpoint_a() == "node2"
        override = FaultEvent(time_s=1.0, kind=NETWORK_PARTITION,
                              duration_s=2.0, endpoint="ctl1")
        assert override.endpoint_a() == "ctl1"

    def test_controller_crash_may_be_permanent(self):
        # duration 0 = the replica stays down for the rest of the run.
        FaultEvent(time_s=1.0, kind=CONTROLLER_CRASH, node=0)

    def test_plan_kind_properties(self):
        plan = FaultPlan((
            FaultEvent(time_s=1.0, kind=NETWORK_PARTITION, node=1,
                       duration_s=2.0),
            FaultEvent(time_s=2.0, kind=CONTROLLER_CRASH, node=0),
        ))
        assert plan.has_partitions
        assert plan.has_controller_crashes
        assert not plan.has_node_crashes
        assert not FaultPlan.none().has_partitions


class TestCalibratedPlanValidation:
    @pytest.mark.parametrize("bad_rate", [float("nan"), float("inf"), -1.0])
    def test_non_finite_or_negative_rates_raise(self, bad_rate):
        with pytest.raises(ValueError, match="finite non-negative"):
            FaultPlan.calibrated(60.0, 2, ["WebServ"],
                                 spikes_per_hour=bad_rate)

    def test_zero_rates_are_legal(self):
        plan = FaultPlan.calibrated(60.0, 2, ["WebServ"],
                                    crashes_per_node_hour=0.0,
                                    kills_per_node_hour=0.0,
                                    spikes_per_hour=0.0,
                                    stalls_per_hour=0.0,
                                    min_crashes=1)
        assert plan.count() == 1  # the min_crashes floor

    def test_every_event_lands_inside_the_run(self):
        duration = 45.0
        plan = FaultPlan.calibrated(duration, 3, ["WebServ", "CNNServ"],
                                    seed=9)
        assert plan.count() > 0
        assert all(0.0 <= e.time_s <= duration for e in plan.events)
        assert not math.isnan(sum(e.time_s for e in plan.events))
