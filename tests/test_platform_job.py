"""Tests for the Job lifecycle object."""

import pytest

from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.sim import Environment
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


def make_job(env, with_block=True, setup=None, deadline=None):
    segments = [RunSegment(WorkUnit(gcycles=3.0))]
    if with_block:
        segments += [BlockSegment(0.5), RunSegment(WorkUnit(gcycles=1.5))]
    spec = InvocationSpec("fn", segments)
    return Job(env, spec, benchmark="bench", arrival_s=env.now,
               deadline_s=deadline, setup_work=setup)


class TestJobLifecycle:
    def test_initial_state(self):
        env = Environment()
        job = make_job(env)
        assert not job.finished
        assert not job.cold_start
        assert job.function_name == "fn"
        assert job.t_queue == job.t_run == job.t_block == 0.0

    def test_current_work_returns_same_unit_until_advance(self):
        env = Environment()
        job = make_job(env)
        assert job.current_work() is job.current_work()

    def test_advance_requires_finished_work(self):
        env = Environment()
        job = make_job(env)
        job.current_work()
        with pytest.raises(RuntimeError):
            job.advance()

    def test_full_walk_through_segments(self):
        env = Environment()
        job = make_job(env)
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        block = job.advance()
        assert block is not None and block.seconds == 0.5
        job.skip_block()
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        assert job.advance() is None
        assert job.is_complete
        job.complete()
        assert job.finished
        assert job.done.triggered

    def test_setup_work_comes_first_and_fires_hook(self):
        env = Environment()
        fired = []
        job = make_job(env, with_block=False, setup=WorkUnit(gcycles=6.0))
        job.on_setup_done = lambda: fired.append(env.now)
        assert job.cold_start
        setup = job.current_work()
        assert setup.duration(3.0) == pytest.approx(2.0)
        setup.consume(3.0, setup.duration(3.0))
        assert job.advance() is None       # setup -> first run segment
        assert fired == [0.0]
        assert not job.is_complete
        run = job.current_work()
        assert run.duration(3.0) == pytest.approx(1.0)

    def test_complete_before_segments_done_raises(self):
        env = Environment()
        job = make_job(env)
        with pytest.raises(RuntimeError):
            job.complete()

    def test_double_complete_raises(self):
        env = Environment()
        job = make_job(env, with_block=False)
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        job.advance()
        job.complete()
        with pytest.raises(RuntimeError):
            job.complete()

    def test_skip_block_only_at_block_segment(self):
        env = Environment()
        job = make_job(env)
        with pytest.raises(RuntimeError):
            job.skip_block()


class TestJobAccounting:
    def test_queue_time_accrues_between_enqueue_and_dispatch(self):
        env = Environment()
        job = make_job(env)
        job.note_enqueue()
        env.run(until=2.0)
        job.note_dispatch(3.0)
        assert job.t_queue == pytest.approx(2.0)

    def test_double_enqueue_does_not_reset_timer(self):
        env = Environment()
        job = make_job(env)
        job.note_enqueue()
        env.run(until=1.0)
        job.note_enqueue()
        env.run(until=3.0)
        job.note_dispatch(3.0)
        assert job.t_queue == pytest.approx(3.0)

    def test_record_run_accumulates_per_frequency(self):
        env = Environment()
        job = make_job(env)
        job.note_dispatch(3.0)
        job.record_run(0.5, 4.0)
        job.note_dispatch(1.2)
        job.record_run(0.25, 1.0)
        assert job.t_run == pytest.approx(0.75)
        assert job.energy_j == pytest.approx(5.0)
        assert job.freq_run_seconds == {3.0: 0.5, 1.2: 0.25}

    def test_note_block_accumulates(self):
        env = Environment()
        job = make_job(env)
        job.note_block(0.5)
        job.note_block(0.3)
        assert job.t_block == pytest.approx(0.8)

    def test_latency_and_deadline(self):
        env = Environment()
        job = make_job(env, with_block=False, deadline=3.0)
        env.run(until=2.0)
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        job.advance()
        job.complete()
        assert job.latency_s == pytest.approx(2.0)
        assert job.met_deadline

    def test_missed_deadline(self):
        env = Environment()
        job = make_job(env, with_block=False, deadline=1.0)
        env.run(until=2.0)
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        job.advance()
        job.complete()
        assert not job.met_deadline

    def test_no_deadline_is_always_met(self):
        env = Environment()
        job = make_job(env, with_block=False)
        work = job.current_work()
        work.consume(3.0, work.duration(3.0))
        job.advance()
        job.complete()
        assert job.met_deadline

    def test_latency_before_completion_raises(self):
        env = Environment()
        job = make_job(env)
        with pytest.raises(RuntimeError):
            _ = job.latency_s


class TestRemainingRunSeconds:
    def test_counts_all_run_segments(self):
        env = Environment()
        job = make_job(env)  # 1.0s + 0.5s at 3 GHz
        assert job.remaining_run_seconds(3.0) == pytest.approx(1.5)
        assert job.remaining_run_seconds(1.5) == pytest.approx(3.0)

    def test_includes_setup_work(self):
        env = Environment()
        job = make_job(env, with_block=False, setup=WorkUnit(gcycles=3.0))
        assert job.remaining_run_seconds(3.0) == pytest.approx(2.0)

    def test_decreases_with_progress(self):
        env = Environment()
        job = make_job(env)
        work = job.current_work()
        work.consume(3.0, 0.5)
        assert job.remaining_run_seconds(3.0) == pytest.approx(1.0)

    def test_seniority_orders_by_arrival_then_id(self):
        env = Environment()
        a = make_job(env)
        b = make_job(env)
        assert a.seniority < b.seniority
        env.run(until=1.0)
        c = make_job(env)
        assert b.seniority < c.seniority

    def test_negative_arrival_rejected(self):
        env = Environment()
        spec = InvocationSpec("f", [RunSegment(WorkUnit(1.0))])
        with pytest.raises(ValueError):
            Job(env, spec, "b", arrival_s=-1.0)
