"""Integration tests for the EcoFaaS system: dispatchers, elastic pools,
workflow controller, prewarming, and end-to-end behaviour."""

import pytest

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.registry import all_benchmarks, workflow_for


def run_system(system, trace, n_servers=2, seed=3, drain=30.0):
    env = Environment()
    cluster = Cluster(env, system,
                      ClusterConfig(n_servers=n_servers, seed=seed,
                                    drain_s=drain))
    cluster.run_trace(trace)
    return cluster


def poisson(names, rate, duration=15.0, seed=1):
    return generate_poisson_trace(
        PoissonLoadConfig(names, rate_rps=rate, duration_s=duration,
                          seed=seed))


class TestEcoFaaSConfig:
    def test_paper_defaults(self):
        config = EcoFaaSConfig()
        assert config.t_update_s == 5.0
        assert config.t_refresh_s == 2.0
        assert config.history_capacity == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            EcoFaaSConfig(t_refresh_s=0.0)
        with pytest.raises(ValueError):
            EcoFaaSConfig(history_capacity=0)
        with pytest.raises(ValueError):
            EcoFaaSConfig(max_pools=0)
        with pytest.raises(ValueError):
            EcoFaaSConfig(overprediction_error=-0.1)
        with pytest.raises(ValueError):
            EcoFaaSConfig(deadline_margin=0.0)


class TestEcoFaaSEndToEnd:
    def test_completes_all_workflows(self):
        trace = poisson(["WebServ", "CNNServ"], rate=20.0)
        cluster = run_system(EcoFaaSSystem(), trace)
        assert cluster.metrics.completed_workflows() == len(trace)
        assert cluster.inflight == 0

    def test_uses_multiple_frequencies(self):
        trace = poisson(["CNNServ", "MLTrain", "WebServ"], rate=15.0,
                        duration=30.0)
        cluster = run_system(EcoFaaSSystem(), trace, drain=40.0)
        histogram = cluster.metrics.frequency_histogram()
        assert len(histogram) >= 2
        assert min(histogram) < 3.0

    def test_saves_energy_vs_baseline(self):
        names = [wf.name for wf in all_benchmarks()]
        rate = rate_for_utilization(all_benchmarks(), 0.4, total_cores=40)
        trace = poisson(names, rate=rate, duration=30.0)
        base = run_system(BaselineSystem(), trace, drain=40.0)
        eco = run_system(EcoFaaSSystem(), trace, drain=40.0)
        assert eco.total_energy_j < base.total_energy_j

    def test_saves_energy_vs_powerctrl(self):
        names = [wf.name for wf in all_benchmarks()]
        rate = rate_for_utilization(all_benchmarks(), 0.4, total_cores=40)
        trace = poisson(names, rate=rate, duration=30.0)
        power = run_system(PowerCtrlSystem(), trace, drain=40.0)
        eco = run_system(EcoFaaSSystem(), trace, drain=40.0)
        assert eco.total_energy_j < power.total_energy_j

    def test_tail_latency_better_than_powerctrl(self):
        names = [wf.name for wf in all_benchmarks()]
        rate = rate_for_utilization(all_benchmarks(), 0.5, total_cores=40)
        trace = poisson(names, rate=rate, duration=30.0)
        power = run_system(PowerCtrlSystem(), trace, drain=40.0)
        eco = run_system(EcoFaaSSystem(), trace, drain=40.0)
        assert (eco.metrics.latency_p99()
                < power.metrics.latency_p99())

    def test_most_workflows_meet_slo(self):
        names = [wf.name for wf in all_benchmarks()]
        rate = rate_for_utilization(all_benchmarks(), 0.3, total_cores=40)
        trace = poisson(names, rate=rate, duration=30.0)
        eco = run_system(EcoFaaSSystem(), trace, drain=40.0)
        assert eco.metrics.slo_violation_rate() < 0.15

    def test_deterministic_given_seed(self):
        trace = poisson(["WebServ", "eBank"], rate=10.0)
        a = run_system(EcoFaaSSystem(), trace, seed=5)
        b = run_system(EcoFaaSSystem(), trace, seed=5)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)


class TestElasticPools:
    def test_pools_appear_beyond_initial_max_pool(self):
        trace = poisson(["CNNServ", "MLTrain"], rate=10.0, duration=20.0)
        cluster = run_system(EcoFaaSSystem(), trace, n_servers=1,
                             drain=40.0)
        node = cluster.nodes[0]
        counts = [count for _, count in node.pool_count_samples]
        assert max(counts) >= 2

    def test_pool_counts_bounded_by_max_pools(self):
        config = EcoFaaSConfig(max_pools=3)
        trace = poisson([wf.name for wf in all_benchmarks()], rate=20.0,
                        duration=20.0)
        cluster = run_system(EcoFaaSSystem(config), trace, n_servers=1,
                             drain=40.0)
        node = cluster.nodes[0]
        assert all(count <= 3 for _, count in node.pool_count_samples)

    def test_static_pools_ablation_keeps_single_pool(self):
        config = EcoFaaSConfig(elastic=False)
        trace = poisson(["CNNServ"], rate=10.0, duration=10.0)
        cluster = run_system(EcoFaaSSystem(config), trace, n_servers=1)
        node = cluster.nodes[0]
        assert node.pool_count() == 1
        assert node.active_pools()[0].frequency_ghz == 3.0

    def test_cores_conserved_across_refreshes(self):
        trace = poisson([wf.name for wf in all_benchmarks()], rate=25.0,
                        duration=20.0)
        cluster = run_system(EcoFaaSSystem(), trace, n_servers=1, drain=40.0)
        node = cluster.nodes[0]
        total = (sum(p.n_cores for p in node._pools)
                 + sum(p.n_cores for p in node._retiring)
                 + len(node._free))
        assert total == node.server.n_cores


class TestWorkflowController:
    def test_deadlines_cover_every_function(self):
        trace = poisson(["eBank"], rate=10.0, duration=20.0)
        system = EcoFaaSSystem()
        run_system(system, trace, drain=40.0)
        workflow = workflow_for("eBank")
        controller = system.controller(workflow)
        deadlines = controller.deadlines(arrival_s=1000.0, slo_s=2.0)
        assert set(deadlines) == {f.name for f in workflow.functions}
        values = [deadlines[f.name] for f in workflow.functions]
        assert values == sorted(values)
        assert values[-1] <= 1000.0 + 2.0 + 1e-6

    def test_milp_runs_once_profiles_ready(self):
        trace = poisson(["eBank"], rate=10.0, duration=20.0)
        system = EcoFaaSSystem()
        run_system(system, trace, drain=40.0)
        assert system.controller(workflow_for("eBank")).milp_runs >= 1

    def test_milp_ablation_uses_proportional_split(self):
        system = EcoFaaSSystem(EcoFaaSConfig(use_milp=False))
        trace = poisson(["eBank"], rate=10.0, duration=20.0)
        run_system(system, trace, drain=40.0)
        assert system.controller(workflow_for("eBank")).milp_runs == 0


class TestPrewarming:
    def test_prewarm_reduces_critical_path_cold_starts(self):
        trace = Trace([TraceEvent(0.5, "eBook"), TraceEvent(30.0, "VidAn")],
                      duration_s=40.0)

        def cold_count(prewarm):
            system = EcoFaaSSystem(EcoFaaSConfig(prewarm=prewarm))
            cluster = run_system(system, trace, n_servers=1, drain=30.0)
            return cluster.metrics.cold_start_count()

        assert cold_count(True) < cold_count(False)

    def test_prewarm_disabled_by_config(self):
        system = EcoFaaSSystem(EcoFaaSConfig(prewarm=False))
        trace = Trace([TraceEvent(0.5, "eBank")], duration_s=5.0)
        cluster = run_system(system, trace, n_servers=1)
        # Every function cold-starts on its critical path.
        assert cluster.metrics.cold_start_count() == 6

    def test_prewarm_jobs_not_in_metrics(self):
        system = EcoFaaSSystem(EcoFaaSConfig(prewarm=True))
        trace = Trace([TraceEvent(0.5, "eBank")], duration_s=5.0)
        cluster = run_system(system, trace, n_servers=1)
        # Only real invocations appear (6 functions in the chain).
        assert len(cluster.metrics.function_records) == 6


class TestOverpredictionKnob:
    def test_overprediction_raises_energy(self):
        names = ["CNNServ", "ImgProc", "RNNServ"]
        rate = 10.0
        trace = poisson(names, rate=rate, duration=30.0)
        exact = run_system(EcoFaaSSystem(EcoFaaSConfig()), trace, drain=40.0)
        wrong = run_system(
            EcoFaaSSystem(EcoFaaSConfig(overprediction_error=0.8)),
            trace, drain=40.0)
        assert wrong.total_energy_j > exact.total_energy_j
