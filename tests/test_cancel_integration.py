"""repro.cancel end to end: bit-identity off, determinism and kills on.

The contract under test, in order of importance:

1. **Opt-in means untouched** — a run with no ``CancelConfig`` (or an
   empty one) is bit-identical to the unarmed platform, including under
   chaos faults (the stored-seed-fingerprint anchor rides in
   ``tests/test_guard_determinism.py``; here we pin the empty-config
   equivalence directly).
2. Armed runs are deterministic — every cancel/budget decision is a
   pure function of simulation time and counters.
3. The mechanisms actually fire under fault pressure, the verifier
   stays clean, and the ledger (with the new ``cancelled``/``doomed``
   buckets) still conserves within 1e-6.
4. The ALL_DOWN poll regression: a full-cluster outage that outlives
   the invocation's deadline must bail out, not poll unbounded.
5. The ``retrystorm`` experiment reproduces metastability: the cancel-off
   arm stays degraded at least twice as long after the trigger clears.
"""

import pytest

from repro import obs, verify
from repro.cancel import CancelConfig, DeadlineConfig, RetryBudgetConfig
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs.ledger import EnergyLedger
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.verify.invariants import Verifier

from tests.fingerprints import cluster_fingerprint


def ecofaas():
    return EcoFaaSSystem(EcoFaaSConfig())


def chaos_scenario(seed, cancel):
    """A small chaotic run with hedging + timeouts, cancel configurable."""
    trace = make_load_trace("low", 2, 6.0, seed=seed)
    plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"],
                                seed=seed + 2)
    config = ClusterConfig(
        n_servers=2, seed=seed, drain_s=4.0,
        reliability=ReliabilityPolicy(
            max_retries=8, backoff_base_s=0.05,
            invocation_timeout_s=2.0, hedge_after_s=0.8),
        cancel=cancel)
    return trace, config, plan


def run_chaos(seed, cancel):
    trace, config, plan = chaos_scenario(seed, cancel)
    return run_cluster(ecofaas(), trace, config, fault_plan=plan)


class TestOptInUntouched:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_empty_config_is_bit_identical_under_chaos(self, seed):
        bare = run_chaos(seed, None)
        empty = run_chaos(seed, CancelConfig())  # both sections None
        assert cluster_fingerprint(empty) == cluster_fingerprint(bare)

    def test_empty_config_is_bit_identical_without_faults(self):
        trace = make_load_trace("low", 2, 6.0, seed=3)
        bare = run_cluster(ecofaas(), trace,
                           ClusterConfig(n_servers=2, seed=3, drain_s=4.0))
        armed = run_cluster(
            ecofaas(), trace,
            ClusterConfig(n_servers=2, seed=3, drain_s=4.0,
                          cancel=CancelConfig()))
        assert cluster_fingerprint(armed) == cluster_fingerprint(bare)


class TestArmedDeterminism:
    def test_armed_chaos_run_is_bit_deterministic(self):
        first = run_chaos(3, CancelConfig.full())
        second = run_chaos(3, CancelConfig.full())
        assert cluster_fingerprint(first) == cluster_fingerprint(second)
        # And cancel counters agree too (not part of the fingerprint).
        assert (first.metrics.cancelled_attempts,
                first.metrics.doomed_workflows,
                first.metrics.retry_budget_denials) == \
               (second.metrics.cancelled_attempts,
                second.metrics.doomed_workflows,
                second.metrics.retry_budget_denials)


class TestArmedMechanisms:
    def run_armed(self, seed=3):
        trace, config, plan = chaos_scenario(seed, CancelConfig.full())
        ledger = EnergyLedger()
        obs.install(obs.Tracer(ledger=ledger))
        verify.install(Verifier())
        try:
            cluster = run_cluster(ecofaas(), trace, config,
                                  fault_plan=plan)
            verifier = verify.active()
            violations = list(verifier.violations)
        finally:
            obs.uninstall()
            verify.uninstall()
        return cluster, ledger, violations

    def test_kills_budget_and_conservation(self):
        cluster, ledger, violations = self.run_armed()
        m = cluster.metrics
        assert violations == []
        # Every mechanism fired under this fault mix.
        assert m.cancelled_attempts > 0
        assert m.doomed_workflows > 0
        assert m.retry_budget_denials > 0
        assert m.doomed_workflows <= m.failed_workflows
        assert m.cancelled_energy_j >= 0.0
        assert m.cancelled_reclaimed_s > 0.0
        # The ledger conserves with the new buckets populated.
        report = ledger.reports[0]
        assert report.ok and report.rel_error <= EnergyLedger.TOLERANCE
        assert report.by_component["cancelled"] > 0.0
        assert report.by_component["doomed"] >= 0.0

    def test_workflow_lifecycle_equation_includes_doomed(self):
        cluster, _, violations = self.run_armed()
        assert violations == []
        m = cluster.metrics
        # Doomed workflows count under failed: submitted arrivals are
        # fully partitioned into completed + failed + shed + inflight
        # (the verifier's close_run sweep asserts the same equation).
        assert m.doomed_workflows > 0
        assert m.failed_workflows >= m.doomed_workflows

    def test_deadline_only_config_cancels_without_budget(self):
        trace, config, plan = chaos_scenario(
            3, CancelConfig(deadline=DeadlineConfig()))
        cluster = run_cluster(ecofaas(), trace, config, fault_plan=plan)
        m = cluster.metrics
        assert m.cancelled_attempts > 0
        assert m.retry_budget_denials == 0  # no budget armed

    def test_budget_only_config_denies_without_cancelling(self):
        trace, config, plan = chaos_scenario(
            3, CancelConfig(retry_budget=RetryBudgetConfig(
                ratio=0.01, window_s=2.0, floor=0)))
        cluster = run_cluster(ecofaas(), trace, config, fault_plan=plan)
        m = cluster.metrics
        assert m.retry_budget_denials > 0
        assert m.cancelled_attempts == 0  # no deadline section armed
        # Retries actually consumed grants; the budget capped them.
        assert m.retries <= cluster.cancel.budget.granted_total


class TestAllDownDeadlineBail:
    """Satellite 1: a full-cluster outage must not poll past the
    invocation's deadline."""

    def scenario(self, crash_down_s):
        trace = make_load_trace("low", 1, 2.0, seed=3)
        # The single node dies early and stays down long past every
        # deadline in the trace.
        plan = FaultPlan(
            (FaultEvent(time_s=1.0, kind="node_crash", node=0,
                        duration_s=crash_down_s),)
        ).validate(n_servers=1, functions=[])
        config = ClusterConfig(
            n_servers=1, seed=3, drain_s=2.0,
            reliability=ReliabilityPolicy(max_retries=2,
                                          backoff_base_s=0.05))
        return trace, config, plan

    def test_outage_past_deadline_bails_instead_of_polling(self):
        trace, config, plan = self.scenario(crash_down_s=500.0)
        tracer = obs.install(obs.Tracer())
        try:
            cluster = run_cluster(ecofaas(), trace, config,
                                  fault_plan=plan)
            bailed = [i for i in tracer.instants
                      if i.name == "invocation_lost"
                      and i.args.get("deadline_passed")]
        finally:
            obs.uninstall()
        # Pre-fix, the retry loop just kept polling for an up node while
        # every deadline expired: zero invocations were ever written off
        # and the stranded workflows sat in flight forever. Now each one
        # bails the moment its deadline is unmeetable.
        assert bailed, "no invocation bailed at its deadline"
        assert cluster.metrics.lost_invocations >= len(bailed)
        assert cluster.metrics.failed_workflows > 0


class TestRetrystormMetastability:
    """The headline acceptance: cancel off stays collapsed >= 2x longer
    than cancel on after the identical trigger clears."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import retrystorm
        return retrystorm.run(quick=True, seed=0)

    def test_off_arm_degraded_at_least_twice_as_long(self, result):
        from repro.experiments.retrystorm import degraded_ratio
        off = result.row_for(cancel="off")
        on = result.row_for(cancel="on")
        ratio = degraded_ratio(result)
        assert ratio is not None and ratio >= 2.0, (off, on)

    def test_wasted_energy_fraction_reported_and_reduced(self, result):
        off = result.row_for(cancel="off")
        on = result.row_for(cancel="on")
        assert off["wasted_pct"] > on["wasted_pct"]
        assert on["conserved"] is True and off["conserved"] is True

    def test_guarded_arm_recovers_goodput(self, result):
        off = result.row_for(cancel="off")
        on = result.row_for(cancel="on")
        assert on["goodput_after"] > off["goodput_after"]
        assert on["denials"] > 0 and on["cancelled"] > 0
