"""Unit tests for the kernel self-profiler (``repro.obs.prof``)."""

import pytest

from repro.obs import prof
from repro.obs.registry import PROFILE_COMPONENTS


class FakeClock:
    """A deterministic perf_counter stand-in, advanced by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clocked():
    clock = FakeClock()
    return prof.Profiler(clock=clock), clock


def test_exclusive_accounting_sums_to_window(clocked):
    p, clock = clocked
    p.start()
    clock.advance(1.0)            # harness
    p.enter("core.milp")
    clock.advance(2.0)            # core.milp
    p.enter("core.predictor")
    clock.advance(0.5)            # nested predictor
    p.exit("core.predictor")
    clock.advance(1.0)            # back in core.milp
    p.exit("core.milp")
    clock.advance(0.25)           # harness again
    total = p.stop()

    assert total == pytest.approx(4.75)
    assert p.profiled_s() == pytest.approx(total)
    assert p.self_s[("harness",)] == pytest.approx(1.25)
    assert p.self_s[("harness", "core.milp")] == pytest.approx(3.0)
    assert p.self_s[("harness", "core.milp",
                     "core.predictor")] == pytest.approx(0.5)


def test_by_component_aggregates_across_paths(clocked):
    p, clock = clocked
    p.start()
    for _ in range(2):
        p.enter("core.dpt")
        clock.advance(1.0)
        p.exit("core.dpt")
        p.enter("kernel.dispatch")
        p.enter("core.dpt")       # same component, different path
        clock.advance(2.0)
        p.exit("core.dpt")
        p.exit("kernel.dispatch")
    p.stop()
    rows = {row["component"]: row for row in p.by_component()}
    assert rows["core.dpt"]["self_s"] == pytest.approx(6.0)
    assert rows["core.dpt"]["calls"] == 4
    assert rows["core.dpt"]["share"] == pytest.approx(1.0, abs=1e-3)
    # Hotspots first.
    assert p.by_component()[0]["component"] == "core.dpt"


def test_tree_nests_children(clocked):
    p, clock = clocked
    p.start()
    p.enter("kernel.dispatch")
    p.enter("core.milp")
    clock.advance(1.0)
    p.exit("core.milp")
    p.exit("kernel.dispatch")
    p.stop()
    tree = p.tree()
    milp = tree["harness"]["children"]["kernel.dispatch"]["children"][
        "core.milp"]
    assert milp["self_s"] == pytest.approx(1.0)
    assert milp["calls"] == 1


def test_collapsed_stack_format(clocked):
    p, clock = clocked
    p.start()
    p.enter("hardware.energy")
    clock.advance(0.001)
    p.exit("hardware.energy")
    clock.advance(0.002)
    p.stop()
    lines = p.collapsed().strip().splitlines()
    assert "harness 2000" in lines
    assert "harness;hardware.energy 1000" in lines
    for line in lines:
        path, count = line.rsplit(" ", 1)
        assert int(count) > 0
        assert path


def test_kernel_counters(clocked):
    p, _ = clocked
    p.note_push(3)
    p.note_push(5)
    p.note_push(4)
    p.note_event("JobDone", 2)
    p.note_event("Timeout", 1)
    p.note_event("JobDone", 0)
    counters = p.counters()
    assert counters["heap_pushes"] == 3
    assert counters["heap_pops"] == 3
    assert counters["callbacks_dispatched"] == 3
    assert counters["heap_depth_max"] == 5
    assert counters["heap_depth_mean"] == pytest.approx(4.0)
    assert counters["events_by_type"] == {"JobDone": 2, "Timeout": 1}


def test_scope_mismatch_raises(clocked):
    p, _ = clocked
    p.start()
    p.enter("guard")
    with pytest.raises(RuntimeError, match="scope mismatch"):
        p.exit("ha")


def test_double_start_raises(clocked):
    p, _ = clocked
    p.start()
    with pytest.raises(RuntimeError, match="already running"):
        p.start()
    p.stop()
    with pytest.raises(RuntimeError, match="not running"):
        p.stop()


def test_hooks_are_noops_when_not_started(clocked):
    p, clock = clocked
    p.enter("guard")
    clock.advance(1.0)
    p.exit("guard")
    assert p.profiled_s() == 0.0
    assert not p.enabled


def test_decorator_dispatches_only_while_installed_and_running():
    calls = []

    @prof.profiled("tenancy")
    def work(x):
        calls.append(x)
        return x * 2

    # No profiler installed: plain call.
    assert work(1) == 2
    assert prof.active() is None

    p = prof.Profiler(clock=FakeClock())
    prof.install(p)
    try:
        assert prof.active() is p
        # Installed but not started: still a plain call.
        assert work(2) == 4
        assert ("harness", "tenancy") not in p.calls
        p.start()
        assert work(3) == 6
        p.stop()
        assert p.calls[("harness", "tenancy")] == 1
    finally:
        prof.uninstall()
    assert prof.active() is None
    assert calls == [1, 2, 3]


def test_null_profiler_is_inert():
    null = prof.NULL_PROFILER
    assert null.enabled is False
    null.enter("x")
    null.exit("y")            # no mismatch check on the null object
    null.note_push(1)
    null.note_event("E", 2)


def test_component_registry_covers_instrumented_names():
    names = {name for name, _ in PROFILE_COMPONENTS}
    assert prof.ROOT_COMPONENT in names
    for expected in ("kernel.dispatch", "hardware.energy", "core.milp",
                     "core.dpt", "core.predictor", "obs.trace",
                     "obs.ledger", "obs.audit", "guard", "ha", "tenancy"):
        assert expected in names
    for name, description in PROFILE_COMPONENTS:
        assert description


def test_environment_binds_profiler_and_counts_events():
    from repro.sim import Environment

    env = Environment()
    assert env.prof is prof.NULL_PROFILER
    p = prof.Profiler()
    p.bind(env)
    assert env.prof is p
    p.start()

    fired = []

    def proc():
        yield env.timeout(1.0)
        fired.append(env.now)
        yield env.timeout(2.0)
        fired.append(env.now)

    env.process(proc(), name="p")
    env.run()
    p.stop()
    assert fired == [1.0, 3.0]
    assert p.pushes > 0
    assert p.pops > 0
    assert p.callbacks_dispatched > 0
    assert p.heap_depth_max >= 1
    assert p.events_by_type
    # Dispatch time was attributed under the kernel component.
    assert any("kernel.dispatch" in path for path in p.calls)


def test_format_hotspots_and_scaling_render():
    entry = {
        "scale": 1,
        "wall_s": 1.234,
        "events_per_s": 10000.0,
        "wall_conservation": 0.998,
        "components": [
            {"component": "kernel.dispatch", "self_s": 0.9,
             "share": 0.73, "calls": 1000},
            {"component": "harness", "self_s": 0.334,
             "share": 0.27, "calls": 1},
        ],
        "counters": {"heap_pops": 1000, "callbacks_dispatched": 900,
                     "heap_depth_mean": 12.5, "heap_depth_max": 40},
    }
    text = prof.format_hotspots(entry)
    assert "kernel.dispatch" in text
    assert "99.8%" in text
    assert "1000 events dispatched" in text
    scaling = prof.format_scaling({"scales": [entry]})
    assert "scaling curve" in scaling
    assert "kernel.dispatch (73.0%)" in scaling
