"""CLI error-handling regressions: bad artifact paths must not traceback.

Every artifact-consuming subcommand (``report``, ``explain``, ``bill``,
``diff``) gets the same treatment for a missing and for a corrupt input
file: exit non-zero (2), print exactly one explanatory line on stderr,
and never raise. These run no simulation.
"""

import json

import pytest

from repro.cli import _bill, _diff, _explain, _report

SUBCOMMANDS = {
    "report": _report,
    "explain": _explain,
    "bill": _bill,
    "diff": _diff,
}


def _one_line(err: str) -> bool:
    return len(err.strip().splitlines()) == 1


@pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
def test_missing_file_is_one_line_error(name, tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    rc = SUBCOMMANDS[name]([missing])
    out, err = capsys.readouterr()
    assert rc == 2
    assert _one_line(err), f"expected one stderr line, got: {err!r}"
    assert "nope.json" in err
    assert "Traceback" not in err and "Traceback" not in out


@pytest.mark.parametrize("name", sorted(SUBCOMMANDS))
def test_corrupt_json_is_one_line_error(name, tmp_path, capsys):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{this is not json", encoding="utf-8")
    rc = SUBCOMMANDS[name]([str(corrupt)])
    out, err = capsys.readouterr()
    assert rc == 2
    assert _one_line(err), f"expected one stderr line, got: {err!r}"
    assert "Traceback" not in err and "Traceback" not in out


def test_bill_wrong_shape_json(tmp_path, capsys):
    ledger = tmp_path / "ledger.json"
    ledger.write_text(json.dumps({"not": "a ledger"}), encoding="utf-8")
    rc = _bill([str(ledger)])
    _, err = capsys.readouterr()
    assert rc == 2
    assert "not an energy-ledger JSON file" in err


def test_diff_wrong_shape_json(tmp_path, capsys):
    fp = tmp_path / "fp.json"
    fp.write_text(json.dumps({"format": "something-else", "runs": []}),
                  encoding="utf-8")
    rc = _diff([str(fp)])
    _, err = capsys.readouterr()
    assert rc == 2
    assert "not a fingerprints document" in err


def test_diff_missing_b_side(tmp_path, capsys):
    fp = tmp_path / "a.json"
    fp.write_text(json.dumps({"format": "x"}), encoding="utf-8")
    rc = _diff([str(fp), str(tmp_path / "b.json")])
    _, err = capsys.readouterr()
    assert rc == 2
    assert _one_line(err)
