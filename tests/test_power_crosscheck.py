"""Cross-check: integrated power snapshots equal metered energy.

The energy meter accrues incrementally on every state change; the server
also exposes an instantaneous power snapshot. Integrating the snapshot
over a run (sampled densely) must reproduce the meter's total — this ties
the two independent accounting paths together and would catch any missed
accrual segment.
"""

import pytest

from repro.hardware.server import Server
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


def integrate_power(env, server, horizon_s, dt=0.005):
    total = 0.0
    t = 0.0
    while t < horizon_s:
        env.run(until=t)
        total += server.power_snapshot_w() * dt
        t += dt
    env.run(until=horizon_s)
    return total


def test_idle_server_snapshot_matches_meter():
    env = Environment()
    server = Server(env, n_cores=4)
    snapshot = server.power_snapshot_w()
    env.run(until=10.0)
    server.finalize()
    assert server.total_energy_j == pytest.approx(snapshot * 10.0, rel=1e-9)


def test_loaded_server_integral_matches_meter():
    env = Environment()
    server = Server(env, n_cores=2)
    pool = CorePoolScheduler(env, server.cores, frequency_ghz=3.0,
                             context_switch_s=0.0)
    for i in range(6):
        segments = [RunSegment(WorkUnit(gcycles=0.9)),
                    BlockSegment(0.1),
                    RunSegment(WorkUnit(gcycles=0.3))]
        pool.submit(Job(env, InvocationSpec("f", segments), "b",
                        arrival_s=0.0))
    horizon = 3.0
    integral = integrate_power(env, server, horizon, dt=0.001)
    server.finalize()
    assert server.total_energy_j == pytest.approx(integral, rel=0.02)


def test_snapshot_reflects_frequency_changes():
    env = Environment()
    server = Server(env, n_cores=2)
    idle = server.power_snapshot_w()
    server.cores[0].start(WorkUnit(gcycles=30.0), "f", lambda c: None)
    busy_fast = server.power_snapshot_w()
    assert busy_fast > idle
    server.cores[1].set_frequency(1.2)
    # An idle core's frequency does not change its idle draw.
    assert server.power_snapshot_w() == pytest.approx(busy_fast)
    env.run(until=1.0)
    server.cores[0].preempt()
    server.cores[0].set_frequency(1.2)
    server.cores[0].start(WorkUnit(gcycles=30.0), "f", lambda c: None)
    busy_slow = server.power_snapshot_w()
    assert busy_slow < busy_fast
