"""Randomized stress of the core-pool scheduler.

Hypothesis drives random job mixes, elastic operations (add/remove cores,
retunes, drains) at random times, and checks the invariants that every
higher layer depends on: no lost jobs, conserved work, sane accounting.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment


job_strategy = st.fixed_dictionaries({
    "run_ms": st.floats(min_value=1.0, max_value=200.0),
    "block_ms": st.floats(min_value=0.0, max_value=100.0),
    "arrival_ms": st.floats(min_value=0.0, max_value=500.0),
    "freq": st.sampled_from([1.2, 1.8, 2.4, 3.0]),
})


def build_job(env, params):
    segments = [RunSegment(WorkUnit(gcycles=params["run_ms"] / 1000 * 3.0))]
    if params["block_ms"] > 0:
        segments.append(BlockSegment(params["block_ms"] / 1000))
        segments.append(RunSegment(WorkUnit(gcycles=0.003)))
    job = Job(env, InvocationSpec("fn", segments), "bench",
              arrival_s=env.now)
    job.chosen_freq_ghz = params["freq"]
    return job


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(jobs=st.lists(job_strategy, min_size=1, max_size=25),
       n_cores=st.integers(min_value=1, max_value=4),
       switch_on_idle=st.booleans(),
       preemptive=st.booleans(),
       per_job_freq=st.booleans())
def test_random_mixes_all_complete_with_sane_accounting(
        jobs, n_cores, switch_on_idle, preemptive, per_job_freq):
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    cores = [Core(env, i, power, meter, 3.0) for i in range(n_cores)]
    pool = CorePoolScheduler(
        env, cores, frequency_ghz=3.0,
        switch_on_idle=switch_on_idle, preemptive=preemptive,
        per_job_frequency=per_job_freq,
        switch_cost=lambda: 50e-6)
    built = []

    def driver():
        for params in sorted(jobs, key=lambda p: p["arrival_ms"]):
            delay = params["arrival_ms"] / 1000 - env.now
            if delay > 0:
                yield env.timeout(delay)
            job = build_job(env, params)
            built.append(job)
            pool.submit(job)

    env.process(driver(), name="driver")
    env.run()

    # 1. No job is ever lost.
    assert all(job.finished for job in built)
    assert pool.outstanding == 0
    assert pool.blocked_count == 0
    # 2. The EWT counter drains back to ~zero.
    assert pool.ewt_seconds == pytest.approx(0.0, abs=1e-6)
    # 3. Served counter matches.
    assert pool.stats.served == len(built)
    # 4. Per-job time decomposition is consistent.
    for job in built:
        assert job.t_run > 0
        parts = job.t_queue + job.t_run + job.t_block
        assert parts <= job.latency_s + 1e-9
        assert sum(job.freq_run_seconds.values()) == pytest.approx(
            job.t_run, rel=1e-9)
    # 5. Work conservation: measured run seconds equal the ground-truth
    # durations at the frequencies actually used.
    for job in built:
        for freq, seconds in job.freq_run_seconds.items():
            assert seconds >= 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(jobs=st.lists(job_strategy, min_size=3, max_size=15),
       operations=st.lists(
           st.tuples(st.floats(min_value=0.01, max_value=0.6),
                     st.sampled_from(["retune_low", "retune_high",
                                      "remove", "drain"])),
           min_size=1, max_size=5))
def test_elastic_operations_never_lose_jobs(jobs, operations):
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    cores = [Core(env, i, power, meter, 3.0) for i in range(3)]
    spare = Core(env, 99, power, meter, 3.0)
    pool = CorePoolScheduler(env, cores, frequency_ghz=3.0)
    other = CorePoolScheduler(env, [spare], frequency_ghz=3.0)
    built = []

    def driver():
        for params in sorted(jobs, key=lambda p: p["arrival_ms"]):
            delay = params["arrival_ms"] / 1000 - env.now
            if delay > 0:
                yield env.timeout(delay)
            job = build_job(env, params)
            job.chosen_freq_ghz = None
            built.append(job)
            pool.submit(job)

    def chaos():
        for at, op in sorted(operations):
            delay = at - env.now
            if delay > 0:
                yield env.timeout(delay)
            if op == "retune_low":
                pool.set_frequency(1.2, cost_s=50e-6)
            elif op == "retune_high":
                pool.set_frequency(3.0, cost_s=50e-6)
            elif op == "remove":
                core = pool.release_idle_core()
                if core is None:
                    pool.request_core_removal()
            elif op == "drain":
                for job in pool.drain_ready():
                    other.submit(job)

    env.process(driver(), name="driver")
    env.process(chaos(), name="chaos")
    env.run()
    # Jobs may finish in either pool, but all must finish.
    assert all(job.finished for job in built)
    assert pool.outstanding == 0 and other.outstanding == 0
