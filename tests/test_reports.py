"""Tests for the ASCII report helpers."""

import pytest

from repro.reports import (
    bar_chart,
    comparison_table,
    histogram,
    sparkline,
    timeline,
)


class TestBarChart:
    def test_renders_labels_and_values(self):
        out = bar_chart({"EcoFaaS": 10.0, "Baseline": 20.0})
        assert "EcoFaaS" in out and "Baseline" in out
        assert "20" in out

    def test_largest_value_fills_width(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_unit_suffix(self):
        out = bar_chart({"x": 5.0}, unit="kJ")
        assert "5kJ" in out

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_all_zero_values(self):
        out = bar_chart({"x": 0.0, "y": 0.0})
        assert "█" not in out


class TestHistogram:
    def test_bins_cover_range(self):
        out = histogram([1.0, 2.0, 3.0, 4.0, 5.0], bins=5)
        assert out.count("|") == 5

    def test_counts_sum(self):
        out = histogram([1.0] * 7 + [10.0] * 3, bins=2)
        assert " 7" in out and " 3" in out

    def test_constant_samples(self):
        out = histogram([2.0, 2.0, 2.0], bins=3)
        assert " 3" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        spark = sparkline(list(range(9)))
        assert spark == "".join(sorted(spark))

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_explicit_bounds(self):
        spark = sparkline([5.0], lo=0.0, hi=10.0)
        assert spark == "▄"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestTimeline:
    def test_includes_range_and_label(self):
        out = timeline([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)], label="freq")
        assert out.startswith("freq [0s..2s]")
        assert "min 1" in out and "max 3" in out

    def test_decimates_long_series(self):
        samples = [(float(i), float(i % 5)) for i in range(1000)]
        out = timeline(samples, width=50)
        spark = out.split("] ")[1].split(" (")[0]
        assert len(spark) == 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            timeline([])


class TestComparisonTable:
    def test_groups_by_row_key(self):
        rows = [
            {"benchmark": "WebServ", "norm_A": 1.0, "norm_B": 0.5},
            {"benchmark": "CNNServ", "norm_A": 1.0, "norm_B": 0.8},
        ]
        out = comparison_table(rows, "benchmark", ["norm_A", "norm_B"])
        assert "WebServ" in out and "CNNServ" in out
        assert out.count("norm_A") == 2

    def test_skips_non_numeric_cells(self):
        rows = [{"k": "x", "v": "saturated"}]
        out = comparison_table(rows, "k", ["v"])
        assert "saturated" not in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comparison_table([], "k", ["v"])
