"""Property-based integration tests: invariants every system must hold.

Random small workloads are pushed through Baseline, Baseline+PowerCtrl,
and EcoFaaS; regardless of configuration the platform must conserve jobs,
time, cores, and energy.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.faults import NODE_CRASH, FaultEvent, FaultPlan
from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.sim import Environment
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace

SYSTEM_FACTORIES = {
    "baseline": BaselineSystem,
    "powerctrl": PowerCtrlSystem,
    "ecofaas": lambda: EcoFaaSSystem(EcoFaaSConfig()),
}

# Small but diverse workloads: short fn, long fn, one app.
MIXES = [
    ["WebServ"],
    ["MLTrain"],
    ["eBank"],
    ["WebServ", "CNNServ", "eBank"],
]


def run_once(factory, mix, rate, seed):
    trace = generate_poisson_trace(PoissonLoadConfig(
        mix, rate_rps=rate, duration_s=8.0, seed=seed))
    env = Environment()
    cluster = Cluster(env, factory(),
                      ClusterConfig(n_servers=1, seed=seed, drain_s=60.0))
    cluster.run_trace(trace)
    return trace, cluster


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100),
       mix_index=st.integers(min_value=0, max_value=len(MIXES) - 1),
       system=st.sampled_from(sorted(SYSTEM_FACTORIES)))
def test_every_request_completes_and_accounts_consistently(
        seed, mix_index, system):
    trace, cluster = run_once(SYSTEM_FACTORIES[system], MIXES[mix_index],
                              rate=6.0, seed=seed)
    metrics = cluster.metrics
    # 1. Every workflow completes within the generous drain.
    assert metrics.completed_workflows() == len(trace)
    assert cluster.inflight == 0
    # 2. Per-invocation accounting: queue+run+block+switch overheads make
    # up the latency; components never exceed it.
    for record in metrics.function_records:
        parts = record.t_queue_s + record.t_run_s + record.t_block_s
        assert parts <= record.latency_s + 1e-6
        assert record.energy_j >= 0
    # 3. Energy books balance: attributed energy is part of metered active
    # energy (never more).
    components = cluster.energy_by_component()
    attributed = sum(cluster.energy_by_benchmark().values())
    active = components["core_active"] + components["dram"]
    assert attributed <= active + 1e-6
    # 4. Total energy is positive and finite.
    assert 0 < cluster.total_energy_j < float("inf")


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_ecofaas_cores_conserved_under_random_load(seed):
    _, cluster = run_once(SYSTEM_FACTORIES["ecofaas"],
                          ["WebServ", "MLTrain", "eBank"],
                          rate=10.0, seed=seed)
    for node in cluster.nodes:
        total = (sum(p.n_cores for p in node._pools)
                 + sum(p.n_cores for p in node._retiring)
                 + len(node._free))
        assert total == node.server.n_cores


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_identical_seeds_identical_results_all_systems(seed):
    for name, factory in SYSTEM_FACTORIES.items():
        _, a = run_once(factory, ["WebServ", "CNNServ"], rate=8.0,
                        seed=seed)
        _, b = run_once(factory, ["WebServ", "CNNServ"], rate=8.0,
                        seed=seed)
        assert a.total_energy_j == pytest.approx(b.total_energy_j), name
        lat_a = [r.latency_s for r in a.metrics.workflow_records]
        lat_b = [r.latency_s for r in b.metrics.workflow_records]
        assert lat_a == lat_b, name


def test_run_time_decomposition_matches_frequency_histogram():
    """Per-job freq_run_seconds must sum to the job's total t_run."""
    _, cluster = run_once(SYSTEM_FACTORIES["ecofaas"], ["CNNServ"],
                          rate=10.0, seed=3)
    for record in cluster.metrics.function_records:
        assert sum(record.freq_run_seconds.values()) == pytest.approx(
            record.t_run_s, rel=1e-6)


def test_energy_monotone_in_load_for_all_systems():
    for name, factory in SYSTEM_FACTORIES.items():
        _, light = run_once(factory, ["CNNServ"], rate=3.0, seed=1)
        _, heavy = run_once(factory, ["CNNServ"], rate=20.0, seed=1)
        assert heavy.total_energy_j > light.total_energy_j, name


# ----------------------------------------------------------------------
# Invariants under chaos (repro.faults): crashes, retries, re-dispatch
# ----------------------------------------------------------------------

CHAOS_POLICY = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05,
                                 backoff_multiplier=2.0, backoff_jitter=0.1)

# Two crashes mid-trace: one per node, so every node rebuilds once and
# retried jobs land on whichever machine is up.
CHAOS_PLAN = FaultPlan((
    FaultEvent(1.5, NODE_CRASH, node=0, duration_s=1.0),
    FaultEvent(4.0, NODE_CRASH, node=1, duration_s=1.5),
))


def run_chaotic(factory, mix, rate, seed):
    trace = generate_poisson_trace(PoissonLoadConfig(
        mix, rate_rps=rate, duration_s=8.0, seed=seed))
    env = Environment()
    cluster = Cluster(env, factory(),
                      ClusterConfig(n_servers=2, seed=seed, drain_s=60.0,
                                    reliability=CHAOS_POLICY),
                      fault_plan=CHAOS_PLAN)
    cluster.run_trace(trace)
    return trace, cluster


def all_pools(node):
    """Every scheduler a node controller currently owns."""
    pools = node._pools
    if isinstance(pools, dict):  # MXFaaS-style per-function partitions
        return list(pools.values())
    return list(pools) + list(node._retiring)  # EcoFaaS elastic pools


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100),
       mix_index=st.integers(min_value=0, max_value=len(MIXES) - 1),
       system=st.sampled_from(sorted(SYSTEM_FACTORIES)))
def test_ewt_nonnegative_and_drains_to_zero_under_chaos(
        seed, mix_index, system):
    """EWT counters survive crashes, retries, and cross-node re-dispatch.

    After the drain every pool's raw Estimated-Wait-Time counter must be
    back at exactly zero (never negative): aborted jobs must not leak the
    amounts they registered, and retried jobs must unregister on whichever
    node finally ran them.
    """
    trace, cluster = run_chaotic(SYSTEM_FACTORIES[system], MIXES[mix_index],
                                 rate=6.0, seed=seed)
    metrics = cluster.metrics
    # No invocation is ever lost: 8 retries dwarf 2 crashes.
    assert metrics.completed_workflows() == len(trace)
    assert metrics.failed_workflows == 0
    assert metrics.lost_invocations == 0
    assert cluster.inflight == 0
    # 100 % of crash-lost in-flight jobs were re-dispatched to completion.
    assert metrics.crash_redispatches == metrics.jobs_lost_to_crash
    for node in cluster.nodes:
        assert not node.down  # both reboots finished
        for pool in all_pools(node):
            assert pool._ewt_s >= -1e-9, (system, pool.name)
            assert pool._ewt_s == pytest.approx(0.0, abs=1e-9), \
                (system, pool.name)
            assert not pool._ewt_amounts, (system, pool.name)
            assert pool.load == 0, (system, pool.name)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_ecofaas_cores_conserved_across_crash_and_reboot(seed):
    _, cluster = run_chaotic(SYSTEM_FACTORIES["ecofaas"],
                             ["WebServ", "CNNServ", "eBank"],
                             rate=8.0, seed=seed)
    for node in cluster.nodes:
        total = (sum(p.n_cores for p in node._pools)
                 + sum(p.n_cores for p in node._retiring)
                 + len(node._free))
        assert total == node.server.n_cores
        assert node.crash_count == 1
