"""Property-based integration tests: invariants every system must hold.

Random small workloads are pushed through Baseline, Baseline+PowerCtrl,
and EcoFaaS; regardless of configuration the platform must conserve jobs,
time, cores, and energy.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace
from repro.workloads.registry import benchmark_names

SYSTEM_FACTORIES = {
    "baseline": BaselineSystem,
    "powerctrl": PowerCtrlSystem,
    "ecofaas": lambda: EcoFaaSSystem(EcoFaaSConfig()),
}

# Small but diverse workloads: short fn, long fn, one app.
MIXES = [
    ["WebServ"],
    ["MLTrain"],
    ["eBank"],
    ["WebServ", "CNNServ", "eBank"],
]


def run_once(factory, mix, rate, seed):
    trace = generate_poisson_trace(PoissonLoadConfig(
        mix, rate_rps=rate, duration_s=8.0, seed=seed))
    env = Environment()
    cluster = Cluster(env, factory(),
                      ClusterConfig(n_servers=1, seed=seed, drain_s=60.0))
    cluster.run_trace(trace)
    return trace, cluster


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100),
       mix_index=st.integers(min_value=0, max_value=len(MIXES) - 1),
       system=st.sampled_from(sorted(SYSTEM_FACTORIES)))
def test_every_request_completes_and_accounts_consistently(
        seed, mix_index, system):
    trace, cluster = run_once(SYSTEM_FACTORIES[system], MIXES[mix_index],
                              rate=6.0, seed=seed)
    metrics = cluster.metrics
    # 1. Every workflow completes within the generous drain.
    assert metrics.completed_workflows() == len(trace)
    assert cluster.inflight == 0
    # 2. Per-invocation accounting: queue+run+block+switch overheads make
    # up the latency; components never exceed it.
    for record in metrics.function_records:
        parts = record.t_queue_s + record.t_run_s + record.t_block_s
        assert parts <= record.latency_s + 1e-6
        assert record.energy_j >= 0
    # 3. Energy books balance: attributed energy is part of metered active
    # energy (never more).
    components = cluster.energy_by_component()
    attributed = sum(cluster.energy_by_benchmark().values())
    active = components["core_active"] + components["dram"]
    assert attributed <= active + 1e-6
    # 4. Total energy is positive and finite.
    assert 0 < cluster.total_energy_j < float("inf")


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_ecofaas_cores_conserved_under_random_load(seed):
    _, cluster = run_once(SYSTEM_FACTORIES["ecofaas"],
                          ["WebServ", "MLTrain", "eBank"],
                          rate=10.0, seed=seed)
    for node in cluster.nodes:
        total = (sum(p.n_cores for p in node._pools)
                 + sum(p.n_cores for p in node._retiring)
                 + len(node._free))
        assert total == node.server.n_cores


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50))
def test_identical_seeds_identical_results_all_systems(seed):
    for name, factory in SYSTEM_FACTORIES.items():
        _, a = run_once(factory, ["WebServ", "CNNServ"], rate=8.0,
                        seed=seed)
        _, b = run_once(factory, ["WebServ", "CNNServ"], rate=8.0,
                        seed=seed)
        assert a.total_energy_j == pytest.approx(b.total_energy_j), name
        lat_a = [r.latency_s for r in a.metrics.workflow_records]
        lat_b = [r.latency_s for r in b.metrics.workflow_records]
        assert lat_a == lat_b, name


def test_run_time_decomposition_matches_frequency_histogram():
    """Per-job freq_run_seconds must sum to the job's total t_run."""
    _, cluster = run_once(SYSTEM_FACTORIES["ecofaas"], ["CNNServ"],
                          rate=10.0, seed=3)
    for record in cluster.metrics.function_records:
        assert sum(record.freq_run_seconds.values()) == pytest.approx(
            record.t_run_s, rel=1e-6)


def test_energy_monotone_in_load_for_all_systems():
    for name, factory in SYSTEM_FACTORIES.items():
        _, light = run_once(factory, ["CNNServ"], rate=3.0, seed=1)
        _, heavy = run_once(factory, ["CNNServ"], rate=20.0, seed=1)
        assert heavy.total_energy_j > light.total_energy_j, name
