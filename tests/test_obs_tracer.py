"""Unit tests for the tracing core (repro.obs.tracer)."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.tracer import PHASES
from repro.sim import Environment


def make_bound_tracer():
    env = Environment()
    tracer = Tracer()
    tracer.begin_run("test")
    tracer.bind(env)
    return env, tracer


class TestNullTracer:
    def test_every_environment_starts_with_the_null_tracer(self):
        env = Environment()
        assert env.trace is NULL_TRACER
        assert env.trace.enabled is False

    def test_all_hooks_are_noops(self):
        tracer = NullTracer()
        tracer.bind(object())
        tracer.begin_run("x")
        tracer.invocation_begin(1, "fn", foo=1)
        tracer.invocation_end(1, "completed")
        tracer.phase(1, "run")
        tracer.workflow_begin(1, "wf")
        tracer.workflow_end(1, "completed")
        tracer.instant("preemption", "pool")
        tracer.counter("node0", "power_w", 1.0)

    def test_bind_does_not_hijack_env_trace(self):
        env = Environment()
        NULL_TRACER.bind(env)
        assert env.trace is NULL_TRACER


class TestTracerLifecycle:
    def test_bind_installs_self_as_env_trace(self):
        env, tracer = make_bound_tracer()
        assert env.trace is tracer
        assert tracer.enabled is True

    def test_unbound_tracer_raises_on_stamp(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.instant("x", "track")

    def test_counter_period_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(counter_period_s=0.0)

    def test_hooks_before_begin_run_open_anonymous_run(self):
        env = Environment()
        tracer = Tracer()
        tracer.bind(env)
        tracer.instant("x", "track")
        assert tracer.run_labels == ["run"]
        assert tracer.instants[0].run == 0

    def test_begin_run_closes_previous_runs_open_spans(self):
        env, tracer = make_bound_tracer()

        def proc():
            tracer.invocation_begin(7, "fn")
            tracer.phase(7, "queue")
            yield env.timeout(3.0)

        env.process(proc())
        env.run()
        tracer.begin_run("second")
        (invocation,) = tracer.spans_of("invocation")
        (phase,) = tracer.spans_of("phase")
        assert invocation.t1 == 3.0  # closed at the run's last timestamp
        assert invocation.args["status"] == "unfinished"
        assert phase.t1 == 3.0
        assert tracer.run_labels == ["test", "second"]


class TestSpans:
    def test_invocation_span_records_times_and_args(self):
        env, tracer = make_bound_tracer()

        def proc():
            tracer.invocation_begin(1, "fnA", benchmark="B")
            yield env.timeout(2.5)
            tracer.invocation_end(1, "completed", energy_j=4.0)

        env.process(proc())
        env.run()
        (span,) = tracer.spans_of("invocation")
        assert (span.name, span.uid, span.t0, span.t1) == ("fnA", 1, 0.0, 2.5)
        assert span.duration_s == 2.5
        assert span.args == {"benchmark": "B", "energy_j": 4.0,
                             "status": "completed"}

    def test_phase_transitions_close_the_previous_phase(self):
        env, tracer = make_bound_tracer()

        def proc():
            tracer.invocation_begin(1, "fn")
            tracer.phase(1, "queue")
            yield env.timeout(1.0)
            tracer.phase(1, "run")
            yield env.timeout(2.0)
            tracer.phase(1, "block")
            yield env.timeout(0.5)
            tracer.invocation_end(1, "completed")

        env.process(proc())
        env.run()
        phases = tracer.spans_of("phase")
        assert [p.name for p in phases] == ["queue", "run", "block"]
        assert all(p.name in PHASES for p in phases)
        assert [(p.t0, p.t1) for p in phases] == [
            (0.0, 1.0), (1.0, 3.0), (3.0, 3.5)]

    def test_duplicate_invocation_end_is_ignored(self):
        env, tracer = make_bound_tracer()

        def proc():
            tracer.invocation_begin(1, "fn")
            yield env.timeout(1.0)
            tracer.invocation_end(1, "aborted")
            tracer.invocation_end(1, "completed")  # idempotent abort+complete

        env.process(proc())
        env.run()
        (span,) = tracer.spans_of("invocation")
        assert span.args["status"] == "aborted"

    def test_workflow_span(self):
        env, tracer = make_bound_tracer()

        def proc():
            tracer.workflow_begin(0, "VidAn", slo_s=1.0)
            yield env.timeout(0.8)
            tracer.workflow_end(0, "completed", met_slo=True)

        env.process(proc())
        env.run()
        (span,) = tracer.spans_of("workflow")
        assert span.kind == "workflow"
        assert span.args == {"slo_s": 1.0, "met_slo": True,
                             "status": "completed"}

    def test_spans_of_filters_by_run(self):
        env, tracer = make_bound_tracer()
        tracer.invocation_begin(1, "a")
        tracer.invocation_end(1, "completed")
        tracer.begin_run("second")
        tracer.bind(env)
        tracer.invocation_begin(1, "b")
        tracer.invocation_end(1, "completed")
        assert [s.name for s in tracer.spans_of("invocation", 0)] == ["a"]
        assert [s.name for s in tracer.spans_of("invocation", 1)] == ["b"]
        assert len(tracer.spans_of("invocation")) == 2


class TestInstantsAndCounters:
    def test_instant_records_track_time_and_args(self):
        env, tracer = make_bound_tracer()

        def proc():
            yield env.timeout(1.5)
            tracer.instant("preemption", "pool@0", victim=3)

        env.process(proc())
        env.run()
        (inst,) = tracer.instants_named("preemption")
        assert (inst.track, inst.t, inst.args) == ("pool@0", 1.5,
                                                   {"victim": 3})
        assert tracer.instants_named("no_such_name") == []

    def test_counter_coerces_value_to_float(self):
        env, tracer = make_bound_tracer()
        tracer.counter("node0", "outstanding", 7)
        (sample,) = tracer.counters
        assert sample.value == 7.0
        assert isinstance(sample.value, float)
        assert (sample.track, sample.series) == ("node0", "outstanding")

    def test_run_end_tracks_latest_timestamp(self):
        env, tracer = make_bound_tracer()

        def proc():
            yield env.timeout(4.0)
            tracer.instant("x", "t")

        env.process(proc())
        env.run()
        assert tracer.run_end_s == [4.0]
