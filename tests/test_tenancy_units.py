"""Unit coverage for repro.tenancy: config, windows, ladder, billing."""

import pytest

from repro.hardware.frequency import HASWELL_LEVELS_GHZ, FrequencyScale
from repro.obs.registry import LEDGER_COMPONENTS
from repro.tenancy import (
    UNATTRIBUTED,
    EnergyBudgetWindow,
    PowerCapConfig,
    PricingModel,
    TenancyConfig,
    TenantRegistry,
    TenantSpec,
    bill_from_breakdown,
    jain_index,
)
from repro.tenancy.registry import UNOWNED


def two_tenants():
    return TenancyConfig(tenants=(
        TenantSpec("slo", ("WebServ", "ImgProc"), budget_j=100.0,
                   window_s=5.0),
        TenantSpec("batch", ("MLTrain",), budget_j=50.0, window_s=5.0,
                   best_effort=True),
    ))


class TestConfigValidation:
    def test_tenant_needs_benchmarks(self):
        with pytest.raises(ValueError, match="owns no benchmarks"):
            TenantSpec("empty")

    def test_duplicate_benchmark_within_tenant(self):
        with pytest.raises(ValueError, match="twice"):
            TenantSpec("t", ("A", "A"))

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget_j"):
            TenantSpec("t", ("A",), budget_j=0.0)

    def test_benchmark_owned_once_across_tenants(self):
        with pytest.raises(ValueError, match="owned by both"):
            TenancyConfig(tenants=(TenantSpec("a", ("X",)),
                                   TenantSpec("b", ("X",))))

    def test_duplicate_tenant_names(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            TenancyConfig(tenants=(TenantSpec("a", ("X",)),
                                   TenantSpec("a", ("Y",))))

    def test_schedule_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PowerCapConfig(schedule=((5.0, 100.0), (5.0, 80.0)))

    def test_schedule_caps_positive(self):
        with pytest.raises(ValueError, match="positive"):
            PowerCapConfig(schedule=((5.0, -1.0),))

    def test_cap_at_walks_the_schedule(self):
        config = PowerCapConfig(cap_w=200.0,
                                schedule=((10.0, 150.0), (20.0, 100.0)))
        assert config.cap_at(0.0) == 200.0
        assert config.cap_at(10.0) == 150.0
        assert config.cap_at(19.9) == 150.0
        assert config.cap_at(25.0) == 100.0

    def test_pricing_rejects_unknown_component(self):
        with pytest.raises(ValueError, match="unknown ledger component"):
            PricingModel(usd_per_mj=(("warp_drive", 1.0),))

    def test_pricing_default_rate(self):
        pricing = PricingModel(usd_per_mj=(("run", 0.5),),
                               default_usd_per_mj=0.1)
        assert pricing.price("run") == 0.5
        assert pricing.price("idle") == 0.1
        assert pricing.cost_usd("run", 2e6) == pytest.approx(1.0)


class TestEnergyBudgetWindow:
    def test_charges_expire_after_window(self):
        window = EnergyBudgetWindow(5.0)
        window.charge(0.0, 10.0)
        window.charge(3.0, 20.0)
        assert window.used_j(4.0) == pytest.approx(30.0)
        assert window.used_j(5.5) == pytest.approx(20.0)
        assert window.used_j(8.5) == pytest.approx(0.0)
        assert window.lifetime_j == pytest.approx(30.0)

    def test_non_positive_charges_ignored(self):
        window = EnergyBudgetWindow(5.0)
        window.charge(0.0, 0.0)
        window.charge(0.0, -1.0)
        assert window.used_j(0.0) == 0.0
        assert window.lifetime_j == 0.0


class TestTenantRegistry:
    def test_mapping_and_unowned(self):
        registry = TenantRegistry(two_tenants())
        assert registry.tenant_name_of("WebServ") == "slo"
        assert registry.tenant_name_of("MLTrain") == "batch"
        assert registry.tenant_name_of("Mystery") == UNOWNED
        assert registry.tenant_name_of(None) == UNOWNED

    def test_unowned_charges_accumulate_separately(self):
        registry = TenantRegistry(two_tenants())
        registry.charge("Mystery", 0.0, 7.0)
        assert registry.unowned_j == pytest.approx(7.0)
        assert registry.used_j("slo", 0.0) == 0.0

    def test_over_budget_requires_exceeding(self):
        registry = TenantRegistry(two_tenants())
        registry.charge("WebServ", 0.0, 100.0)
        assert registry.over_budget("WebServ", 0.0) is None
        registry.charge("ImgProc", 0.0, 0.5)
        over = registry.over_budget("WebServ", 0.0)
        assert over is not None and over.name == "slo"
        # Expiry clears the verdict.
        assert registry.over_budget("WebServ", 100.0) is None

    def test_unmetered_tenant_never_over_budget(self):
        registry = TenantRegistry(TenancyConfig(tenants=(
            TenantSpec("free", ("A",)),)))
        registry.charge("A", 0.0, 1e9)
        assert registry.over_budget("A", 0.0) is None

    def test_snapshot_reports_budget_state(self):
        registry = TenantRegistry(two_tenants())
        registry.charge("MLTrain", 0.0, 60.0)
        registry.record_throttle("batch")
        rows = registry.snapshot(0.0)
        assert rows["batch"]["over_budget"] is True
        assert rows["batch"]["throttles"] == 1
        assert rows["slo"]["over_budget"] is False


class TestGovernorLadder:
    """Pure ladder geometry, on a governor wired to a stub cluster."""

    def make(self, **kwargs):
        from repro.tenancy.governor import PowerCapGovernor

        class StubEnv:
            now = 0.0

        class StubClusterConfig:
            scale = FrequencyScale()

        class StubCluster:
            env = StubEnv()
            config = StubClusterConfig()
            servers = ()
            nodes = ()
        return PowerCapGovernor(StubCluster(),
                                PowerCapConfig(**kwargs))

    def test_ceiling_descends_the_scale(self):
        governor = self.make(cap_w=100.0)
        assert governor.freq_ceiling_ghz() is None
        levels = list(reversed(HASWELL_LEVELS_GHZ[:-1]))
        for steps, expected in enumerate(levels, start=1):
            governor.steps = steps
            assert governor.freq_ceiling_ghz() == pytest.approx(expected)

    def test_core_fraction_engages_after_freq_steps(self):
        governor = self.make(cap_w=100.0, min_core_fraction=0.25,
                             core_step=0.125)
        governor.steps = governor._freq_steps
        assert governor.core_fraction() == 1.0
        governor.steps = governor._freq_steps + 2
        assert governor.core_fraction() == pytest.approx(0.75)
        governor.steps = governor.max_steps
        assert governor.core_fraction() == pytest.approx(0.25)

    def test_capped_cores_floor_is_one(self):
        governor = self.make(cap_w=100.0, min_core_fraction=0.25)
        governor.steps = governor.max_steps
        assert governor.capped_cores(20) == 5
        assert governor.capped_cores(1) == 1

    def test_clamp_only_lowers(self):
        governor = self.make(cap_w=100.0)
        governor.steps = 2
        ceiling = governor.freq_ceiling_ghz()
        assert governor.clamp(3.0) == pytest.approx(ceiling)
        assert governor.clamp(1.2) == pytest.approx(1.2)
        assert governor.clamp(None) is None


class TestStepDown:
    def test_step_down_clamps_at_min(self):
        scale = FrequencyScale()
        assert scale.step_down(3.0) == pytest.approx(2.7)
        assert scale.step_down(3.0, steps=100) == pytest.approx(1.2)
        assert scale.step_down(1.2) == pytest.approx(1.2)

    def test_step_down_rejects_negative(self):
        with pytest.raises(ValueError):
            FrequencyScale().step_down(3.0, steps=-1)


class TestJainIndex:
    def test_even_shares_are_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_party_takes_everything(self):
        assert jain_index([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_zero_are_fair_by_definition(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestBilling:
    def breakdown(self):
        return {
            "WebServ": {"run": 10.0, "cold_start": 2.0},
            "MLTrain": {"run": 30.0, "retry_waste": 6.0},
            UNATTRIBUTED: {"idle": 12.0, "static": 4.0},
        }

    def tenant_of(self, benchmark):
        return {"WebServ": "slo", "MLTrain": "batch"}[benchmark]

    def test_billed_joules_conserve_the_total(self):
        document = bill_from_breakdown(self.breakdown(), self.tenant_of)
        total = 10.0 + 2.0 + 30.0 + 6.0 + 12.0 + 4.0
        assert document["total_j"] == pytest.approx(total, abs=1e-9)
        assert sum(row["energy_j"] for row in document["tenants"]) \
            == pytest.approx(total, abs=1e-9)

    def test_unattributed_spread_follows_consumption(self):
        document = bill_from_breakdown(self.breakdown(), self.tenant_of)
        rows = {row["tenant"]: row for row in document["tenants"]}
        # batch consumed 36 of 48 attributed joules -> 3/4 of the spread.
        assert rows["batch"]["by_component_j"]["idle"] \
            == pytest.approx(9.0)
        assert rows["slo"]["by_component_j"]["idle"] == pytest.approx(3.0)
        assert UNATTRIBUTED not in rows

    def test_component_prices_differ(self):
        document = bill_from_breakdown(self.breakdown(), self.tenant_of)
        rows = {row["tenant"]: row for row in document["tenants"]}
        pricing = PricingModel()
        waste = rows["batch"]["by_component_usd"]["retry_waste"]
        assert waste == pytest.approx(pricing.cost_usd("retry_waste", 6.0))
        assert pricing.price("retry_waste") > pricing.price("run") \
            > pricing.price("static")

    def test_nothing_attributed_keeps_own_row(self):
        document = bill_from_breakdown(
            {UNATTRIBUTED: {"static": 5.0}}, self.tenant_of)
        rows = {row["tenant"]: row for row in document["tenants"]}
        assert rows[UNATTRIBUTED]["energy_j"] == pytest.approx(5.0)

    def test_every_component_keyed(self):
        document = bill_from_breakdown(self.breakdown(), self.tenant_of)
        for row in document["tenants"]:
            assert set(row["by_component_j"]) == set(LEDGER_COMPONENTS)
