"""Tests for heterogeneous-server support (Section VI-E3 integrated)."""

import pytest

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.core.profiles import ProfileStore
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.hardware.server import Server
from repro.hardware.work import WorkUnit
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace
from repro.workloads.functionbench import CNN_SERV, WEB_SERV


class TestIpcFactor:
    def test_faster_machine_finishes_sooner_at_same_clock(self):
        env = Environment()
        meter = EnergyMeter()
        power = PowerModel()
        done = {}
        for label, ipc in (("haswell", 1.0), ("skylake", 1.25)):
            core = Core(env, 0, power, meter, 3.0, ipc_factor=ipc)
            core.start(WorkUnit(gcycles=3.0), "f",
                       on_complete=lambda c, l=label: done.setdefault(
                           l, env.now))
        env.run()
        assert done["skylake"] == pytest.approx(1.0 / 1.25)
        assert done["haswell"] == pytest.approx(1.0)

    def test_power_follows_nominal_frequency_not_ipc(self):
        env = Environment()
        meter = EnergyMeter()
        power = PowerModel()
        core = Core(env, 0, power, meter, 3.0, ipc_factor=1.25)
        core.start(WorkUnit(gcycles=3.0), "f", lambda c: None)
        env.run()
        core.finalize()
        # Runs for 0.8s at the 3.0 GHz power level.
        assert meter.component_j("core_active") == pytest.approx(
            power.core_active_power(3.0) * 0.8)

    def test_invalid_ipc_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Core(env, 0, PowerModel(), EnergyMeter(), 3.0, ipc_factor=0.0)

    def test_server_threads_machine_type(self):
        env = Environment()
        server = Server(env, machine_type="skylake", ipc_factor=1.25,
                        n_cores=2)
        assert server.machine_type == "skylake"
        assert all(c.ipc_factor == 1.25 for c in server.cores)

    def test_cluster_machine_mix_cycles(self):
        env = Environment()
        cluster = Cluster(env, EcoFaaSSystem(), ClusterConfig(
            n_servers=3, seed=0,
            machine_mix=(("haswell", 1.0), ("skylake", 1.25))))
        types = [s.machine_type for s in cluster.servers]
        assert types == ["haswell", "skylake", "haswell"]


class TestProfileStoreBridging:
    def make_store(self):
        return ProfileStore(FrequencyScale(), PowerModel(),
                            EcoFaaSConfig(), seed=0)

    def fill(self, store, fn, mtype, t_run, n=5):
        profile = store.profile(fn, mtype)
        for _ in range(n):
            profile.observe(3.0, t_run, fn.block_seconds, 1.0)
            store.note_observation()

    def test_per_type_profiles_are_independent(self):
        store = self.make_store()
        self.fill(store, WEB_SERV, "haswell", 0.005)
        self.fill(store, WEB_SERV, "skylake", 0.004)
        assert store.predict_t_run("WebServ", "haswell", 3.0) == \
            pytest.approx(0.005, rel=0.05)
        assert store.predict_t_run("WebServ", "skylake", 3.0) == \
            pytest.approx(0.004, rel=0.05)

    def test_unprofiled_type_bridges_from_profiled_one(self):
        store = self.make_store()
        # Two functions measured on both machines establish the ratio...
        self.fill(store, WEB_SERV, "haswell", 0.005)
        self.fill(store, WEB_SERV, "skylake", 0.004)
        self.fill(store, CNN_SERV, "haswell", 0.200)
        self.fill(store, CNN_SERV, "skylake", 0.160)
        # ... so a third function profiled only on haswell is ready on
        # skylake through the bridge, scaled by ~0.8.
        from repro.workloads.functionbench import LR_SERV
        self.fill(store, LR_SERV, "haswell", 0.015)
        assert store.ready("LRServ", "skylake")
        bridged = store.predict_t_run("LRServ", "skylake", 3.0)
        assert bridged == pytest.approx(0.015 * 0.8, rel=0.15)

    def test_bridge_falls_back_to_identity_without_common_functions(self):
        store = self.make_store()
        self.fill(store, WEB_SERV, "haswell", 0.005)
        assert store.ready("WebServ", "skylake")  # bridged
        assert store.predict_t_run("WebServ", "skylake", 3.0) == \
            pytest.approx(0.005, rel=0.1)

    def test_unknown_function_raises(self):
        store = self.make_store()
        with pytest.raises(KeyError):
            store.predict_t_run("ghost", "haswell", 3.0)
        with pytest.raises(KeyError):
            store.profile_by_name("ghost")

    def test_profile_by_name_prefers_best_observed(self):
        store = self.make_store()
        self.fill(store, WEB_SERV, "skylake", 0.004, n=20)
        self.fill(store, WEB_SERV, "haswell", 0.005, n=3)
        best = store.profile_by_name("WebServ")
        assert best.predict_t_run(3.0) == pytest.approx(0.004, rel=0.1)


class TestHeterogeneousEndToEnd:
    def test_mixed_cluster_runs_and_saves_energy(self):
        trace = generate_poisson_trace(PoissonLoadConfig(
            ["CNNServ", "WebServ"], rate_rps=25.0, duration_s=15.0,
            seed=1))
        env = Environment()
        cluster = Cluster(env, EcoFaaSSystem(), ClusterConfig(
            n_servers=2, seed=0, drain_s=30.0,
            machine_mix=(("haswell", 1.0), ("skylake", 1.25))))
        cluster.run_trace(trace)
        metrics = cluster.metrics
        assert metrics.completed_workflows() == len(trace)
        histogram = metrics.frequency_histogram()
        assert min(histogram) < 3.0  # sub-max frequencies in use

    def test_faster_machines_lower_latency_for_same_work(self):
        def mean_latency(mix):
            trace = generate_poisson_trace(PoissonLoadConfig(
                ["MLTrain"], rate_rps=4.0, duration_s=15.0, seed=2))
            env = Environment()
            from repro.baselines import BaselineSystem
            cluster = Cluster(env, BaselineSystem(), ClusterConfig(
                n_servers=1, seed=0, drain_s=40.0, machine_mix=mix))
            cluster.run_trace(trace)
            return cluster.metrics.latency_avg()

        slow = mean_latency((("haswell", 1.0),))
        fast = mean_latency((("skylake", 1.3),))
        assert fast < slow
