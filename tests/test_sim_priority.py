"""Tests for priority and preemptive resources."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.priority import (
    Preempted,
    PreemptiveResource,
    PriorityResource,
)


class TestPriorityResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PriorityResource(Environment(), capacity=0)

    def test_grants_in_priority_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(tag, priority, delay):
            yield env.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(tag)
                yield env.timeout(1.0)

        env.process(worker("holder", 0, 0.0))
        env.process(worker("low", 5, 0.1))
        env.process(worker("high", 1, 0.2))
        env.run()
        assert order == ["holder", "high", "low"]

    def test_fifo_within_same_priority(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(tag, delay):
            yield env.timeout(delay)
            with res.request(priority=3) as req:
                yield req
                order.append(tag)
                yield env.timeout(1.0)

        env.process(worker("a", 0.0))
        env.process(worker("b", 0.1))
        env.process(worker("c", 0.2))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_of_waiting_request_removes_it(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        holder = res.request(priority=0)
        waiter = res.request(priority=1)
        res.release(waiter)
        assert res.queue_length == 0
        res.release(holder)
        assert not waiter.triggered

    def test_no_preemption_in_plain_priority_resource(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        trace = []

        def holder():
            with res.request(priority=9) as req:
                yield req
                yield env.timeout(2.0)
                trace.append(("held", env.now))

        def urgent():
            yield env.timeout(0.5)
            with res.request(priority=0) as req:
                yield req
                trace.append(("urgent", env.now))

        env.process(holder())
        env.process(urgent())
        env.run()
        assert trace == [("held", 2.0), ("urgent", 2.0)]


class TestPreemptiveResource:
    def test_high_priority_evicts_lowest_user(self):
        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        trace = []

        def victim():
            with res.request(priority=9) as req:
                yield req
                try:
                    yield env.timeout(10.0)
                    trace.append("victim-finished")
                except Interrupt as interrupt:
                    cause = interrupt.cause
                    assert isinstance(cause, Preempted)
                    trace.append(("evicted", env.now, cause.usage_since))

        def attacker():
            yield env.timeout(1.0)
            with res.request(priority=0) as req:
                yield req
                trace.append(("attacker", env.now))

        env.process(victim())
        env.process(attacker())
        env.run()
        assert trace == [("evicted", 1.0, 0.0), ("attacker", 1.0)]

    def test_equal_priority_does_not_preempt(self):
        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        trace = []

        def worker(tag, delay):
            yield env.timeout(delay)
            with res.request(priority=5) as req:
                yield req
                yield env.timeout(1.0)
                trace.append((tag, env.now))

        env.process(worker("first", 0.0))
        env.process(worker("second", 0.2))
        env.run()
        assert trace == [("first", 1.0), ("second", 2.0)]

    def test_preempt_false_waits_politely(self):
        env = Environment()
        res = PreemptiveResource(env, capacity=1)
        trace = []

        def holder():
            with res.request(priority=9) as req:
                yield req
                yield env.timeout(2.0)
                trace.append(("holder-done", env.now))

        def polite():
            yield env.timeout(0.5)
            with res.request(priority=0, preempt=False) as req:
                yield req
                trace.append(("polite", env.now))

        env.process(holder())
        env.process(polite())
        env.run()
        assert trace == [("holder-done", 2.0), ("polite", 2.0)]

    def test_multi_slot_evicts_only_least_important(self):
        env = Environment()
        res = PreemptiveResource(env, capacity=2)
        evicted = []

        def user(tag, priority):
            with res.request(priority=priority) as req:
                yield req
                try:
                    yield env.timeout(10.0)
                except Interrupt:
                    evicted.append(tag)

        def vip():
            yield env.timeout(1.0)
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(0.5)

        env.process(user("mid", 5))
        env.process(user("low", 9))
        env.process(vip())
        env.run()
        assert evicted == ["low"]
