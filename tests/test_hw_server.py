"""Tests for the server assembly, energy meter, and frequency timeline."""

import pytest

from repro.hardware.energy import EnergyMeter, FrequencyTimeline
from repro.hardware.frequency import FrequencyScale
from repro.hardware.server import Server
from repro.hardware.work import WorkUnit
from repro.sim import Environment


class TestEnergyMeter:
    def test_starts_empty(self):
        meter = EnergyMeter()
        assert meter.total_j == 0.0
        assert meter.consumer_j("anything") == 0.0

    def test_add_and_total(self):
        meter = EnergyMeter()
        meter.add("core_active", 10.0)
        meter.add("uncore", 5.0)
        assert meter.total_j == 15.0
        assert meter.component_j("core_active") == 10.0

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            EnergyMeter().add("gpu", 1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter().add("dram", -1.0)
        with pytest.raises(ValueError):
            EnergyMeter().attribute("f", -1.0)

    def test_attribution_accumulates(self):
        meter = EnergyMeter()
        meter.attribute("f", 2.0)
        meter.attribute("f", 3.0)
        meter.attribute("g", 1.0)
        assert meter.consumer_j("f") == 5.0
        assert meter.by_consumer() == {"f": 5.0, "g": 1.0}

    def test_merge_folds_both_maps(self):
        a, b = EnergyMeter(), EnergyMeter()
        a.add("dram", 1.0)
        a.attribute("f", 1.0)
        b.add("dram", 2.0)
        b.attribute("f", 2.0)
        b.attribute("g", 4.0)
        a.merge(b)
        assert a.component_j("dram") == 3.0
        assert a.consumer_j("f") == 3.0
        assert a.consumer_j("g") == 4.0

    def test_by_component_returns_copy(self):
        meter = EnergyMeter()
        snapshot = meter.by_component()
        snapshot["dram"] = 999.0
        assert meter.component_j("dram") == 0.0


class TestFrequencyTimeline:
    def test_sample_and_read_back(self):
        timeline = FrequencyTimeline()
        timeline.sample(0.0, [3.0, 1.2])
        timeline.sample(1.0, [1.2, 1.2])
        assert timeline.times == [0.0, 1.0]
        assert timeline.values == [pytest.approx(2.1), pytest.approx(1.2)]

    def test_rejects_empty_vector(self):
        with pytest.raises(ValueError):
            FrequencyTimeline().sample(0.0, [])

    def test_rejects_time_travel(self):
        timeline = FrequencyTimeline()
        timeline.sample(5.0, [1.0])
        with pytest.raises(ValueError):
            timeline.sample(4.0, [1.0])

    def test_time_average_weights_by_interval(self):
        timeline = FrequencyTimeline()
        timeline.sample(0.0, [3.0])
        timeline.sample(3.0, [1.0])   # 3.0 held for 3 s
        timeline.sample(4.0, [1.0])   # 1.0 held for 1 s
        assert timeline.time_average() == pytest.approx((3.0 * 3 + 1.0) / 4)

    def test_time_average_of_empty_raises(self):
        with pytest.raises(ValueError):
            FrequencyTimeline().time_average()

    def test_time_average_single_sample(self):
        timeline = FrequencyTimeline()
        timeline.sample(0.0, [2.4])
        assert timeline.time_average() == 2.4


class TestServer:
    def test_default_matches_paper_platform(self):
        server = Server(Environment())
        assert server.n_cores == 20
        assert all(core.frequency == 3.0 for core in server.cores)

    def test_initial_frequency_must_be_a_level(self):
        with pytest.raises(ValueError):
            Server(Environment(), initial_freq_ghz=2.0)

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            Server(Environment(), n_cores=0)

    def test_idle_and_busy_core_views(self):
        env = Environment()
        server = Server(env, n_cores=2)
        assert len(server.idle_cores()) == 2
        server.cores[0].start(WorkUnit(3.0), "f", lambda c: None)
        assert len(server.idle_cores()) == 1
        assert server.busy_cores() == [server.cores[0]]
        assert server.utilization == 0.5

    def test_finalize_charges_background_power_once(self):
        env = Environment()
        server = Server(env, n_cores=2)
        env.run(until=10.0)
        server.finalize()
        first = server.total_energy_j
        server.finalize()  # idempotent at same timestamp
        assert server.total_energy_j == first
        background = server.power.background_power() * 10.0
        idle = 2 * server.power.core_idle_power() * 10.0
        assert first == pytest.approx(background + idle)

    def test_finalize_across_intervals_is_additive(self):
        env = Environment()
        server = Server(env, n_cores=1)
        env.run(until=4.0)
        server.finalize()
        e1 = server.total_energy_j
        env.run(until=10.0)
        server.finalize()
        assert server.total_energy_j == pytest.approx(e1 * 10.0 / 4.0)

    def test_sample_timeline_records_all_cores(self):
        env = Environment()
        server = Server(env, n_cores=4, scale=FrequencyScale())
        server.cores[0].set_frequency(1.2)
        server.sample_timeline()
        assert server.timeline.values[0] == pytest.approx(
            (1.2 + 3.0 * 3) / 4)

    def test_busy_server_energy_exceeds_idle_server_energy(self):
        def run_server(load_cores):
            env = Environment()
            server = Server(env, n_cores=4)
            for core in server.cores[:load_cores]:
                core.start(WorkUnit(gcycles=30.0), "f", lambda c: None)
            env.run(until=5.0)
            server.finalize()
            return server.total_energy_j

        assert run_server(4) > run_server(1) > run_server(0)
