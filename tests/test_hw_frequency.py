"""Tests for frequency scales and DVFS cost models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.frequency import (
    HASWELL_LEVELS_GHZ,
    DvfsCostModel,
    FrequencyScale,
)


class TestFrequencyScale:
    def test_default_matches_paper_platform(self):
        scale = FrequencyScale()
        assert scale.levels == (1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0)
        assert len(scale) == 7
        assert scale.min == 1.2
        assert scale.max == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrequencyScale(())

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FrequencyScale((2.0, 1.0))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            FrequencyScale((1.0, 1.0, 2.0))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FrequencyScale((0.0, 1.0))

    def test_contains(self):
        scale = FrequencyScale()
        assert 1.8 in scale
        assert 1.85 not in scale

    def test_index_of_level(self):
        scale = FrequencyScale()
        assert scale.index(1.2) == 0
        assert scale.index(3.0) == 6

    def test_index_of_foreign_value_raises(self):
        with pytest.raises(ValueError):
            FrequencyScale().index(2.0)

    def test_ceil_picks_equal_or_next_higher(self):
        scale = FrequencyScale()
        assert scale.ceil(1.8) == 1.8
        assert scale.ceil(1.9) == 2.1
        assert scale.ceil(0.5) == 1.2

    def test_ceil_clamps_above_top(self):
        assert FrequencyScale().ceil(3.5) == 3.0

    def test_floor(self):
        scale = FrequencyScale()
        assert scale.floor(1.9) == 1.8
        assert scale.floor(1.8) == 1.8
        assert scale.floor(0.5) == 1.2

    def test_next_higher_and_lower(self):
        scale = FrequencyScale()
        assert scale.next_higher(1.2) == 1.5
        assert scale.next_higher(3.0) is None
        assert scale.next_lower(1.5) == 1.2
        assert scale.next_lower(1.2) is None

    def test_at_or_above(self):
        scale = FrequencyScale()
        assert scale.at_or_above(2.4) == (2.4, 2.7, 3.0)
        assert scale.at_or_above(3.1) == ()

    def test_from_granularity_300mhz_recovers_default(self):
        scale = FrequencyScale.from_granularity(300)
        assert scale.levels == HASWELL_LEVELS_GHZ

    def test_from_granularity_600mhz(self):
        scale = FrequencyScale.from_granularity(600)
        assert scale.levels == (1.2, 1.8, 2.4, 3.0)

    def test_from_granularity_50mhz_has_37_levels(self):
        scale = FrequencyScale.from_granularity(50)
        assert len(scale) == 37
        assert scale.min == 1.2 and scale.max == 3.0

    def test_from_granularity_includes_top_even_if_step_does_not_divide(self):
        scale = FrequencyScale.from_granularity(700)
        assert scale.max == 3.0

    def test_from_granularity_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FrequencyScale.from_granularity(0)
        with pytest.raises(ValueError):
            FrequencyScale.from_granularity(100, lo_mhz=3000, hi_mhz=1200)

    @given(st.floats(min_value=0.1, max_value=4.0))
    def test_ceil_is_a_level_at_or_above_clamped(self, freq):
        scale = FrequencyScale()
        level = scale.ceil(freq)
        assert level in scale
        if freq <= scale.max:
            assert level >= freq - 1e-9

    @given(st.floats(min_value=0.1, max_value=4.0))
    def test_floor_is_a_level_at_or_below_clamped(self, freq):
        scale = FrequencyScale()
        level = scale.floor(freq)
        assert level in scale
        if freq >= scale.min:
            assert level <= freq + 1e-9


class TestDvfsCostModel:
    def test_kernel_cost_is_tens_of_microseconds(self):
        assert 10e-6 <= DvfsCostModel().kernel_cost() <= 100e-6

    def test_sandbox_cost_without_rng_is_range_midpoint(self):
        model = DvfsCostModel()
        assert model.sandbox_cost() == pytest.approx(15e-3)

    def test_sandbox_cost_with_rng_stays_in_range(self):
        model = DvfsCostModel(rng=np.random.default_rng(0))
        for _ in range(100):
            assert 10e-3 <= model.sandbox_cost() <= 20e-3

    def test_sandbox_contention_adds_cost(self):
        model = DvfsCostModel()
        assert model.sandbox_cost(concurrent_switchers=5) == pytest.approx(
            15e-3 + 5 * 2e-3)

    def test_sandbox_cost_dwarfs_kernel_cost(self):
        # The asymmetry at the heart of the paper (Section III-4): the
        # sandboxed path is ~1000x the hardware path.
        model = DvfsCostModel()
        assert model.sandbox_cost() > 100 * model.kernel_cost()

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            DvfsCostModel(sandbox_switch_range_s=(0.02, 0.01))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            DvfsCostModel(kernel_switch_s=-1.0)
