"""Tests for the CPU-cheap experiment harnesses (structure + anchors).

The expensive cluster-scale experiments are exercised by ``benchmarks/``;
these cover the analytic/microbenchmark ones so ``pytest tests/`` alone
still validates them.
"""

import pytest

from repro.experiments import (
    fig02_freq_sensitivity,
    fig03_resource_sensitivity,
    fig07_trace_cdf,
    heterogeneous,
    section8d_overheads,
    table1_benchmarks,
)


class TestTable1:
    def test_all_twelve_benchmarks_present(self):
        result = table1_benchmarks.run(quick=True)
        assert len(result.rows) == 12
        kinds = {row["kind"] for row in result.rows}
        assert kinds == {"function", "application"}

    def test_latencies_positive(self):
        result = table1_benchmarks.run(quick=True)
        assert all(row["warm_latency_ms"] > 0 for row in result.rows)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_freq_sensitivity.run(quick=True)

    def test_covers_all_functions_and_levels(self, result):
        functions = {row["function"] for row in result.rows}
        assert len(functions) == 7
        levels = {row["freq_ghz"] for row in result.rows}
        assert len(levels) == 7

    def test_normalization_anchor_at_max(self, result):
        for row in result.rows:
            if row["freq_ghz"] == 3.0:
                assert row["norm_response_time"] == pytest.approx(1.0)
                assert row["norm_energy"] == pytest.approx(1.0)

    def test_paper_anchor_webserv(self, result):
        row = result.row_for(function="WebServ", freq_ghz=1.2)
        assert row["norm_response_time"] < 1.25
        assert row["norm_energy"] < 0.65

    def test_energy_always_lower_below_max(self, result):
        for row in result.rows:
            if row["freq_ghz"] < 3.0:
                assert row["norm_energy"] < 1.0, row


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_resource_sensitivity.run(quick=True)

    def test_penalties_bounded(self, result):
        assert all(row["norm_response_time"] < 1.2 for row in result.rows)

    def test_full_allocation_is_unity(self, result):
        for row in result.rows:
            if ((row["knob"] == "llc_ways" and row["setting"] == 16)
                    or (row["knob"] == "membw" and row["setting"] == 1.0)):
                assert row["norm_response_time"] == pytest.approx(1.0)

    def test_paper_anchor_4ways(self, result):
        rows = [row for row in result.rows
                if row["knob"] == "llc_ways" and row["setting"] == 4]
        assert 0 < max(row["norm_response_time"] for row in rows) - 1 < 0.1


class TestFig07:
    def test_windows_monotone(self):
        result = fig07_trace_cdf.run(quick=True)
        means = [row["mean"] for row in result.rows]
        assert means == sorted(means)
        assert all(row["max"] >= row["p99"] >= row["p50"]
                   for row in result.rows)


class TestOverheads:
    @pytest.fixture(scope="class")
    def result(self):
        return section8d_overheads.run(quick=True)

    def test_milp_time_order_of_paper(self, result):
        values = [row["value"] for row in result.rows
                  if row["component"] == "milp_solver"]
        assert all(v < 100.0 for v in values)  # paper: ~10ms

    def test_milp_time_grows_with_problem_size(self, result):
        small = result.row_for(component="milp_solver",
                               config="2fns x 2levels")["value"]
        big = result.row_for(component="milp_solver",
                             config="20fns x 10levels")["value"]
        assert big > small

    def test_ewma_mape_near_paper(self, result):
        t_run = result.row_for(component="ewma_mape", config="t_run")
        assert t_run["value"] < 5.0

    def test_mlp_latency_sub_millisecond(self, result):
        row = result.row_for(component="mlp_predict")
        assert row["value"] < 1000.0


class TestHeterogeneous:
    def test_accuracy_reaches_paper_anchor(self):
        result = heterogeneous.run(quick=True)
        assert all(row["accuracy_pct"] > 90.0 for row in result.rows)
        # The fitted slope recovers each machine's speed factor.
        broadwell = result.row_for(machine="Broadwell")
        assert broadwell["slope"] == pytest.approx(0.92, abs=0.05)
