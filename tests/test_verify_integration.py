"""Armed-verifier determinism: monitoring must not change the run.

The verifier only reads simulation state (no RNG draws, no platform
mutation, only its own sweep timeout), so a run with every invariant
monitor armed must reproduce the stored seed fingerprints
byte-for-byte — the same contract ``repro.guard`` and ``repro.obs``
pin. And on the correct tree, those reference runs (including the
chaos one with live faults and retries) must report zero violations.
"""

import pytest

from repro import verify
from repro.verify import Verifier

from tests.fingerprints import (
    cluster_fingerprint,
    load_reference,
    reference_runs,
)


@pytest.fixture
def installed_verifier():
    verifier = verify.install(Verifier())
    try:
        yield verifier
    finally:
        verify.uninstall()


class TestArmedRunsMatchSeed:
    @pytest.mark.parametrize("label", ["baseline", "ecofaas",
                                       "ecofaas_chaos"])
    def test_fingerprint_identical_with_monitors_armed(
            self, label, installed_verifier):
        factory = dict(reference_runs())[label]
        assert cluster_fingerprint(factory()) == load_reference()[label], (
            f"arming the verifier changed the {label!r} run — monitors"
            f" must be read-only")

    def test_reference_runs_report_zero_violations(self,
                                                   installed_verifier):
        for label, factory in reference_runs():
            factory()
        assert installed_verifier.violations == [], (
            "reference runs violated invariants: "
            f"{installed_verifier.summary()}")
        assert installed_verifier.runs == len(reference_runs())

    def test_verifier_stamps_run_labels(self, installed_verifier):
        factory = dict(reference_runs())["ecofaas"]
        factory()
        installed_verifier.record("synthetic", "stamp check")
        assert installed_verifier.violations[-1].run == "EcoFaaS"


class TestUninstalledIsUntouched:
    def test_no_active_verifier_between_tests(self):
        assert verify.active() is None


class TestRepoAllVerifyExitCodes:
    """'repro all --verify' must FAIL the panel and exit non-zero when
    any armed monitor reports a violation (and pass clean otherwise)."""

    @pytest.fixture
    def stub_experiments(self, monkeypatch):
        import sys
        import types

        from repro import cli, verify as verify_mod
        from repro.experiments.common import ExperimentResult

        def make(name, violate):
            module = types.ModuleType(name)

            def run(quick=True, seed=0):
                result = ExperimentResult(name, "stub")
                result.add(value=1)
                verifier = verify_mod.active()
                if violate and verifier is not None:
                    verifier.record("breaker-transition",
                                    "synthetic violation for the exit"
                                    " code test")
                return result

            module.run = run
            monkeypatch.setitem(sys.modules, name, module)
            return name

        def install(mapping):
            monkeypatch.setattr(cli, "EXPERIMENTS", {
                key: make(f"tests._stub_{key}", violate)
                for key, violate in mapping.items()})
            return cli

        return install

    def test_all_verify_clean_exits_zero(self, stub_experiments, capsys):
        cli = stub_experiments({"ok": False, "fine": False})
        assert cli.main(["all", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "[verify: 0 run(s) monitored, 0 violation(s)]" in out

    def test_all_verify_violation_fails_panel(self, stub_experiments,
                                              capsys):
        cli = stub_experiments({"ok": False, "bad": True})
        assert cli.main(["all", "--verify"]) == 1
        captured = capsys.readouterr()
        assert "invariants: breaker-transition x1" in captured.out
        assert "FAIL" in captured.out
        assert "bad" in captured.out

    def test_single_experiment_violation_exits_nonzero(
            self, stub_experiments, capsys):
        cli = stub_experiments({"bad": True})
        assert cli.main(["bad", "--verify"]) == 1
        captured = capsys.readouterr()
        assert "breaker-transition" in captured.err
        # Without --verify the same experiment passes untouched.
        assert cli.main(["bad"]) == 0
