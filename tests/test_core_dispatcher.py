"""Focused tests for the Energy-Aware Dispatcher and the EcoFaaS node."""

import numpy as np
import pytest

from repro.core.config import EcoFaaSConfig
from repro.core.node import EcoFaaSNode
from repro.core.profiles import ProfileStore
from repro.hardware.server import Server
from repro.platform.metrics import MetricsCollector
from repro.sim import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.functionbench import CNN_SERV, WEB_SERV


def make_node(config=None, n_cores=4):
    # elastic=False: the refresh loop is an infinite process, and these
    # unit tests drive env.run() without an `until` bound.
    env = Environment()
    server = Server(env, n_cores=n_cores)
    config = config or EcoFaaSConfig(prewarm=False, elastic=False)
    store = ProfileStore(server.scale, server.power, config)
    node = EcoFaaSNode(env, server, MetricsCollector(), RngRegistry(0),
                       config, store)
    return env, node, store


def warm_profile(store, fn_model, freq=3.0, t_run=None, t_block=None,
                 energy=1.0, n=10):
    """Pre-populate a function's profile with consistent observations."""
    profile = store.profile(fn_model)
    t_run = t_run if t_run is not None else fn_model.run_seconds(freq)
    t_block = t_block if t_block is not None else fn_model.block_seconds
    for _ in range(n):
        profile.observe(freq, t_run, t_block, energy)
    return profile


def submit(env, node, fn_model, deadline_offset=None, seniority=None):
    spec = fn_model.sample_invocation(np.random.default_rng(0))
    deadline = (env.now + deadline_offset
                if deadline_offset is not None else None)
    return node.submit(fn_model, spec, deadline, fn_model.name,
                       seniority_time_s=seniority)


class TestDispatcherColdPaths:
    def test_no_profile_runs_at_max(self):
        env, node, _ = make_node()
        job = submit(env, node, WEB_SERV, deadline_offset=10.0)
        assert job.chosen_freq_ghz == 3.0
        env.run()
        assert job.finished

    def test_cold_start_runs_at_max_even_with_profile(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        job = submit(env, node, WEB_SERV, deadline_offset=10.0)
        assert job.cold_start
        assert job.chosen_freq_ghz == 3.0

    def test_no_deadline_runs_at_max(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        # Warm the container first.
        submit(env, node, WEB_SERV, deadline_offset=10.0)
        env.run()
        job = submit(env, node, WEB_SERV, deadline_offset=None)
        assert job.chosen_freq_ghz == 3.0


class TestDispatcherProfiledPath:
    def _warm_container(self, env, node, fn_model):
        job = submit(env, node, fn_model, deadline_offset=100.0)
        env.run()
        return job

    def test_loose_deadline_picks_lowest_available_pool(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        self._warm_container(env, node, WEB_SERV)
        # Force a low-frequency pool into existence.
        node._pools.append(node._make_pool(1.2, []))
        node._pools[-1].add_core(node._pools[0].release_idle_core())
        job = submit(env, node, WEB_SERV, deadline_offset=100.0)
        assert job.chosen_freq_ghz == 1.2
        env.run()
        assert job.finished and job.met_deadline

    def test_tight_deadline_picks_fast_pool(self):
        env, node, store = make_node()
        warm_profile(store, CNN_SERV)
        self._warm_container(env, node, CNN_SERV)
        node._pools.append(node._make_pool(1.2, []))
        node._pools[-1].add_core(node._pools[0].release_idle_core())
        # Deadline only achievable at high frequency.
        tight = CNN_SERV.service_seconds(3.0) * 1.3
        job = submit(env, node, CNN_SERV, deadline_offset=tight)
        assert job.chosen_freq_ghz > 1.2

    def test_wanted_lower_flag_set_when_no_low_pool(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        self._warm_container(env, node, WEB_SERV)
        # Only the max pool exists; a leisurely WebServ wants lower.
        job = submit(env, node, WEB_SERV, deadline_offset=100.0)
        assert job.wanted_lower_freq

    def test_hopeless_deadline_boosted_without_pool_raise(self):
        env, node, store = make_node()
        warm_profile(store, CNN_SERV)
        self._warm_container(env, node, CNN_SERV)
        low_pool = node._make_pool(1.2, [node._pools[0].release_idle_core()])
        node._pools.append(low_pool)
        job = submit(env, node, CNN_SERV, deadline_offset=1e-6)
        assert job.boosted
        assert job.chosen_freq_ghz == 3.0
        # The low pool kept its frequency (no collateral damage).
        assert low_pool.frequency_ghz == 1.2

    def test_correction_raises_frequency_after_long_wait(self):
        env, node, store = make_node()
        warm_profile(store, CNN_SERV)
        self._warm_container(env, node, CNN_SERV)
        job = submit(env, node, CNN_SERV,
                     deadline_offset=CNN_SERV.service_seconds(1.2) * 2)
        assert job.dispatch_correction is not None
        # If dispatch happened immediately, a low level suffices ...
        relaxed = job.dispatch_correction(1.2)
        assert relaxed == 1.2
        # ... but after the budget is nearly gone, the correction boosts.
        env.run(until=env.now + CNN_SERV.service_seconds(1.2) * 1.9)
        if not job.finished:
            boosted = job.dispatch_correction(1.2)
            assert boosted > 1.2

    def test_completion_feeds_profile_and_queue_ewmas(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        self._warm_container(env, node, WEB_SERV)
        before = store.profile(WEB_SERV).observations
        job = submit(env, node, WEB_SERV, deadline_offset=10.0)
        env.run()
        assert store.profile(WEB_SERV).observations == before + 1
        assert store.queue_ewma(WEB_SERV.name).initialized
        assert store.level_queue_ewma(job.chosen_freq_ghz).initialized

    def test_cold_start_measurements_excluded_from_profile(self):
        env, node, store = make_node()
        warm_profile(store, WEB_SERV)
        before = store.profile(WEB_SERV).observations
        job = submit(env, node, WEB_SERV, deadline_offset=10.0)  # cold
        env.run()
        assert job.cold_start
        assert store.profile(WEB_SERV).observations == before


class TestNodeMechanics:
    def test_note_demand_accumulates(self):
        env, node, _ = make_node()
        node.note_demand(1.2, 0.5)
        node.note_demand(1.2, 0.25)
        assert node._demand[1.2] == pytest.approx(0.75)

    def test_refresh_creates_pool_for_demanded_level(self):
        env, node, _ = make_node()
        node.note_demand(1.2, 10.0)
        node.refresh()
        freqs = {p.frequency_ghz for p in node._pools}
        assert 1.2 in freqs

    def test_refresh_caps_pool_count(self):
        config = EcoFaaSConfig(prewarm=False, elastic=False, max_pools=2)
        env, node, _ = make_node(config=config, n_cores=8)
        for level in (1.2, 1.5, 1.8, 2.1, 2.4, 3.0):
            node.note_demand(level, 1.0)
        node.refresh()
        assert node.pool_count() <= 2

    def test_refresh_conserves_cores(self):
        env, node, _ = make_node(n_cores=8)
        for level in (1.2, 2.1, 3.0):
            node.note_demand(level, 3.0)
        node.refresh()
        env.run(until=1.0)
        node.refresh()
        total = (sum(p.n_cores for p in node._pools)
                 + sum(p.n_cores for p in node._retiring)
                 + len(node._free))
        assert total == 8

    def test_active_pools_never_empty(self):
        env, node, _ = make_node()
        assert node.active_pools()
        node.refresh()
        assert node.active_pools()

    def test_raise_pool_frequency_only_raises(self):
        env, node, _ = make_node()
        pool = node._pools[0]
        node.raise_pool_frequency(pool, 1.2)  # below current: no-op
        assert pool.frequency_ghz == 3.0

    def test_mixed_signals_split_demand_both_ways(self):
        """A single hot pool with both boost and wanted-lower pressure
        must differentiate into multiple levels (not just promote)."""
        env, node, _ = make_node(n_cores=8)
        pool = node._pools[0]
        node.note_demand(3.0, 10.0)
        pool.stats.served = 10
        pool.stats.boosted = 5          # > 10% of served
        pool.stats.wanted_lower_freq = 5  # > 25% of served
        node.refresh()
        freqs = {p.frequency_ghz for p in node._pools}
        assert 2.7 in freqs  # demotion happened despite boost pressure

    def test_idle_refresh_keeps_current_shape(self):
        env, node, _ = make_node()
        node.refresh()  # no demand at all
        assert node.pool_count() == 1
        assert node.active_pools()[0].frequency_ghz == 3.0


class TestPrewarm:
    def test_prewarm_warms_container_off_critical_path(self):
        env, node, _ = make_node(config=EcoFaaSConfig(prewarm=True, elastic=False))
        assert node.containers.state(WEB_SERV.name) == "cold"
        node.prewarm(WEB_SERV, budget_s=5.0, benchmark="WebServ")
        assert node.containers.state(WEB_SERV.name) == "starting"
        env.run()
        assert node.containers.is_warm(WEB_SERV.name)

    def test_prewarm_updates_cold_start_profile(self):
        env, node, store = make_node(config=EcoFaaSConfig(prewarm=True, elastic=False))
        node.prewarm(WEB_SERV, budget_s=5.0, benchmark="WebServ")
        env.run()
        assert store.cold_ewma(WEB_SERV.name).initialized

    def test_prewarm_noop_when_already_warm(self):
        env, node, _ = make_node(config=EcoFaaSConfig(prewarm=True, elastic=False))
        node.prewarm(WEB_SERV, budget_s=5.0, benchmark="WebServ")
        env.run()
        cold_starts_before = node.containers.cold_starts
        node.prewarm(WEB_SERV, budget_s=5.0, benchmark="WebServ")
        assert node.containers.cold_starts == cold_starts_before

    def test_prewarm_jobs_do_not_pollute_metrics(self):
        env, node, _ = make_node(config=EcoFaaSConfig(prewarm=True, elastic=False))
        node.prewarm(WEB_SERV, budget_s=5.0, benchmark="WebServ")
        env.run()
        assert node.metrics.function_records == []

    def test_prewarm_uses_profiled_cold_duration_for_pool_choice(self):
        env, node, store = make_node(config=EcoFaaSConfig(prewarm=True, elastic=False))
        store.cold_ewma(WEB_SERV.name).update(WEB_SERV.cold_start_seconds)
        node._pools.append(node._make_pool(1.2, []))
        node._pools[-1].add_core(node._pools[0].release_idle_core())
        pool = node._prewarm_pool(WEB_SERV.name, budget_s=100.0)
        assert pool.frequency_ghz == 1.2  # plenty of budget: lowest pool
        pool = node._prewarm_pool(WEB_SERV.name, budget_s=1e-6)
        assert pool.frequency_ghz == 3.0  # impossible budget: fastest
