"""``repro bench``: benchmark telemetry document and regression diffs."""

import copy
import json

import pytest

import repro.obs.bench as bench
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.platform.cluster import ClusterConfig


def tiny_panel(quick):
    """A one-experiment panel so tests stay fast."""
    def runner():
        trace = make_load_trace("low", 1, 3.0, seed=3)
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                           ClusterConfig(n_servers=1, seed=3))
    return [("tiny_low", runner)]


@pytest.fixture()
def tiny_bench(monkeypatch):
    monkeypatch.setattr(bench, "_scenarios", tiny_panel)


def test_bench_document_shape(tiny_bench, tmp_path):
    document = bench.run_bench(quick=True)
    assert document["quick"] is True
    assert document["date"]
    entry = document["experiments"]["tiny_low"]
    assert entry["wall_s"] >= 0.0
    assert entry["energy_j"] > 0.0
    assert entry["completed"] > 0
    assert 0.0 <= entry["slo_miss_rate"] <= 1.0
    assert entry["p99_latency_s"] is None or entry["p99_latency_s"] > 0
    # peak RSS is optional (non-POSIX), but on Linux it is present.
    assert entry["peak_rss_kb"] is None or entry["peak_rss_kb"] > 0

    path = tmp_path / bench.default_path(document)
    assert path.name.startswith("BENCH_")
    bench.write_bench(document, str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(document))


def test_bench_sim_metrics_are_seed_deterministic(tiny_bench):
    first = bench.run_bench(quick=True)["experiments"]["tiny_low"]
    second = bench.run_bench(quick=True)["experiments"]["tiny_low"]
    for key in bench.SIM_METRICS:
        assert first[key] == second[key], key


def test_compare_clean_when_identical(tiny_bench):
    document = bench.run_bench(quick=True)
    assert bench.compare(document, copy.deepcopy(document)) == []


def test_compare_flags_injected_sim_regression(tiny_bench):
    old = bench.run_bench(quick=True)
    new = copy.deepcopy(old)
    new["experiments"]["tiny_low"]["energy_j"] *= 1.01
    findings = bench.compare(old, new)
    assert len(findings) == 1
    assert "energy_j drifted" in findings[0]
    assert "behavior changed" in findings[0]


def test_run_bench_fingerprints_attaches_chains(tiny_bench):
    import repro.obs as obs
    document = bench.run_bench(quick=True, profile=False,
                               fingerprints=True)
    entry = document["experiments"]["tiny_low"]
    section = entry["fingerprint"]
    assert set(section) == {"final", "n_epochs", "chains"}
    for chain in section["chains"].values():
        assert len(chain) == section["n_epochs"]
    assert {"metrics", "instants"} <= set(section["chains"])
    assert obs.active_tracer() is None  # uninstalled after the panel


def test_run_bench_fingerprints_off_adds_nothing(tiny_bench):
    document = bench.run_bench(quick=True, profile=False)
    assert "fingerprint" not in document["experiments"]["tiny_low"]


def test_compare_points_drift_at_first_diverging_epoch(tiny_bench):
    old = bench.run_bench(quick=True, profile=False, fingerprints=True)
    new = copy.deepcopy(old)
    entry = new["experiments"]["tiny_low"]
    entry["energy_j"] *= 1.01
    chains = entry["fingerprint"]["chains"]
    for epoch in range(1, len(chains["metrics"])):
        chains["metrics"][epoch] = "0" * 64
    findings = bench.compare(old, new)
    assert any("energy_j drifted" in f for f in findings)
    assert any("first divergence at epoch 1 in subsystem 'metrics'" in f
               for f in findings)


def test_compare_drift_without_chains_has_no_divergence_pointer(
        tiny_bench):
    old = bench.run_bench(quick=True, profile=False)
    new = copy.deepcopy(old)
    new["experiments"]["tiny_low"]["energy_j"] *= 1.01
    findings = bench.compare(old, new)
    assert not any("first divergence" in f for f in findings)


def test_compare_flags_wall_time_regression():
    old = {"quick": True, "experiments": {"x": {"wall_s": 2.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 3.5}}}
    findings = bench.compare(old, new)
    assert any("wall-time regression" in f for f in findings)
    # Below the absolute floor, relative jumps are scheduler noise.
    old_small = {"quick": True, "experiments": {"x": {"wall_s": 0.1}}}
    new_small = {"quick": True, "experiments": {"x": {"wall_s": 0.3}}}
    assert bench.compare(old_small, new_small) == []


def test_compare_flags_missing_experiment():
    old = {"quick": True, "experiments": {"x": {"wall_s": 1.0},
                                          "y": {"wall_s": 1.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 1.0}}}
    findings = bench.compare(old, new)
    assert findings == ["y: experiment missing from new run"]


def test_compare_skips_metrics_across_panel_sizes():
    old = {"quick": False, "experiments": {"x": {"wall_s": 1.0,
                                                 "energy_j": 10.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 1.0,
                                                "energy_j": 99.0}}}
    findings = bench.compare(old, new)
    assert len(findings) == 1
    assert "panel size mismatch" in findings[0]


def test_compare_skips_wall_time_across_panel_sizes():
    """A full panel is legitimately slower than a quick one: no wall
    regression may be reported across a quick mismatch."""
    old = {"quick": True, "experiments": {"x": {"wall_s": 2.0}}}
    new = {"quick": False, "experiments": {"x": {"wall_s": 60.0}}}
    findings = bench.compare(old, new)
    assert len(findings) == 1
    assert "panel size mismatch" in findings[0]
    assert not any("wall-time regression" in f for f in findings)
    # Experiment presence is still checked across sizes.
    gone = {"quick": False, "experiments": {}}
    findings = bench.compare(old, gone)
    assert any("missing from new run" in f for f in findings)


def test_cli_bench_compare_exits_nonzero_on_regression(
        tiny_bench, tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    assert out.exists()

    # Inject a regression into the stored baseline, then compare.
    old = json.loads(out.read_text())
    old["experiments"]["tiny_low"]["energy_j"] *= 0.5
    baseline = tmp_path / "old.json"
    baseline.write_text(json.dumps(old))
    assert main(["bench", "--quick", "--out", str(out),
                 "--compare", str(baseline)]) == 1
    assert "regression finding" in capsys.readouterr().out

    # A same-seed rerun against an honest baseline is clean. (The new
    # document is written to --out before --compare is read, so
    # comparing a run against its own output must find nothing.)
    assert main(["bench", "--quick", "--out", str(out),
                 "--compare", str(out)]) == 0


def test_full_panel_names_are_stable():
    names = [name for name, _ in bench._scenarios(quick=True)]
    assert names == ["baseline_low", "ecofaas_low", "ecofaas_chaos",
                     "ecofaas_overload", "ecofaas_partition"]


def test_rss_growth_is_against_running_high_water_mark(
        tiny_bench, monkeypatch):
    """ru_maxrss only ever rises; growth must be charged against the
    running max, never go negative, and carry the panel order."""
    samples = iter([1000, 5000, 5000])  # before, after exp 0, after exp 1

    def two_panel(quick):
        (name, runner) = tiny_panel(quick)[0]
        return [("first", runner), ("second", runner)]

    monkeypatch.setattr(bench, "_scenarios", two_panel)
    monkeypatch.setattr(bench, "_peak_rss_kb", lambda: next(samples))
    document = bench.run_bench(quick=True, profile=False)
    first = document["experiments"]["first"]
    second = document["experiments"]["second"]
    assert first["panel_index"] == 0
    assert second["panel_index"] == 1
    assert first["rss_grew_kb"] == 4000   # claimed the high-water growth
    assert second["rss_grew_kb"] == 0     # ran under the existing peak
    assert "panel order" in document["rss_note"]


def test_bench_profile_section(tiny_bench):
    document = bench.run_bench(quick=True)
    section = document["experiments"]["tiny_low"]["profile"]
    assert section["events_per_s"] > 0
    assert section["wall_conservation"] > 0.5
    assert section["top_components"]
    assert all({"component", "self_s", "share"} <= set(row)
               for row in section["top_components"])
    # profile=False omits the section and leaves sim metrics unchanged.
    plain = bench.run_bench(quick=True, profile=False)
    assert "profile" not in plain["experiments"]["tiny_low"]
    for key in bench.SIM_METRICS:
        assert plain["experiments"]["tiny_low"][key] == \
            document["experiments"]["tiny_low"][key], key


def test_bench_profile_leaves_no_active_profiler(tiny_bench):
    from repro.obs import prof
    bench.run_bench(quick=True)
    assert prof.active() is None


# ---------------------------------------------------------------------------
# repro bench --history
# ---------------------------------------------------------------------------
def _write_panel(path, date, quick, wall_s, energy_j):
    path.write_text(json.dumps({
        "date": date, "quick": quick,
        "experiments": {"tiny_low": {"wall_s": wall_s,
                                     "energy_j": energy_j}},
    }))


def test_history_orders_files_and_groups_by_experiment(tmp_path):
    _write_panel(tmp_path / "BENCH_2026-08-02.json", "2026-08-02",
                 True, 1.0, 10.0)
    _write_panel(tmp_path / "BENCH_2026-08-01.json", "2026-08-01",
                 True, 2.0, 11.0)
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    (tmp_path / "OTHER.json").write_text("{}")
    document = bench.history(str(tmp_path))
    assert document["files"] == ["BENCH_2026-08-01.json",
                                 "BENCH_2026-08-02.json"]
    trajectory = document["experiments"]["tiny_low"]
    assert [point["wall_s"] for point in trajectory] == [2.0, 1.0]
    assert [point["energy_j"] for point in trajectory] == [11.0, 10.0]
    assert len(document["skipped"]) == 1
    text = bench.format_history(document)
    assert "tiny_low" in text
    assert "BENCH_2026-08-01.json" in text
    assert "skipped BENCH_broken.json" in text


def test_history_empty_directory(tmp_path):
    document = bench.history(str(tmp_path))
    assert document["files"] == []
    assert "no BENCH_*.json" in bench.format_history(document)


def test_cli_bench_history(tmp_path, capsys):
    from repro.cli import main

    _write_panel(tmp_path / "BENCH_2026-08-01.json", "2026-08-01",
                 True, 2.0, 11.0)
    assert main(["bench", "--history", str(tmp_path)]) == 0
    assert "bench history" in capsys.readouterr().out
    assert main(["bench", "--history", str(tmp_path),
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["files"] == ["BENCH_2026-08-01.json"]
    # Empty directory: nothing to show, non-zero exit.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["bench", "--history", str(empty)]) == 1


# ---------------------------------------------------------------------------
# repro profile CLI
# ---------------------------------------------------------------------------
@pytest.fixture()
def tiny_profile(monkeypatch):
    def scenario(scale, quick):
        trace = make_load_trace("low", 1, 3.0 * scale, seed=3)
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                           ClusterConfig(n_servers=1, seed=3))
    monkeypatch.setattr(bench, "_profile_scenario", scenario)


def test_cli_profile_text_and_artifacts(tiny_profile, tmp_path, capsys,
                                        monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "profile.json"
    assert main(["profile", "--scale", "1,2", "--quick",
                 "--out", str(out),
                 "--collapsed", str(tmp_path / "prof")]) == 0
    text = capsys.readouterr().out
    assert "scaling curve" in text
    assert "conservation" in text
    document = json.loads(out.read_text())
    assert [entry["scale"] for entry in document["scales"]] == [1, 2]
    for scale in (1, 2):
        collapsed = tmp_path / f"prof.scale{scale}.collapsed"
        assert collapsed.exists()
        for line in collapsed.read_text().strip().splitlines():
            path, usec = line.rsplit(" ", 1)
            assert int(usec) > 0


def test_cli_profile_json_format(tiny_profile, tmp_path, capsys,
                                 monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["profile", "--scale", "1", "--quick",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["scales"][0]["wall_conservation"] >= 0.9


def test_cli_profile_min_conservation_gate(tiny_profile, tmp_path,
                                           monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    # An impossible bar must trip the gate (conservation can't beat 2.0).
    assert main(["profile", "--scale", "1", "--quick",
                 "--min-conservation", "2.0"]) == 1
    assert "wall conservation" in capsys.readouterr().err


def test_cli_profile_rejects_bad_scale(capsys):
    from repro.cli import main

    assert main(["profile", "--scale", "nope"]) == 2
    assert main(["profile", "--scale", "0"]) == 2
    assert "bad --scale" in capsys.readouterr().err


def test_cli_profile_cprofile_dump(tiny_profile, tmp_path, monkeypatch):
    import pstats

    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    dump = tmp_path / "prof.pstats"
    assert main(["profile", "--scale", "1", "--quick",
                 "--cprofile", str(dump)]) == 0
    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0
