"""``repro bench``: benchmark telemetry document and regression diffs."""

import copy
import json

import pytest

import repro.obs.bench as bench
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.platform.cluster import ClusterConfig


def tiny_panel(quick):
    """A one-experiment panel so tests stay fast."""
    def runner():
        trace = make_load_trace("low", 1, 3.0, seed=3)
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                           ClusterConfig(n_servers=1, seed=3))
    return [("tiny_low", runner)]


@pytest.fixture()
def tiny_bench(monkeypatch):
    monkeypatch.setattr(bench, "_scenarios", tiny_panel)


def test_bench_document_shape(tiny_bench, tmp_path):
    document = bench.run_bench(quick=True)
    assert document["quick"] is True
    assert document["date"]
    entry = document["experiments"]["tiny_low"]
    assert entry["wall_s"] >= 0.0
    assert entry["energy_j"] > 0.0
    assert entry["completed"] > 0
    assert 0.0 <= entry["slo_miss_rate"] <= 1.0
    assert entry["p99_latency_s"] is None or entry["p99_latency_s"] > 0
    # peak RSS is optional (non-POSIX), but on Linux it is present.
    assert entry["peak_rss_kb"] is None or entry["peak_rss_kb"] > 0

    path = tmp_path / bench.default_path(document)
    assert path.name.startswith("BENCH_")
    bench.write_bench(document, str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(document))


def test_bench_sim_metrics_are_seed_deterministic(tiny_bench):
    first = bench.run_bench(quick=True)["experiments"]["tiny_low"]
    second = bench.run_bench(quick=True)["experiments"]["tiny_low"]
    for key in bench.SIM_METRICS:
        assert first[key] == second[key], key


def test_compare_clean_when_identical(tiny_bench):
    document = bench.run_bench(quick=True)
    assert bench.compare(document, copy.deepcopy(document)) == []


def test_compare_flags_injected_sim_regression(tiny_bench):
    old = bench.run_bench(quick=True)
    new = copy.deepcopy(old)
    new["experiments"]["tiny_low"]["energy_j"] *= 1.01
    findings = bench.compare(old, new)
    assert len(findings) == 1
    assert "energy_j drifted" in findings[0]
    assert "behavior changed" in findings[0]


def test_compare_flags_wall_time_regression():
    old = {"quick": True, "experiments": {"x": {"wall_s": 2.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 3.5}}}
    findings = bench.compare(old, new)
    assert any("wall-time regression" in f for f in findings)
    # Below the absolute floor, relative jumps are scheduler noise.
    old_small = {"quick": True, "experiments": {"x": {"wall_s": 0.1}}}
    new_small = {"quick": True, "experiments": {"x": {"wall_s": 0.3}}}
    assert bench.compare(old_small, new_small) == []


def test_compare_flags_missing_experiment():
    old = {"quick": True, "experiments": {"x": {"wall_s": 1.0},
                                          "y": {"wall_s": 1.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 1.0}}}
    findings = bench.compare(old, new)
    assert findings == ["y: experiment missing from new run"]


def test_compare_skips_metrics_across_panel_sizes():
    old = {"quick": False, "experiments": {"x": {"wall_s": 1.0,
                                                 "energy_j": 10.0}}}
    new = {"quick": True, "experiments": {"x": {"wall_s": 1.0,
                                                "energy_j": 99.0}}}
    findings = bench.compare(old, new)
    assert len(findings) == 1
    assert "panel size mismatch" in findings[0]


def test_cli_bench_compare_exits_nonzero_on_regression(
        tiny_bench, tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    assert out.exists()

    # Inject a regression into the stored baseline, then compare.
    old = json.loads(out.read_text())
    old["experiments"]["tiny_low"]["energy_j"] *= 0.5
    baseline = tmp_path / "old.json"
    baseline.write_text(json.dumps(old))
    assert main(["bench", "--quick", "--out", str(out),
                 "--compare", str(baseline)]) == 1
    assert "regression finding" in capsys.readouterr().out

    # A same-seed rerun against an honest baseline is clean. (The new
    # document is written to --out before --compare is read, so
    # comparing a run against its own output must find nothing.)
    assert main(["bench", "--quick", "--out", str(out),
                 "--compare", str(out)]) == 0


def test_full_panel_names_are_stable():
    names = [name for name, _ in bench._scenarios(quick=True)]
    assert names == ["baseline_low", "ecofaas_low", "ecofaas_chaos",
                     "ecofaas_overload", "ecofaas_partition"]
