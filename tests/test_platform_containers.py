"""Tests for container lifecycle and metrics collection."""

import pytest

from repro.platform.containers import ContainerManager
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector, percentile
from repro.hardware.work import WorkUnit
from repro.sim import Environment
from repro.workloads.spec import InvocationSpec, RunSegment


class TestContainerManager:
    def test_initially_cold(self):
        env = Environment()
        mgr = ContainerManager(env)
        assert mgr.state("f") == "cold"
        assert not mgr.is_warm("f")

    def test_cold_start_cycle(self):
        env = Environment()
        mgr = ContainerManager(env)
        event = mgr.begin_cold_start("f")
        assert mgr.state("f") == "starting"
        assert mgr.ready_event("f") is event
        mgr.finish_cold_start("f")
        assert mgr.state("f") == "warm"
        assert event.triggered

    def test_keep_alive_expires(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=10.0)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        env.run(until=9.0)
        assert mgr.is_warm("f")
        env.run(until=10.5)
        assert mgr.state("f") == "cold"

    def test_touch_extends_keep_alive(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=10.0)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        env.run(until=8.0)
        mgr.touch("f")
        env.run(until=15.0)
        assert mgr.is_warm("f")

    def test_touch_cold_container_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.touch("f")

    def test_double_cold_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        with pytest.raises(RuntimeError):
            mgr.begin_cold_start("f")

    def test_finish_without_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.finish_cold_start("f")

    def test_ready_event_without_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.ready_event("f")

    def test_statistics(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        mgr.record_warm_hit()
        assert mgr.cold_starts == 1
        assert mgr.warm_hits == 1

    def test_warm_functions_listing(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=5.0)
        mgr.begin_cold_start("a")
        mgr.finish_cold_start("a")
        mgr.begin_cold_start("b")
        assert mgr.warm_functions() == ["a"]

    def test_invalid_keep_alive(self):
        with pytest.raises(ValueError):
            ContainerManager(Environment(), keep_alive_s=0.0)


def finished_job(env, benchmark="B", latency=1.0, energy=2.0,
                 freq=3.0, deadline=None):
    spec = InvocationSpec("fn", [RunSegment(WorkUnit(0.0))])
    job = Job(env, spec, benchmark, arrival_s=env.now, deadline_s=deadline)
    job.chosen_freq_ghz = freq
    job.record_run(latency, energy)
    job.freq_run_seconds[freq] = latency
    work = job.current_work()
    work.consume(3.0, work.duration(3.0))
    job.advance()
    env.run(until=env.now + latency)
    job.complete()
    return job


class TestMetricsCollector:
    def test_percentile_basics(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_record_job_snapshot(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env))
        record = collector.function_records[0]
        assert record.benchmark == "B"
        assert record.energy_j == pytest.approx(2.0)
        assert record.latency_s == pytest.approx(1.0)

    def test_workflow_rollups(self):
        collector = MetricsCollector()
        for latency in (1.0, 2.0, 3.0, 10.0):
            collector.record_workflow("B", 0.0, latency, slo_s=5.0)
        assert collector.latency_avg("B") == pytest.approx(4.0)
        assert collector.slo_violation_rate("B") == pytest.approx(0.25)
        assert collector.completed_workflows("B") == 4
        assert collector.latency_p99("B") == pytest.approx(
            percentile([1.0, 2.0, 3.0, 10.0], 99))

    def test_rollup_of_missing_benchmark_raises(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.latency_avg("ghost")
        with pytest.raises(ValueError):
            collector.slo_violation_rate("ghost")
        with pytest.raises(ValueError):
            collector.deadline_miss_rate()

    def test_function_energy_by_benchmark(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, benchmark="A", energy=1.0))
        collector.record_job(finished_job(env, benchmark="B", energy=2.0))
        assert collector.function_energy_j("A") == pytest.approx(1.0)
        assert collector.function_energy_j() == pytest.approx(3.0)

    def test_frequency_histograms(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, freq=3.0, latency=1.0))
        collector.record_job(finished_job(env, freq=1.2, latency=2.0))
        collector.record_job(finished_job(env, freq=1.2, latency=2.0))
        assert collector.frequency_histogram() == {3.0: 1, 1.2: 2}
        times = collector.frequency_time_histogram()
        assert times[1.2] == pytest.approx(4.0)

    def test_mean_breakdown(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, latency=2.0))
        breakdown = collector.mean_breakdown()
        assert set(breakdown) == {"t_queue", "t_run", "t_block"}
        assert breakdown["t_run"] == pytest.approx(2.0)

    def test_benchmarks_listing(self):
        collector = MetricsCollector()
        collector.record_workflow("Z", 0.0, 1.0, 5.0)
        collector.record_workflow("A", 0.0, 1.0, 5.0)
        assert collector.benchmarks() == ["A", "Z"]
