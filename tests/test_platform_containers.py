"""Tests for container lifecycle and metrics collection."""

import math

import pytest

from repro.platform.containers import ContainerManager
from repro.platform.job import Job
from repro.platform.metrics import MetricsCollector, percentile
from repro.hardware.work import WorkUnit
from repro.sim import Environment
from repro.workloads.spec import InvocationSpec, RunSegment


class TestContainerManager:
    def test_initially_cold(self):
        env = Environment()
        mgr = ContainerManager(env)
        assert mgr.state("f") == "cold"
        assert not mgr.is_warm("f")

    def test_cold_start_cycle(self):
        env = Environment()
        mgr = ContainerManager(env)
        event = mgr.begin_cold_start("f")
        assert mgr.state("f") == "starting"
        assert mgr.ready_event("f") is event
        mgr.finish_cold_start("f")
        assert mgr.state("f") == "warm"
        assert event.triggered

    def test_keep_alive_expires(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=10.0)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        env.run(until=9.0)
        assert mgr.is_warm("f")
        env.run(until=10.5)
        assert mgr.state("f") == "cold"

    def test_touch_extends_keep_alive(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=10.0)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        env.run(until=8.0)
        mgr.touch("f")
        env.run(until=15.0)
        assert mgr.is_warm("f")

    def test_touch_cold_container_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.touch("f")

    def test_double_cold_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        with pytest.raises(RuntimeError):
            mgr.begin_cold_start("f")

    def test_finish_without_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.finish_cold_start("f")

    def test_ready_event_without_start_raises(self):
        env = Environment()
        mgr = ContainerManager(env)
        with pytest.raises(RuntimeError):
            mgr.ready_event("f")

    def test_statistics(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        mgr.record_warm_hit()
        assert mgr.cold_starts == 1
        assert mgr.warm_hits == 1

    def test_warm_functions_listing(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=5.0)
        mgr.begin_cold_start("a")
        mgr.finish_cold_start("a")
        mgr.begin_cold_start("b")
        assert mgr.warm_functions() == ["a"]

    def test_invalid_keep_alive(self):
        with pytest.raises(ValueError):
            ContainerManager(Environment(), keep_alive_s=0.0)


class TestContainerKill:
    """Fault-injection lifecycle: kills mid-cold-start and mid-keep-alive."""

    def test_kill_warm_container_forces_fresh_cold_start(self):
        env = Environment()
        mgr = ContainerManager(env, keep_alive_s=60.0)
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        assert mgr.is_warm("f")
        assert mgr.kill("f") == "warm"
        assert mgr.state("f") == "cold"
        assert mgr.kills == 1
        # The next arrival must be able to start a brand-new cold start.
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        assert mgr.is_warm("f")
        assert mgr.cold_starts == 2

    def test_kill_mid_cold_start_fires_event_with_none(self):
        env = Environment()
        mgr = ContainerManager(env)
        event = mgr.begin_cold_start("f")
        assert mgr.kill("f") == "starting"
        # Waiters are never left stuck: the ready event fires, with the
        # None payload that tells them to re-resolve.
        assert event.triggered
        assert event.value is None
        assert mgr.state("f") == "cold"

    def test_kill_mid_cold_start_swallows_stale_finish(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        mgr.kill("f")
        # A second boot begins while the doomed one is still executing.
        second = mgr.begin_cold_start("f")
        assert mgr.state("f") == "starting"
        # The doomed boot drains and reports in: swallowed, nothing warms.
        mgr.finish_cold_start("f")
        assert mgr.state("f") == "starting"
        assert not second.triggered
        # The legitimate boot completes normally.
        mgr.finish_cold_start("f")
        assert mgr.is_warm("f")
        assert second.value == "f"

    def test_kill_cold_container_is_noop(self):
        env = Environment()
        mgr = ContainerManager(env)
        assert mgr.kill("f") == "cold"
        assert mgr.kills == 0
        assert mgr.state("f") == "cold"

    def test_doomed_finish_without_new_boot(self):
        env = Environment()
        mgr = ContainerManager(env)
        mgr.begin_cold_start("f")
        mgr.kill("f")
        # The doomed boot's finish arrives with no replacement in flight.
        mgr.finish_cold_start("f")
        assert mgr.state("f") == "cold"
        # And a later real cycle still works.
        mgr.begin_cold_start("f")
        mgr.finish_cold_start("f")
        assert mgr.is_warm("f")


def finished_job(env, benchmark="B", latency=1.0, energy=2.0,
                 freq=3.0, deadline=None):
    spec = InvocationSpec("fn", [RunSegment(WorkUnit(0.0))])
    job = Job(env, spec, benchmark, arrival_s=env.now, deadline_s=deadline)
    job.chosen_freq_ghz = freq
    job.record_run(latency, energy)
    job.freq_run_seconds[freq] = latency
    work = job.current_work()
    work.consume(3.0, work.duration(3.0))
    job.advance()
    env.run(until=env.now + latency)
    job.complete()
    return job


class TestMetricsCollector:
    def test_percentile_basics(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
        # Empty data yields NaN ("no data"), not an exception.
        assert math.isnan(percentile([], 50))
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_record_job_snapshot(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env))
        record = collector.function_records[0]
        assert record.benchmark == "B"
        assert record.energy_j == pytest.approx(2.0)
        assert record.latency_s == pytest.approx(1.0)

    def test_workflow_rollups(self):
        collector = MetricsCollector()
        for latency in (1.0, 2.0, 3.0, 10.0):
            collector.record_workflow("B", 0.0, latency, slo_s=5.0)
        assert collector.latency_avg("B") == pytest.approx(4.0)
        assert collector.slo_violation_rate("B") == pytest.approx(0.25)
        assert collector.completed_workflows("B") == 4
        assert collector.latency_p99("B") == pytest.approx(
            percentile([1.0, 2.0, 3.0, 10.0], 99))

    def test_rollup_of_missing_benchmark_is_defined(self):
        # Empty record sets yield defined values (0.0, or NaN for
        # percentiles) so partial chaos runs roll up without raising.
        collector = MetricsCollector()
        assert collector.latency_avg("ghost") == 0.0
        assert collector.slo_violation_rate("ghost") == 0.0
        assert collector.deadline_miss_rate() == 0.0
        assert math.isnan(collector.latency_p99("ghost"))
        assert collector.mean_breakdown("ghost") == {
            "t_queue": 0.0, "t_run": 0.0, "t_block": 0.0}

    def test_reliability_counters(self):
        collector = MetricsCollector()
        assert collector.mttr_s() == 0.0
        collector.record_retry()
        collector.record_retry()
        collector.record_hedge()
        collector.record_timeout()
        collector.record_crash(lost_jobs=3, lost_energy_j=1.5)
        collector.record_recovery(2.0)
        collector.record_recovery(4.0)
        collector.record_workflow_failure("B")
        assert collector.retries == 2
        assert collector.hedges == 1
        assert collector.timeouts == 1
        assert collector.jobs_lost_to_crash == 3
        assert collector.retry_energy_j == pytest.approx(1.5)
        assert collector.failure_count("node_crash") == 1
        assert collector.failed_workflows == 1
        assert collector.mttr_s() == pytest.approx(3.0)
        assert collector.failure_count() == 2  # crash + workflow failure

    def test_abandoned_job_routes_to_retry_energy(self):
        env = Environment()
        collector = MetricsCollector()
        job = finished_job(env, energy=2.0)
        job.abandoned = True
        collector.record_job(job)
        assert collector.function_records == []
        assert collector.retry_energy_j == pytest.approx(2.0)
        assert collector.abandoned_completions == 1

    def test_function_energy_by_benchmark(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, benchmark="A", energy=1.0))
        collector.record_job(finished_job(env, benchmark="B", energy=2.0))
        assert collector.function_energy_j("A") == pytest.approx(1.0)
        assert collector.function_energy_j() == pytest.approx(3.0)

    def test_frequency_histograms(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, freq=3.0, latency=1.0))
        collector.record_job(finished_job(env, freq=1.2, latency=2.0))
        collector.record_job(finished_job(env, freq=1.2, latency=2.0))
        assert collector.frequency_histogram() == {3.0: 1, 1.2: 2}
        times = collector.frequency_time_histogram()
        assert times[1.2] == pytest.approx(4.0)

    def test_mean_breakdown(self):
        env = Environment()
        collector = MetricsCollector()
        collector.record_job(finished_job(env, latency=2.0))
        breakdown = collector.mean_breakdown()
        assert set(breakdown) == {"t_queue", "t_run", "t_block"}
        assert breakdown["t_run"] == pytest.approx(2.0)

    def test_benchmarks_listing(self):
        collector = MetricsCollector()
        collector.record_workflow("Z", 0.0, 1.0, 5.0)
        collector.record_workflow("A", 0.0, 1.0, 5.0)
        assert collector.benchmarks() == ["A", "Z"]
