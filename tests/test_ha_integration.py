"""The repro.ha determinism and recovery contract, end to end.

Runs the partition experiment's scenario (scaled down) under real load
and asserts the acceptance bar of the HA layer:

* same seed + same plan => bit-identical suspicion timestamps, leader
  epochs, re-dispatch journal, and run fingerprint;
* zero duplicate workflow completions across seeds — every late copy of
  a re-dispatched invocation is fenced;
* controller loss is healed within one lease period.

The HA-off "opt-in means untouched" half of the contract is pinned by
``test_guard_determinism.py``: its reference fingerprints were captured
before the HA layer existed and none of its runs configure one.
"""

import pytest

from repro.experiments.partition import ha_config, run_one

from tests.fingerprints import cluster_fingerprint

#: Scaled-down scenario: long enough for the t=10 s partition, the
#: t=12 s controller crash, and the t=20 s asymmetric cut to land and
#: drain, short enough for the test suite.
DURATION_S = 28.0
N_SERVERS = 3


@pytest.fixture(scope="module")
def ha_runs():
    """Three runs of the partition scenario: seed 0 twice, seed 1 once."""
    return {
        "a": run_one(0, True, DURATION_S, N_SERVERS),
        "b": run_one(0, True, DURATION_S, N_SERVERS),
        "other_seed": run_one(1, True, DURATION_S, N_SERVERS),
    }


class TestHADeterminism:
    def test_same_seed_runs_are_bit_identical(self, ha_runs):
        a, b = ha_runs["a"], ha_runs["b"]
        assert a.ha.membership.snapshot() == b.ha.membership.snapshot()
        assert a.ha.controllers.snapshot() == b.ha.controllers.snapshot()
        assert a.ha.journal.snapshot() == b.ha.journal.snapshot()
        assert cluster_fingerprint(a) == cluster_fingerprint(b)

    def test_the_repeatability_is_not_vacuous(self, ha_runs):
        """The compared artifacts actually contain HA activity."""
        a = ha_runs["a"]
        assert len(a.ha.membership.snapshot()) > 0
        assert len(a.ha.controllers.snapshot()) > 0
        assert a.metrics.ha_suspicions >= 1

    def test_seeds_differ(self, ha_runs):
        """Sanity: the fingerprint is sensitive to the seed."""
        assert (cluster_fingerprint(ha_runs["a"])
                != cluster_fingerprint(ha_runs["other_seed"]))


class TestHARecoveryAcceptance:
    @pytest.mark.parametrize("label", ["a", "other_seed"])
    def test_zero_duplicate_workflow_completions(self, ha_runs, label):
        cluster = ha_runs[label]
        assert cluster.metrics.ha_duplicate_completions == 0
        assert cluster.ha.journal.duplicate_completions == 0

    @pytest.mark.parametrize("label", ["a", "other_seed"])
    def test_controller_loss_healed_within_one_lease(self, ha_runs, label):
        cluster = ha_runs[label]
        lease_s = ha_config().lease_s
        assert cluster.metrics.ha_failovers >= 1
        assert all(t <= lease_s
                   for t in cluster.metrics.ha_failover_times_s)
        # The crash of ctl0 handed leadership to the lowest-id standby.
        election_times = [t for t, _, _ in cluster.ha.controllers.elections]
        assert cluster.ha.controllers.elections[0][1] == 1
        assert all(t >= 0 for t in election_times)

    @pytest.mark.parametrize("label", ["a", "other_seed"])
    def test_partitioned_work_is_redispatched_and_fenced(self, ha_runs,
                                                         label):
        cluster = ha_runs[label]
        metrics = cluster.metrics
        # The symmetric cut strands in-flight work on node1; the journal
        # re-dispatches it exactly once per idempotency key.
        assert metrics.ha_redispatches >= 1
        assert (cluster.ha.journal.redispatch_count()
                == metrics.ha_redispatches)
        # Every surviving original of a re-dispatched key was fenced.
        assert metrics.ha_duplicates_fenced >= 1
        # Both cut nodes stayed alive: their suspicions are all false
        # positives, which is exactly why the fencing must exist.
        assert metrics.ha_suspicions >= 2
        assert metrics.ha_false_suspicions == metrics.ha_suspicions

    @pytest.mark.parametrize("label", ["a", "other_seed"])
    def test_no_workflow_is_lost_to_the_partition(self, ha_runs, label):
        cluster = ha_runs[label]
        assert cluster.metrics.completed_workflows() > 0
        assert cluster.metrics.failed_workflows == 0
