"""SLO burn-rate monitors: bucket math, alert edges, determinism."""

import pytest

from repro import obs
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import overload as overload_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.obs.burnrate import (
    BurnRateConfig,
    BurnRateMonitor,
    LogBucketHistogram,
    bucket_bounds,
    bucket_index,
)
from repro.platform.cluster import ClusterConfig


def test_bucket_index_is_monotonic_and_consistent_with_bounds():
    last = -1
    for latency_ms in (0.0, 0.5, 1.0, 1.2, 2.0, 5.0, 17.0, 100.0, 3000.0):
        index = bucket_index(latency_ms * 1e-3)
        assert index >= last
        last = index
        lo, hi = bucket_bounds(index)
        if latency_ms > 0:
            assert lo <= latency_ms * 1e-3 < hi or index == 0


def test_four_buckets_per_doubling():
    assert bucket_index(2e-3) - bucket_index(1e-3) == 4
    assert bucket_index(8e-3) - bucket_index(4e-3) == 4


def test_histogram_percentiles():
    hist = LogBucketHistogram()
    for latency_ms in [1, 1, 1, 1, 1, 1, 1, 1, 1, 100]:
        hist.observe(latency_ms * 1e-3)
    assert hist.count == 10
    # p50 sits in the 1 ms bucket, p99 in the 100 ms bucket.
    assert hist.percentile(0.50) < 2e-3
    lo, hi = bucket_bounds(bucket_index(100e-3))
    assert hist.percentile(0.99) == hi
    d = hist.to_dict()
    assert d["count"] == 10
    assert sum(d["buckets"].values()) == 10


class RecordingTracer:
    def __init__(self):
        self.instants = []

    def instant(self, name, track, **args):
        self.instants.append((name, args))


def feed(monitor, tracer, times_met):
    for t, met in times_met:
        monitor.observe(tracer, "WebServ", t, met, latency_s=0.01)


def test_fast_burn_alert_fires_on_rising_edge_only():
    config = BurnRateConfig(target_miss_rate=0.1, fast_window_s=5.0,
                            slow_window_s=30.0, fast_burn=4.0,
                            min_samples=5)
    monitor = BurnRateMonitor(config)
    monitor.begin_run(0, "test")
    tracer = RecordingTracer()
    # 5 misses in quick succession: 100% miss rate => burn 10 >= 4.
    feed(monitor, tracer, [(0.1 * i, False) for i in range(5)])
    fast = [i for i in tracer.instants if i[0] == "slo_burn_fast"]
    assert len(fast) == 1
    assert fast[0][1]["benchmark"] == "WebServ"
    assert fast[0][1]["burn"] >= 4.0
    # Still hot: no re-fire while the condition persists.
    feed(monitor, tracer, [(0.6, False), (0.7, False)])
    assert len([i for i in tracer.instants
                if i[0] == "slo_burn_fast"]) == 1
    # Recover (all met, window slides), then a second excursion re-fires.
    feed(monitor, tracer, [(6.0 + 0.1 * i, True) for i in range(10)])
    feed(monitor, tracer, [(20.0 + 0.1 * i, False) for i in range(5)])
    assert len([i for i in tracer.instants
                if i[0] == "slo_burn_fast"]) == 2


def test_no_alert_below_min_samples():
    monitor = BurnRateMonitor(BurnRateConfig(min_samples=5))
    monitor.begin_run(0, "test")
    tracer = RecordingTracer()
    feed(monitor, tracer, [(0.1 * i, False) for i in range(4)])
    assert tracer.instants == []


def test_slow_burn_tracks_sustained_budget_consumption():
    config = BurnRateConfig(target_miss_rate=0.1, slow_burn=1.0,
                            min_samples=5)
    monitor = BurnRateMonitor(config)
    monitor.begin_run(0, "test")
    tracer = RecordingTracer()
    # 10% misses sustained: slow burn == 1.0 exactly => alert.
    events = [(float(i), i % 10 == 0) for i in range(20)]
    feed(monitor, tracer, [(t, not miss) for t, miss in events])
    assert any(i[0] == "slo_burn_slow" for i in tracer.instants)


def run_monitored(seed=6):
    monitor = BurnRateMonitor()
    obs.install(obs.Tracer(burnrate=monitor))
    try:
        trace = make_load_trace("high", 2, 8.0, seed=seed,
                                cores_per_server=20)
        config = ClusterConfig(
            n_servers=2, seed=seed,
            guard=overload_experiment.guard_config(2, 20))
        cluster = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                              config)
    finally:
        obs.uninstall()
    return cluster, monitor


def test_monitor_summary_is_deterministic_across_runs():
    _, first = run_monitored()
    _, second = run_monitored()
    assert first.summary() == second.summary()
    runs = first.summary()["runs"]
    assert runs and runs[0]["benchmarks"]
    histograms = [b["histogram"] for b in runs[0]["benchmarks"].values()]
    assert sum(h["count"] for h in histograms) > 0


def test_monitored_run_is_bit_identical_to_plain_run():
    monitored, _ = run_monitored()
    trace = make_load_trace("high", 2, 8.0, seed=6, cores_per_server=20)
    config = ClusterConfig(n_servers=2, seed=6,
                           guard=overload_experiment.guard_config(2, 20))
    bare = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)
    assert monitored.metrics.workflow_records == \
        bare.metrics.workflow_records
    assert [s.meter.total_j for s in monitored.servers] == \
        [s.meter.total_j for s in bare.servers]


def test_burn_instants_land_in_epoch_metrics_columns():
    """The registry wires slo_burn_* instants to epoch columns."""
    from repro.obs.export import epoch_rows

    monitor = BurnRateMonitor()
    tracer = obs.install(obs.Tracer(burnrate=monitor))
    try:
        trace = make_load_trace("high", 2, 8.0, seed=6,
                                cores_per_server=20)
        config = ClusterConfig(
            n_servers=2, seed=6,
            guard=overload_experiment.guard_config(2, 20))
        run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)
    finally:
        obs.uninstall()
    rows = epoch_rows(tracer, epoch_s=2.0)
    assert all("slo_fast_burns" in row and "slo_slow_burns" in row
               for row in rows)
    fired = sum(row["slo_fast_burns"] + row["slo_slow_burns"]
                for row in rows)
    alerts = sum(
        b["fast_alerts"] + b["slow_alerts"]
        for run in monitor.summary()["runs"]
        for b in run["benchmarks"].values())
    assert fired == alerts
