"""The repro.guard determinism contract, pinned to stored fingerprints.

Two halves:

1. **Opt-in means untouched** — a cluster built with no ``GuardConfig``
   must reproduce the pre-guard seed code's outputs byte-for-byte. The
   reference fingerprints in ``tests/data/seed_fingerprint.json`` were
   captured before the guard subsystem existed; this suite recomputes
   them (including the chaos reference with a live fault plan and retry
   policy) and compares hex-for-hex.
2. **Guarded runs are still deterministic** — every guard decision is a
   pure function of simulation time and counters, so two guarded runs of
   the same seed produce identical fingerprints too.
"""

import pytest

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultPlan
from repro.guard import GuardConfig
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy

from tests.fingerprints import (
    cluster_fingerprint,
    current_fingerprints,
    load_reference,
    reference_runs,
)


class TestGuardsOffMatchesSeed:
    """No GuardConfig == the pre-guard code path, to the byte."""

    @pytest.mark.parametrize("label", ["baseline", "ecofaas",
                                       "ecofaas_chaos"])
    def test_reference_fingerprint_is_reproduced(self, label):
        reference = load_reference()
        factory = dict(reference_runs())[label]
        assert cluster_fingerprint(factory()) == reference[label], (
            f"guards-off run {label!r} no longer matches the stored seed"
            f" fingerprint — an unguarded code path changed behaviour")

    def test_reference_file_covers_all_runs(self):
        assert set(load_reference()) == {label for label, _
                                         in reference_runs()}

    def test_current_fingerprints_helper_agrees(self):
        assert current_fingerprints() == load_reference()


def guarded_run(fault_plan=None, policy=None):
    config = ClusterConfig(n_servers=2, drain_s=4.0, reliability=policy,
                           guard=GuardConfig.full())
    return run_cluster(EcoFaaSSystem(EcoFaaSConfig()),
                       make_load_trace("low", 2, 6.0, seed=3), config,
                       fault_plan=fault_plan)


class TestGuardedRunsAreDeterministic:
    def test_plain_guarded_run(self):
        assert (cluster_fingerprint(guarded_run())
                == cluster_fingerprint(guarded_run()))

    def test_guarded_chaos_run(self):
        """Full guards + the chaos reference's fault plan: still bitwise
        repeatable, including breaker and checkpoint activity."""
        policy = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05)

        def run():
            plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"],
                                        seed=5)
            return guarded_run(fault_plan=plan, policy=policy)

        first, second = run(), run()
        assert cluster_fingerprint(first) == cluster_fingerprint(second)
        # The guard layer actually did something in these runs (the
        # checkpointer at minimum), so the repeatability is not vacuous.
        assert first.metrics.checkpoints_taken > 0
        assert (first.metrics.checkpoints_taken
                == second.metrics.checkpoints_taken)

    def test_guarded_differs_from_unguarded_under_chaos(self):
        """Sanity: the guards are live, not a no-op, once configured."""
        policy = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05)
        plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"], seed=5)
        guarded = guarded_run(fault_plan=plan, policy=policy)
        assert guarded.metrics.checkpoints_taken > 0
