"""repro.guard mechanism unit tests: buckets, brownouts, breakers,
prediction screening, checkpoints, and config validation.

Everything here exercises the pure mechanism classes directly — no
simulation. The cluster-level wiring (and the determinism contract) is
covered by ``test_guard_integration.py`` / ``test_guard_determinism.py``.
"""

import math

import pytest

from repro.guard import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    SHED_BROWNOUT,
    SHED_OVERLOAD,
    SHED_RATE_LIMIT,
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CheckpointConfig,
    CheckpointStore,
    CircuitBreaker,
    GuardConfig,
    PredictionGuard,
    SafeModeConfig,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        bucket = TokenBucket(rate_rps=10.0, burst=3.0)
        assert bucket.peek(0.0) == pytest.approx(3.0)
        # A long idle stretch cannot overfill the bucket.
        assert bucket.peek(100.0) == pytest.approx(3.0)

    def test_take_consumes_and_refills_with_time(self):
        bucket = TokenBucket(rate_rps=2.0, burst=1.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)      # empty, same instant
        assert not bucket.take(0.4)      # 0.8 tokens: still short of one
        assert bucket.take(0.5)          # exactly refilled
        assert not bucket.take(0.5)

    def test_sustained_rate_is_enforced(self):
        bucket = TokenBucket(rate_rps=5.0, burst=1.0)
        admitted = sum(1 for i in range(100) if bucket.take(i * 0.01))
        # 1 s at 100 arrivals/s through a 5 rps bucket: burst + refill.
        assert admitted <= 1 + 5

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=1.0, burst=0.5)


class TestAdmissionController:
    def controller(self, **overrides):
        config = dict(rate_rps=100.0, burst=100.0,
                      brownout_ewt_s=(1.0, 3.0), best_effort=("BE",))
        config.update(overrides)
        return AdmissionController(AdmissionConfig(**config))

    def test_brownout_levels(self):
        ctrl = self.controller()
        assert ctrl.brownout_level(0.0) == 0
        assert ctrl.brownout_level(0.99) == 0
        assert ctrl.brownout_level(1.0) == 1
        assert ctrl.brownout_level(2.9) == 1
        assert ctrl.brownout_level(3.0) == 2

    def test_slo_work_is_never_shed_below_level_2(self):
        ctrl = self.controller(rate_rps=1.0, burst=1.0)
        # Even with an empty bucket, SLO-bearing work sails through at
        # levels 0 and 1 — the structural zero-shed-sub-saturation rule.
        for i in range(50):
            assert ctrl.admit("SLO", now=0.0, ewt_per_core_s=2.0) is None
        assert ctrl.shed_counts == {}

    def test_best_effort_is_shed_first(self):
        ctrl = self.controller()
        assert ctrl.admit("BE", now=0.0, ewt_per_core_s=0.0) is None
        assert ctrl.admit("BE", now=0.0, ewt_per_core_s=1.5) == SHED_BROWNOUT
        assert ctrl.admit("SLO", now=0.0, ewt_per_core_s=1.5) is None
        assert ctrl.shed_counts == {("BE", SHED_BROWNOUT): 1}

    def test_best_effort_is_bucket_limited_even_at_level_0(self):
        ctrl = self.controller(rate_rps=1.0, burst=1.0)
        assert ctrl.admit("BE", now=0.0, ewt_per_core_s=0.0) is None
        assert (ctrl.admit("BE", now=0.0, ewt_per_core_s=0.0)
                == SHED_RATE_LIMIT)

    def test_slo_work_is_rate_limited_at_level_2(self):
        ctrl = self.controller(rate_rps=1.0, burst=1.0)
        assert ctrl.admit("SLO", now=0.0, ewt_per_core_s=5.0) is None
        assert (ctrl.admit("SLO", now=0.0, ewt_per_core_s=5.0)
                == SHED_OVERLOAD)
        # The brownout clearing restores unconditional admission.
        assert ctrl.admit("SLO", now=0.0, ewt_per_core_s=0.0) is None
        assert ctrl.level == 0

    def test_buckets_are_per_benchmark(self):
        ctrl = self.controller(rate_rps=1.0, burst=1.0)
        assert ctrl.admit("A", now=0.0, ewt_per_core_s=5.0) is None
        # B has its own untouched bucket.
        assert ctrl.admit("B", now=0.0, ewt_per_core_s=5.0) is None
        assert ctrl.admit("A", now=0.0, ewt_per_core_s=5.0) == SHED_OVERLOAD


class TestCircuitBreaker:
    def breaker(self, **overrides):
        config = dict(window_s=10.0, min_failures=3, failure_rate=0.5,
                      open_for_s=5.0)
        config.update(overrides)
        return CircuitBreaker(BreakerConfig(**config))

    def test_stays_closed_below_min_failures(self):
        breaker = self.breaker()
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED
        assert breaker.allow(0.2)

    def test_trips_on_failure_threshold(self):
        breaker = self.breaker()
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.state == OPEN
        assert breaker.open_count == 1
        assert not breaker.allow(0.3)

    def test_failure_rate_guards_against_busy_functions(self):
        # 3 failures among 20 attempts is a 15% failure rate: below the
        # 50% bar, the breaker must not trip.
        breaker = self.breaker()
        for i in range(17):
            breaker.record_success(i * 0.1)
        for t in (1.8, 1.9, 2.0):
            breaker.record_failure(t)
        assert breaker.state == CLOSED

    def test_window_prunes_old_failures(self):
        breaker = self.breaker(window_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        # The first two have aged out by t=2: only one failure in window.
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = self.breaker(open_for_s=5.0)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert not breaker.allow(4.9)            # still cooling down
        assert breaker.allow(5.3)                # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(5.4)            # only one probe in flight
        breaker.record_success(5.5)
        assert breaker.state == CLOSED
        assert breaker.allow(5.6)

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = self.breaker(open_for_s=5.0)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.allow(5.3)
        breaker.record_failure(5.5)              # the probe failed
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        assert not breaker.allow(10.0)           # cooldown restarted at 5.5
        assert breaker.allow(10.6)


class TestPredictionGuard:
    def guard(self, **overrides):
        config = dict(prediction_rel_max=10.0, prediction_abs_max_s=100.0)
        config.update(overrides)
        return PredictionGuard(SafeModeConfig(**config))

    @pytest.mark.parametrize("bad, violation", [
        (float("nan"), "nan"),
        (float("inf"), "inf"),
        (-0.5, "negative"),
        (101.0, "abs_bound"),
    ], ids=["nan", "inf", "negative", "abs"])
    def test_pathological_values_fall_back_to_known_good(self, bad,
                                                         violation):
        guard = self.guard()
        assert guard.sanitize("f", "t_run", 2.0) == (2.0, None)
        assert guard.sanitize("f", "t_run", bad) == (2.0, violation)
        assert guard.mispredictions == 1

    def test_relative_bound_catches_explosions(self):
        guard = self.guard()
        guard.sanitize("f", "t_run", 2.0)
        value, violation = guard.sanitize("f", "t_run", 25.0)  # > 10x
        assert (value, violation) == (2.0, "rel_bound")
        # 19.0 is within 10x of known-good 2.0 and becomes the new anchor.
        assert guard.sanitize("f", "t_run", 19.0) == (19.0, None)

    def test_first_ever_bad_prediction_degrades_to_zero(self):
        guard = self.guard()
        value, violation = guard.sanitize("f", "t_run", float("nan"))
        assert value == 0.0 and violation == "nan"

    def test_known_good_is_per_function_and_kind(self):
        guard = self.guard()
        guard.sanitize("f", "t_run", 2.0)
        guard.sanitize("g", "t_run", 5.0)
        assert guard.sanitize("g", "t_run", -1.0)[0] == 5.0
        assert guard.sanitize("f", "energy", -1.0)[0] == 0.0  # distinct kind

    def test_dpt_staleness(self):
        guard = self.guard(dpt_staleness_s=5.0)
        assert not guard.dpt_stale("f", now=100.0)  # never seen: not stale
        guard.note_observation("f", now=100.0)
        assert not guard.dpt_stale("f", now=104.0)
        assert guard.dpt_stale("f", now=106.0)
        guard.note_observation("f", now=106.0)      # fresh data unpins
        assert not guard.dpt_stale("f", now=107.0)

    def test_staleness_none_disables_pinning(self):
        guard = self.guard(dpt_staleness_s=None)
        guard.note_observation("f", now=0.0)
        assert not guard.dpt_stale("f", now=1e9)


class TestCheckpointStore:
    def store(self, max_staleness_s=10.0):
        return CheckpointStore(CheckpointConfig(
            period_s=1.0, max_staleness_s=max_staleness_s))

    def test_take_and_fresh(self):
        store = self.store()
        assert store.take(0, 5.0, {"targets": {3.0: 4}})
        checkpoint = store.fresh(0, 6.0)
        assert checkpoint is not None
        assert checkpoint.taken_at_s == 5.0
        assert checkpoint.state == {"targets": {3.0: 4}}
        assert store.taken == 1

    def test_none_state_is_a_no_op(self):
        store = self.store()
        assert not store.take(0, 5.0, None)
        assert store.fresh(0, 5.0) is None
        assert store.taken == 0

    def test_stale_checkpoint_is_withheld(self):
        store = self.store(max_staleness_s=2.0)
        store.take(0, 5.0, {"x": 1})
        assert store.fresh(0, 7.0) is not None
        assert store.fresh(0, 7.1) is None       # older than the bound
        assert store.latest(0) is not None       # but still inspectable

    def test_latest_wins(self):
        store = self.store()
        store.take(0, 1.0, {"v": 1})
        store.take(0, 2.0, {"v": 2})
        assert store.fresh(0, 2.5).state == {"v": 2}
        assert store.taken == 2

    def test_checkpoints_are_per_node(self):
        store = self.store()
        store.take(0, 1.0, {"v": 1})
        assert store.fresh(1, 1.5) is None


class TestGuardConfigValidation:
    def test_admission_rejections(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_rps=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(rate_rps=float("nan"))
        with pytest.raises(ValueError):
            AdmissionConfig(burst=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(brownout_ewt_s=(3.0, 1.0))   # low > high
        with pytest.raises(ValueError):
            AdmissionConfig(brownout_ewt_s=(0.0, 1.0))   # low must be > 0
        with pytest.raises(ValueError):
            AdmissionConfig(brownout_ewt_s=(1.0,))

    def test_breaker_rejections(self):
        with pytest.raises(ValueError):
            BreakerConfig(window_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(window_s=float("inf"))
        with pytest.raises(ValueError):
            BreakerConfig(min_failures=0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_rate=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_rate=1.5)
        with pytest.raises(ValueError):
            BreakerConfig(open_for_s=-1.0)

    def test_safe_mode_rejections(self):
        with pytest.raises(ValueError):
            SafeModeConfig(milp_node_budget=0)
        with pytest.raises(ValueError):
            SafeModeConfig(prediction_rel_max=1.0)
        with pytest.raises(ValueError):
            SafeModeConfig(prediction_abs_max_s=0.0)
        with pytest.raises(ValueError):
            SafeModeConfig(prediction_abs_max_s=float("nan"))
        with pytest.raises(ValueError):
            SafeModeConfig(dpt_staleness_s=0.0)
        assert SafeModeConfig(milp_node_budget=None).milp_node_budget is None

    def test_checkpoint_rejections(self):
        with pytest.raises(ValueError):
            CheckpointConfig(period_s=0.0)
        with pytest.raises(ValueError):
            CheckpointConfig(max_staleness_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointConfig(watchdog_factor=0.5)
        with pytest.raises(ValueError):
            CheckpointConfig(period_s=math.inf)

    def test_full_enables_every_section(self):
        config = GuardConfig.full()
        assert config.admission is not None
        assert config.breaker is not None
        assert config.safe_mode is not None
        assert config.checkpoint is not None
        # Overrides replace exactly one section.
        partial = GuardConfig.full(breaker=None)
        assert partial.breaker is None
        assert partial.admission is not None

    def test_default_is_all_off(self):
        config = GuardConfig()
        assert (config.admission, config.breaker, config.safe_mode,
                config.checkpoint) == (None, None, None, None)
