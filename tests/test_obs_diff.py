"""repro.obs.diff: chain bisection, run alignment, golden diff output.

The integration half builds one deterministic "arena" of fingerprint
artifacts — two identical plain EcoFaaS reference runs plus one chaos
arm on the same trace — and pins ``repro diff`` against golden files:

* same seed, same config  → every chain identical, exit 0;
* config delta (chaos arm) → a stable first-divergence report naming
  the epoch, subsystem, and first diverging audit decision, with the
  energy delta attributed across ledger buckets to 1e-6.

Regenerate the goldens (only when diff *output* intentionally changes)::

    PYTHONPATH=src:. python tests/test_obs_diff.py --write-golden
"""

import json
import os

import pytest

from repro import obs
from repro.cli import _diff
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultPlan
from repro.obs.diff import diff_documents, first_mismatch
from repro.obs.fingerprint import FingerprintRecorder, digest, fold_chain
from repro.obs.ledger import EnergyLedger
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TEXT = os.path.join(DATA_DIR, "diff_golden.txt")
GOLDEN_JSON = os.path.join(DATA_DIR, "diff_golden.json")


# ---------------------------------------------------------------------------
# Chain bisection units
# ---------------------------------------------------------------------------
def test_first_mismatch_identical_chains():
    chain = fold_chain("metrics", ["a", "b", "c"])
    assert first_mismatch(chain, list(chain)) is None
    assert first_mismatch([], []) is None


def test_first_mismatch_finds_first_divergence():
    base = ["p0", "p1", "p2", "p3", "p4"]
    for k in range(len(base)):
        other = list(base)
        other[k] = "XX"
        assert first_mismatch(fold_chain("m", base),
                              fold_chain("m", other)) == k


def test_first_mismatch_prefix_diverges_at_shorter_length():
    chain = fold_chain("m", ["p0", "p1", "p2"])
    assert first_mismatch(chain, chain[:2]) == 2
    assert first_mismatch(chain[:2], chain) == 2
    assert first_mismatch([], chain) == 0


# ---------------------------------------------------------------------------
# The deterministic diff arena
# ---------------------------------------------------------------------------
def _run_arm(chaos: bool):
    """One reference run with fingerprints + ledger + audit armed."""
    tracer = obs.install(obs.Tracer(ledger=EnergyLedger(),
                                    fingerprint=FingerprintRecorder()))
    audit = obs.install_audit(obs.AuditLog())
    try:
        if chaos:
            config = ClusterConfig(
                n_servers=2, drain_s=4.0,
                reliability=ReliabilityPolicy(max_retries=8,
                                              backoff_base_s=0.05))
            plan = FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"],
                                        seed=5)
        else:
            config = ClusterConfig(n_servers=2, drain_s=4.0)
            plan = None
        run_cluster(EcoFaaSSystem(EcoFaaSConfig()),
                    make_load_trace("low", 2, 6.0, seed=3), config,
                    fault_plan=plan)
    finally:
        obs.uninstall()
        obs.uninstall_audit()
    return tracer, audit


def _manifest(arm: str, stem: str) -> dict:
    config = {"experiment": "ref", "seed": 3, "arm": arm}
    return {"experiment": "ref", "seed": 3,
            "config_digest": digest(config),
            "artifacts": {"audit": f"{stem}_audit.jsonl",
                          "trace": f"{stem}_trace.json"}}


def build_arena(dirpath: str) -> None:
    """Write a.json/b.json (identical plain runs) and chaos.json."""
    from repro.obs.export import write_chrome_trace
    for stem, chaos in (("a", False), ("b", False), ("chaos", True)):
        tracer, audit = _run_arm(chaos)
        audit.write(os.path.join(dirpath, f"{stem}_audit.jsonl"))
        write_chrome_trace(tracer,
                           os.path.join(dirpath, f"{stem}_trace.json"))
        tracer.fingerprint.write(
            os.path.join(dirpath, f"{stem}.json"),
            _manifest("chaos" if chaos else "plain", stem))


@pytest.fixture(scope="module")
def arena(tmp_path_factory):
    dirpath = tmp_path_factory.mktemp("diff_arena")
    build_arena(str(dirpath))
    return str(dirpath)


# ---------------------------------------------------------------------------
# Same seed, same config: identical
# ---------------------------------------------------------------------------
def test_same_seed_runs_diff_identical(arena, monkeypatch, capsys):
    monkeypatch.chdir(arena)
    rc = _diff(["a.json", "b.json"])
    out, _ = capsys.readouterr()
    assert rc == 0
    assert "identical: every chain and the final fingerprint agree" in out
    assert "first divergence" not in out


def test_run_against_itself_is_identical(arena, monkeypatch, capsys):
    monkeypatch.chdir(arena)
    rc = _diff(["a.json", "a.json", "--run-a", "0", "--run-b", "0"])
    out, _ = capsys.readouterr()
    assert rc == 0
    assert "identical" in out


# ---------------------------------------------------------------------------
# Config delta: golden first-divergence report
# ---------------------------------------------------------------------------
def _golden(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def test_config_delta_matches_golden_text(arena, monkeypatch, capsys):
    monkeypatch.chdir(arena)
    rc = _diff(["a.json", "chaos.json"])
    out, _ = capsys.readouterr()
    assert rc == 1
    assert out == _golden(GOLDEN_TEXT)


def test_config_delta_matches_golden_json(arena, monkeypatch, capsys):
    monkeypatch.chdir(arena)
    rc = _diff(["a.json", "chaos.json", "--json", "-"])
    out, _ = capsys.readouterr()
    assert rc == 1
    assert out == _golden(GOLDEN_JSON)


def test_diff_output_is_byte_identical_across_invocations(
        arena, monkeypatch, capsys):
    monkeypatch.chdir(arena)
    _diff(["a.json", "chaos.json"])
    first, _ = capsys.readouterr()
    _diff(["a.json", "chaos.json"])
    second, _ = capsys.readouterr()
    assert first == second


def test_first_divergence_names_an_audit_decision(arena, monkeypatch):
    monkeypatch.chdir(arena)
    result = diff_documents("a.json", "chaos.json")
    assert result["identical"] is False
    pair = result["pairs"][0]
    assert pair["first"] is not None
    assert pair["first"]["subsystem"] in pair["subsystems"]
    assert pair["subsystems"][pair["first"]["subsystem"]]["status"] == \
        "diverged"
    decision = pair["decision"]
    assert decision is not None
    assert decision["source"] in ("audit", "instants")
    # The manifest config digests differ and the note says so.
    assert any("config_digest differs" in note for note in result["notes"])


def test_attribution_buckets_resum_to_energy_total(arena, monkeypatch):
    monkeypatch.chdir(arena)
    result = diff_documents("a.json", "chaos.json")
    attribution = result["pairs"][0]["attribution"]
    energy = attribution["energy_total_j"]
    buckets = attribution["energy_by_component_delta_j"]
    assert attribution["bucket_deltas_resum_to_total"] is True
    scale = max(abs(energy["a"]), abs(energy["b"]))
    assert abs(sum(buckets.values()) - energy["delta"]) <= 1e-6 * scale


def test_epoch_length_mismatch_is_an_error(arena, tmp_path, monkeypatch):
    monkeypatch.chdir(arena)
    with open("a.json") as handle:
        document = json.load(handle)
    document["epoch_s"] = 1.0
    other = tmp_path / "other_epoch.json"
    other.write_text(json.dumps(document))
    with pytest.raises(ValueError):
        diff_documents("a.json", str(other))


# ---------------------------------------------------------------------------
# Golden regeneration entrypoint
# ---------------------------------------------------------------------------
if __name__ == "__main__":
    import contextlib
    import io
    import sys
    import tempfile

    if "--write-golden" not in sys.argv:
        sys.exit("usage: python tests/test_obs_diff.py --write-golden")
    workdir = tempfile.mkdtemp(prefix="diff_arena_")
    build_arena(workdir)
    os.chdir(workdir)
    for golden, argv in ((GOLDEN_TEXT, ["a.json", "chaos.json"]),
                         (GOLDEN_JSON,
                          ["a.json", "chaos.json", "--json", "-"])):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            rc = _diff(argv)
        assert rc == 1, f"expected divergence, got rc={rc}"
        with open(golden, "w") as handle:
            handle.write(buffer.getvalue())
        print(f"wrote {golden}")
