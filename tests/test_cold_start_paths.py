"""Cold-start corner cases across the platform layer."""


from repro.baselines import BaselineSystem
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.faults import CONTAINER_KILL, FaultEvent, FaultPlan
from repro.platform.cluster import Cluster, ClusterConfig
from repro.sim import Environment
from repro.traces.trace import Trace, TraceEvent


def run_trace(system, events, duration, n_servers=1, drain=30.0,
              fault_plan=None):
    env = Environment()
    cluster = Cluster(env, system,
                      ClusterConfig(n_servers=n_servers, seed=0,
                                    drain_s=drain),
                      fault_plan=fault_plan)
    cluster.run_trace(Trace(events, duration))
    return cluster


class TestConcurrentColdArrivals:
    def test_simultaneous_requests_share_one_cold_start(self):
        events = [TraceEvent(0.1, "WebServ") for _ in range(5)]
        cluster = run_trace(BaselineSystem(), events, 1.0)
        assert cluster.metrics.completed_workflows() == 5
        # Only the first request boots the container.
        assert cluster.metrics.cold_start_count() == 1
        assert cluster.nodes[0].containers.cold_starts == 1

    def test_waiters_complete_after_container_ready(self):
        events = [TraceEvent(0.1, "CNNServ") for _ in range(3)]
        cluster = run_trace(BaselineSystem(), events, 1.0)
        records = sorted(cluster.metrics.function_records,
                         key=lambda r: r.latency_s)
        # The cold-start job is the slowest-to-complete of the batch and
        # the only one marked cold.
        assert sum(1 for r in records if r.cold_start) == 1
        # Warm followers still had to wait for the container.
        warm = [r for r in records if not r.cold_start]
        cold_duration = next(r for r in records if r.cold_start).t_run_s
        assert all(r.latency_s > 0 for r in warm)
        assert cold_duration > 0

    def test_ecofaas_concurrent_cold_arrivals(self):
        events = [TraceEvent(0.1, "WebServ") for _ in range(5)]
        cluster = run_trace(
            EcoFaaSSystem(EcoFaaSConfig(prewarm=False)), events, 1.0)
        assert cluster.metrics.completed_workflows() == 5
        assert cluster.metrics.cold_start_count() == 1


class TestKeepAliveExpiry:
    def test_container_recycles_after_idle_gap(self):
        # Two requests separated by more than the 60 s keep-alive.
        events = [TraceEvent(0.1, "WebServ"), TraceEvent(70.0, "WebServ")]
        cluster = run_trace(BaselineSystem(), events, 80.0)
        assert cluster.metrics.cold_start_count() == 2

    def test_container_stays_warm_within_keep_alive(self):
        events = [TraceEvent(0.1, "WebServ"), TraceEvent(30.0, "WebServ")]
        cluster = run_trace(BaselineSystem(), events, 40.0)
        assert cluster.metrics.cold_start_count() == 1

    def test_steady_traffic_keeps_container_warm_indefinitely(self):
        events = [TraceEvent(0.1 + 20.0 * i, "WebServ") for i in range(5)]
        cluster = run_trace(BaselineSystem(), events, 90.0)
        assert cluster.metrics.cold_start_count() == 1


class TestColdStartLatencyImpact:
    def test_cold_invocation_is_slower_than_warm(self):
        events = [TraceEvent(0.1, "CNNServ"), TraceEvent(5.0, "CNNServ")]
        cluster = run_trace(BaselineSystem(), events, 10.0)
        records = cluster.metrics.function_records
        cold = next(r for r in records if r.cold_start)
        warm = next(r for r in records if not r.cold_start)
        assert cold.latency_s > warm.latency_s + 0.5 * 1.5  # ~cold cost

    def test_ecofaas_prewarm_moves_cold_start_off_app_critical_path(self):
        # Two eBook requests far apart: without prewarm the second one's
        # stages are warm anyway; the FIRST one benefits from prewarming
        # of stages >= 1 while stage 0 executes.
        events = [TraceEvent(0.1, "eBook")]

        def first_latency(prewarm):
            cluster = run_trace(
                EcoFaaSSystem(EcoFaaSConfig(prewarm=prewarm)), events, 1.0)
            return cluster.metrics.workflow_records[0].latency_s

        assert first_latency(True) < first_latency(False)


class TestColdStartDisruption:
    """Container kills (repro.faults) interrupting the cold-start path."""

    def kill_at(self, t, function="CNNServ"):
        return FaultPlan((FaultEvent(t, CONTAINER_KILL, node=0,
                                     function=function),))

    def test_kill_mid_cold_start_forces_fresh_boot(self):
        # CNNServ boots for ~1.5 s; the kill at t=0.5 lands mid-boot. The
        # waiting requests must notice, start a fresh cold start, and all
        # complete — no stuck ready event.
        events = [TraceEvent(0.1, "CNNServ") for _ in range(3)]
        cluster = run_trace(BaselineSystem(), events, 1.0,
                            fault_plan=self.kill_at(0.5))
        metrics = cluster.metrics
        assert metrics.completed_workflows() == 3
        # The doomed boot plus the fresh one it forced.
        assert cluster.nodes[0].containers.cold_starts == 2
        assert cluster.nodes[0].containers.kills == 1
        # No invocation is still parked on a container that will never
        # come up.
        assert cluster.inflight == 0
        assert not cluster.nodes[0].containers._starting

    def test_both_boots_are_charged_to_their_invocations(self):
        # The job that ran the doomed boot keeps its cold flag (it really
        # paid the setup work on-core); one ex-waiter pays for the fresh
        # boot. The third request rides warm.
        events = [TraceEvent(0.1, "CNNServ") for _ in range(3)]
        cluster = run_trace(BaselineSystem(), events, 1.0,
                            fault_plan=self.kill_at(0.5))
        assert cluster.metrics.cold_start_count() == 2

    def test_kill_mid_cold_start_slows_the_batch(self):
        events = [TraceEvent(0.1, "CNNServ") for _ in range(3)]
        calm = run_trace(BaselineSystem(), list(events), 1.0)
        killed = run_trace(BaselineSystem(), list(events), 1.0,
                           fault_plan=self.kill_at(0.5))
        # Every request had to wait out the second boot.
        assert (min(r.latency_s for r in killed.metrics.workflow_records)
                > min(r.latency_s for r in calm.metrics.workflow_records))

    def test_kill_during_keep_alive_resets_manager_state(self):
        # Kill a *warm* container between two requests: the manager must
        # forget it, and the second request pays a full fresh cold start.
        events = [TraceEvent(0.1, "WebServ"), TraceEvent(3.0, "WebServ")]
        cluster = run_trace(BaselineSystem(), events, 5.0,
                            fault_plan=self.kill_at(1.5, "WebServ"))
        containers = cluster.nodes[0].containers
        assert cluster.metrics.completed_workflows() == 2
        assert cluster.metrics.cold_start_count() == 2
        assert containers.cold_starts == 2
        assert containers.kills == 1

    def test_ecofaas_kill_mid_cold_start(self):
        events = [TraceEvent(0.1, "CNNServ") for _ in range(3)]
        cluster = run_trace(
            EcoFaaSSystem(EcoFaaSConfig(prewarm=False)), events, 1.0,
            fault_plan=self.kill_at(0.5))
        assert cluster.metrics.completed_workflows() == 3
        assert cluster.inflight == 0
        assert cluster.nodes[0].containers.cold_starts == 2
