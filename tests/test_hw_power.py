"""Tests for the analytic power model and throttling penalties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.cache import ResourceThrottleModel
from repro.hardware.power import PowerModel


class TestPowerModel:
    def test_active_power_grows_cubically(self):
        power = PowerModel()
        p12 = power.core_active_power(1.2)
        p30 = power.core_active_power(3.0)
        dynamic_ratio = (p30 - power.core_static_w) / (p12 - power.core_static_w)
        assert dynamic_ratio == pytest.approx((3.0 / 1.2) ** 3)

    def test_socket_peak_power_near_tdp(self):
        # Calibration: one fully loaded 10-core socket at 3 GHz should land
        # near the E5-2660 v3 105 W TDP.
        power = PowerModel()
        socket_w = (10 * power.core_active_power(3.0)
                    + power.uncore_w_per_socket)
        assert 85.0 <= socket_w <= 115.0

    def test_idle_power_well_below_active(self):
        power = PowerModel()
        assert power.core_idle_power() < power.core_active_power(1.2) / 2

    def test_background_power_covers_both_sockets(self):
        power = PowerModel()
        assert power.background_power() == pytest.approx(
            2 * 18.0 + 8.0)

    def test_low_frequency_active_power_is_much_lower(self):
        # The energy-saving headroom the whole paper exploits.
        power = PowerModel()
        assert (power.core_active_power(1.2)
                < 0.35 * power.core_active_power(3.0))

    def test_server_power_snapshot(self):
        power = PowerModel()
        freqs = [3.0, 1.2]
        flags = [True, False]
        expected = (power.core_active_power(3.0) + power.core_idle_power()
                    + power.background_power() + power.dram_active_power(1))
        assert power.server_power(freqs, flags) == pytest.approx(expected)

    def test_server_power_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            PowerModel().server_power([3.0], [True, False])

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(core_static_w=-1.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().core_active_power(0.0)

    def test_negative_busy_cores_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().dram_active_power(-1)

    @given(st.floats(min_value=0.5, max_value=2.9), st.floats(min_value=0.05, max_value=1.0))
    def test_active_power_monotonic_in_frequency(self, freq, delta):
        power = PowerModel()
        assert power.core_active_power(freq + delta) > power.core_active_power(freq)

    @given(st.floats(min_value=1.2, max_value=2.7))
    def test_energy_per_fixed_compute_decreases_at_lower_freq(self, freq):
        """For compute-bound work, E = P(f) * C/f must shrink as f shrinks —
        otherwise no frequency scaling would ever save energy and the paper's
        premise would not hold in our model."""
        power = PowerModel()
        gcycles = 3.0
        e_lo = power.core_active_power(freq) * (gcycles / freq)
        e_hi = power.core_active_power(3.0) * (gcycles / 3.0)
        assert e_lo < e_hi


class TestResourceThrottleModel:
    def test_full_allocation_is_penalty_free(self):
        model = ResourceThrottleModel()
        assert model.llc_penalty(16) == 0.0
        assert model.bw_penalty(1.0) == 0.0
        assert model.memory_time_multiplier(16, 1.0, 1.0, 1.0) == 1.0

    def test_minimum_allocation_is_full_penalty(self):
        model = ResourceThrottleModel()
        assert model.llc_penalty(2) == pytest.approx(1.0)
        assert model.bw_penalty(0.1) == pytest.approx(1.0)

    def test_paper_operating_points(self):
        # 4 ways and 20% bandwidth sit at moderate penalty (the paper's
        # observation that functions tolerate these cuts).
        model = ResourceThrottleModel()
        assert 0.3 < model.llc_penalty(4) < 0.6
        assert 0.3 < model.bw_penalty(0.2) < 0.6

    def test_penalties_monotonic(self):
        model = ResourceThrottleModel()
        penalties = [model.llc_penalty(w) for w in range(2, 17)]
        assert penalties == sorted(penalties, reverse=True)
        bw_penalties = [model.bw_penalty(b / 10) for b in range(1, 11)]
        assert bw_penalties == sorted(bw_penalties, reverse=True)

    def test_multiplier_scales_with_sensitivity(self):
        model = ResourceThrottleModel()
        insensitive = model.memory_time_multiplier(4, 0.2, 0.0, 0.0)
        sensitive = model.memory_time_multiplier(4, 0.2, 0.5, 0.5)
        assert insensitive == 1.0
        assert sensitive > 1.0

    def test_out_of_range_inputs_rejected(self):
        model = ResourceThrottleModel()
        with pytest.raises(ValueError):
            model.llc_penalty(1)
        with pytest.raises(ValueError):
            model.llc_penalty(17)
        with pytest.raises(ValueError):
            model.bw_penalty(0.05)
        with pytest.raises(ValueError):
            model.memory_time_multiplier(4, 0.5, 1.5, 0.0)

    def test_invalid_model_config_rejected(self):
        with pytest.raises(ValueError):
            ResourceThrottleModel(max_llc_ways=2, min_llc_ways=2)
        with pytest.raises(ValueError):
            ResourceThrottleModel(min_bw_fraction=0.0)
