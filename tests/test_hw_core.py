"""Tests for the simulated core: execution, preemption, DVFS, energy."""

import pytest

from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.sim import Environment


def make_core(freq=3.0):
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    core = Core(env, core_id=0, power=power, meter=meter, frequency_ghz=freq)
    return env, meter, power, core


class Sink:
    """Collects the per-run accounting the core reports."""

    def __init__(self):
        self.run_seconds = 0.0
        self.energy_j = 0.0

    def record_run(self, dt, joules):
        self.run_seconds += dt
        self.energy_j += joules


def test_run_to_completion_takes_expected_time():
    env, _, _, core = make_core(freq=3.0)
    done = []
    work = WorkUnit(gcycles=3.0, mem_seconds=0.5)  # 1.5 s at 3 GHz
    core.start(work, consumer="f", on_complete=lambda c: done.append(env.now))
    env.run()
    assert done == [pytest.approx(1.5)]
    assert not core.busy
    assert core.completed_runs == 1


def test_busy_core_rejects_second_start():
    env, _, _, core = make_core()
    core.start(WorkUnit(3.0), "f", lambda c: None)
    with pytest.raises(RuntimeError):
        core.start(WorkUnit(1.0), "g", lambda c: None)


def test_pre_overhead_delays_completion():
    env, meter, power, core = make_core(freq=3.0)
    done = []
    core.start(WorkUnit(gcycles=3.0), "f",
               on_complete=lambda c: done.append(env.now),
               pre_overhead_s=0.5)
    env.run()
    assert done == [pytest.approx(1.5)]  # 0.5 overhead + 1.0 work
    # Overhead energy lands in the dvfs_overhead component.
    assert meter.component_j("dvfs_overhead") == pytest.approx(
        power.core_active_power(3.0) * 0.5)


def test_active_energy_attributed_to_consumer():
    env, meter, power, core = make_core(freq=3.0)
    sink = Sink()
    core.start(WorkUnit(gcycles=3.0), "funcA",
               on_complete=lambda c: None, sink=sink)
    env.run()
    expected = (power.core_active_power(3.0) + power.dram_active_power(1)) * 1.0
    assert meter.consumer_j("funcA") == pytest.approx(expected)
    assert sink.energy_j == pytest.approx(expected)
    assert sink.run_seconds == pytest.approx(1.0)


def test_idle_energy_accrues_between_runs():
    env, meter, power, core = make_core()
    env.run(until=2.0)
    core.finalize()
    assert meter.component_j("core_idle") == pytest.approx(
        power.core_idle_power() * 2.0)


def test_preempt_returns_partially_consumed_work():
    env, _, _, core = make_core(freq=3.0)
    work = WorkUnit(gcycles=6.0)  # 2 s at 3 GHz
    core.start(work, "f", on_complete=lambda c: pytest.fail("must not finish"))
    env.run(until=0.5)
    remaining = core.preempt()
    assert remaining is work
    assert remaining.duration(3.0) == pytest.approx(1.5)
    assert not core.busy
    env.run()  # stale completion timeout must not fire
    assert core.completed_runs == 0


def test_preempt_idle_core_raises():
    _, _, _, core = make_core()
    with pytest.raises(RuntimeError):
        core.preempt()


def test_preempted_work_resumes_and_finishes_elsewhere():
    env, _, _, core = make_core(freq=3.0)
    finished = []
    work = WorkUnit(gcycles=6.0)
    core.start(work, "f", on_complete=lambda c: None)
    env.run(until=1.0)
    remaining = core.preempt()
    core.start(remaining, "f", on_complete=lambda c: finished.append(env.now))
    env.run()
    assert finished == [pytest.approx(2.0)]


def test_preempt_during_pre_overhead_returns_untouched_work():
    env, _, _, core = make_core()
    work = WorkUnit(gcycles=3.0)
    core.start(work, "f", on_complete=lambda c: None, pre_overhead_s=1.0)
    env.run(until=0.4)
    remaining = core.preempt()
    assert remaining.gcycles == pytest.approx(3.0)
    env.run()
    assert core.completed_runs == 0


def test_set_frequency_while_idle_is_immediate():
    env, meter, power, core = make_core(freq=3.0)
    core.set_frequency(1.2, cost_s=50e-6)
    assert core.frequency == 1.2
    assert core.frequency_switches == 1
    assert meter.component_j("dvfs_overhead") == pytest.approx(
        power.core_active_power(1.2) * 50e-6)


def test_set_frequency_noop_when_equal():
    _, _, _, core = make_core(freq=3.0)
    core.set_frequency(3.0, cost_s=1.0)
    assert core.frequency_switches == 0


def test_set_frequency_while_busy_rescales_completion():
    env, _, _, core = make_core(freq=3.0)
    finished = []
    core.start(WorkUnit(gcycles=6.0), "f",
               on_complete=lambda c: finished.append(env.now))
    env.run(until=1.0)        # 3 gcycles consumed, 3 remain
    core.set_frequency(1.5)   # remaining 3 gcycles now take 2 s
    env.run()
    assert finished == [pytest.approx(3.0)]


def test_set_frequency_while_busy_with_cost_stalls_job():
    env, meter, power, core = make_core(freq=3.0)
    finished = []
    core.start(WorkUnit(gcycles=6.0), "f",
               on_complete=lambda c: finished.append(env.now))
    env.run(until=1.0)
    core.set_frequency(1.5, cost_s=0.25)
    env.run()
    assert finished == [pytest.approx(1.0 + 0.25 + 2.0)]
    assert meter.component_j("dvfs_overhead") == pytest.approx(
        power.core_active_power(1.5) * 0.25)


def test_remaining_time_reflects_progress_and_frequency():
    env, _, _, core = make_core(freq=3.0)
    core.start(WorkUnit(gcycles=6.0), "f", on_complete=lambda c: None)
    assert core.remaining_time() == pytest.approx(2.0)
    env.run(until=0.5)
    assert core.remaining_time() == pytest.approx(1.5)


def test_remaining_time_zero_when_idle():
    _, _, _, core = make_core()
    assert core.remaining_time() == 0.0


def test_energy_conservation_across_preemption():
    """Total active energy must match power x total active time whether or
    not the run was preempted in the middle."""
    env, meter, power, core = make_core(freq=3.0)
    work = WorkUnit(gcycles=6.0)
    core.start(work, "f", on_complete=lambda c: None)
    env.run(until=0.7)
    remaining = core.preempt()
    env.run(until=1.0)  # idle gap
    core.start(remaining, "f", on_complete=lambda c: None)
    env.run()
    core.finalize()
    assert meter.component_j("core_active") == pytest.approx(
        power.core_active_power(3.0) * 2.0)
    assert meter.component_j("core_idle") == pytest.approx(
        power.core_idle_power() * 0.3)


def test_invalid_arguments():
    env, meter, power, _ = make_core()
    with pytest.raises(ValueError):
        Core(env, 0, power, meter, frequency_ghz=0.0)
    _, _, _, core = make_core()
    with pytest.raises(ValueError):
        core.start(WorkUnit(1.0), "f", lambda c: None, pre_overhead_s=-1.0)
    with pytest.raises(ValueError):
        core.set_frequency(-1.0)
    with pytest.raises(ValueError):
        core.set_frequency(2.0, cost_s=-0.1)
