"""repro.guard wired through the cluster: end-to-end degradation tests.

Covers the acceptance behaviours of the guard subsystem on live
simulations: admission keeps zero SLO-bearing sheds below saturation and
sheds best-effort first past it; circuit breakers compose with the
``repro.faults`` retry machinery (strictly less retry energy than
retries alone under a persistent fault); checkpoints restore crashed
node controllers within the staleness bound; the watchdog kicks stuck
control loops; and safe mode screens pathological predictions, budgets
the MILP, and pins frequencies on stale profiles.
"""

import math

import pytest

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.core.profiles import ProfileStore
from repro.experiments import overload
from repro.faults import CONTAINER_KILL, NODE_CRASH, FaultEvent, FaultPlan
from repro.guard import (
    AdmissionConfig,
    BreakerConfig,
    CheckpointConfig,
    GuardConfig,
    SafeModeConfig,
)
from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.sim import Environment
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.registry import all_benchmarks, benchmark_names


def build_cluster(guard, *, n_servers=2, cores=20, drain_s=5.0,
                  policy=None, fault_plan=None, slo_multiple=5.0, seed=0):
    env = Environment()
    return Cluster(env, EcoFaaSSystem(EcoFaaSConfig()),
                   ClusterConfig(n_servers=n_servers,
                                 cores_per_server=cores, seed=seed,
                                 drain_s=drain_s, reliability=policy,
                                 guard=guard, slo_multiple=slo_multiple),
                   fault_plan=fault_plan)


def steady(benchmark, rate_hz, duration, start=0.1):
    step = 1.0 / rate_hz
    return [TraceEvent(start + i * step, benchmark)
            for i in range(int((duration - start) * rate_hz))]


class TestAdmissionShedding:
    """The overload experiment's structural invariants, at test scale."""

    N_SERVERS, CORES = 2, 8

    def run_at(self, utilization, guards_on=True, duration=10.0):
        guard = (overload.guard_config(self.N_SERVERS, self.CORES)
                 if guards_on else None)
        saturation = rate_for_utilization(
            all_benchmarks(), 1.0, total_cores=self.N_SERVERS * self.CORES)
        trace = generate_poisson_trace(PoissonLoadConfig(
            benchmark_names(), rate_rps=saturation * utilization,
            duration_s=duration, seed=42))
        cluster = build_cluster(guard, n_servers=self.N_SERVERS,
                                cores=self.CORES, drain_s=8.0)
        cluster.run_trace(trace)
        return trace, cluster

    def shed_split(self, metrics):
        best_effort = set(overload.best_effort_benchmarks())
        slo = sum(count for bench, count in metrics.shed_by_benchmark.items()
                  if bench not in best_effort)
        be = sum(count for bench, count in metrics.shed_by_benchmark.items()
                 if bench in best_effort)
        return slo, be

    def test_sub_saturation_sheds_no_slo_work(self):
        """The CI smoke invariant: below saturation the admission guard
        never touches an SLO-bearing workflow."""
        trace, cluster = self.run_at(0.8)
        shed_slo, _ = self.shed_split(cluster.metrics)
        assert shed_slo == 0
        assert cluster.inflight == 0  # nothing stranded either

    def test_overload_sheds_best_effort_and_bounds_backlog(self):
        trace, guarded = self.run_at(2.5)
        _, unguarded = self.run_at(2.5, guards_on=False)
        shed_slo, shed_be = self.shed_split(guarded.metrics)
        # Past saturation both classes are shed, best-effort included.
        assert shed_be > 0
        assert shed_slo > 0
        assert guarded.metrics.shed_count() == shed_slo + shed_be
        # The guards-off arm strands far more work at end of run: the
        # queue blow-up that admission control exists to prevent.
        assert guarded.inflight < unguarded.inflight
        assert unguarded.metrics.shed_count() == 0

    def test_shed_workflows_never_reach_the_engine(self):
        trace, cluster = self.run_at(2.5)
        metrics = cluster.metrics
        offered = sum(trace.invocation_counts().values())
        accounted = (metrics.completed_workflows() + metrics.failed_workflows
                     + metrics.shed_count() + cluster.inflight)
        assert accounted == offered


class TestBreakerRetryComposition:
    """Breakers must compose with (not multiply) the retry machinery."""

    def run(self, guard):
        # CNNServ's 1.5 s cold start can never beat the 1.0 s attempt
        # timeout while the injector keeps killing the container
        # mid-boot, so every attempt fails for the whole trace window —
        # a persistent fault the retry policy alone keeps paying for.
        events = steady("CNNServ", 2.0, 8.0)
        kills = tuple(FaultEvent(0.3 + 0.4 * k, CONTAINER_KILL, node=0,
                                 function="CNNServ") for k in range(20))
        policy = ReliabilityPolicy(max_retries=3, backoff_base_s=0.05,
                                   backoff_jitter=0.0,
                                   invocation_timeout_s=1.0)
        cluster = build_cluster(guard, n_servers=1, drain_s=20.0,
                                policy=policy,
                                fault_plan=FaultPlan(kills))
        cluster.run_trace(Trace(events, 8.0))
        return cluster

    def test_breaker_cuts_retry_energy_of_a_persistent_fault(self):
        plain = self.run(None)
        guarded = self.run(GuardConfig(breaker=BreakerConfig(
            window_s=10.0, min_failures=3, failure_rate=0.5,
            open_for_s=4.0)))
        # The fault actually bit: the plain run burned retries and energy
        # on attempts that were doomed from the start.
        assert plain.metrics.timeouts > 0
        assert plain.metrics.retry_energy_j > 0
        # The breaker opened and failed the doomed invocations fast...
        assert guarded.metrics.breaker_opens >= 1
        assert guarded.metrics.breaker_fast_fails > 0
        assert guarded.metrics.retries < plain.metrics.retries
        # ...so the total energy wasted on retries is strictly lower.
        assert (guarded.metrics.retry_energy_j
                < plain.metrics.retry_energy_j)

    def test_breaker_is_quiet_on_a_healthy_cluster(self):
        guard = GuardConfig(breaker=BreakerConfig())
        policy = ReliabilityPolicy(max_retries=3, backoff_jitter=0.0)
        cluster = build_cluster(guard, n_servers=1, policy=policy)
        cluster.run_trace(Trace(steady("WebServ", 10.0, 3.0), 3.0))
        metrics = cluster.metrics
        assert metrics.completed_workflows() == len(
            steady("WebServ", 10.0, 3.0))
        assert metrics.breaker_opens == 0
        assert metrics.breaker_fast_fails == 0


CRASH_POLICY = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05,
                                 backoff_jitter=0.0)


class TestCheckpointRestore:
    def run(self, checkpoint, crash_duration_s):
        plan = FaultPlan((FaultEvent(4.0, NODE_CRASH, node=0,
                                     duration_s=crash_duration_s),))
        cluster = build_cluster(GuardConfig(checkpoint=checkpoint),
                                policy=CRASH_POLICY, fault_plan=plan)
        cluster.run_trace(Trace(steady("WebServ", 20.0, 6.0), 6.5))
        return cluster

    def test_fresh_checkpoint_restores_the_pool_shape(self):
        cluster = self.run(CheckpointConfig(period_s=0.5,
                                            max_staleness_s=5.0), 1.0)
        metrics = cluster.metrics
        assert metrics.checkpoints_taken > 0
        assert metrics.checkpoint_restores == 1
        assert metrics.lost_invocations == 0
        # The restored controller came back with a learned multi-pool
        # shape instead of the cold single max-frequency pool.
        assert len(cluster.nodes[0]._targets) > 1

    def test_stale_checkpoint_is_discarded(self):
        # The node is down for longer than the staleness bound, so its
        # last pre-crash snapshot must NOT be restored (stale control
        # state is worse than cold state).
        cluster = self.run(CheckpointConfig(period_s=0.5,
                                            max_staleness_s=1.0), 2.0)
        assert cluster.metrics.checkpoints_taken > 0
        assert cluster.metrics.checkpoint_restores == 0

    def test_watchdog_kicks_a_stuck_control_loop(self):
        guard = GuardConfig(checkpoint=CheckpointConfig(
            period_s=0.5, max_staleness_s=5.0, watchdog_factor=3.0))
        cluster = build_cluster(guard)
        cluster.env.run(until=4.0)
        assert cluster.metrics.watchdog_kicks == 0  # loop is healthy
        # Simulate a wedged refresh loop: the controller has not run for
        # far longer than watchdog_factor * t_refresh.
        node = cluster.nodes[0]
        node.last_refresh_s = cluster.env.now - 100.0
        cluster.env.run(until=cluster.env.now + 0.6)
        assert cluster.metrics.watchdog_kicks >= 1
        # The kick actually refreshed the node.
        assert cluster.env.now - node.last_refresh_s < 1.0


class TestSafeMode:
    def test_tiny_milp_budget_falls_back_to_proportional_split(self):
        guard = GuardConfig(safe_mode=SafeModeConfig(milp_node_budget=1))
        cluster = build_cluster(guard, slo_multiple=1.1)
        events = [TraceEvent(0.1 + i * 0.1, "eBank") for i in range(80)]
        cluster.run_trace(Trace(events, 8.1))
        metrics = cluster.metrics
        # The one-node budget exhausts on a tight-SLO multi-stage solve;
        # the controller degrades to the proportional split and the
        # workflows all still complete.
        assert metrics.milp_fallbacks >= 1
        assert metrics.completed_workflows() == len(events)

    def test_generous_milp_budget_never_falls_back(self):
        guard = GuardConfig(safe_mode=SafeModeConfig(
            milp_node_budget=20_000))
        cluster = build_cluster(guard, slo_multiple=1.1)
        events = [TraceEvent(0.1 + i * 0.1, "eBank") for i in range(80)]
        cluster.run_trace(Trace(events, 8.1))
        assert cluster.metrics.milp_fallbacks == 0
        assert cluster.metrics.completed_workflows() == len(events)

    def test_nan_predictions_are_screened_and_the_run_survives(self,
                                                               monkeypatch):
        guard = GuardConfig(safe_mode=SafeModeConfig())
        cluster = build_cluster(guard, n_servers=1)
        # A degenerate fit: every T_Block prediction comes out NaN.
        monkeypatch.setattr(ProfileStore, "predict_t_block",
                            lambda *args, **kwargs: float("nan"))
        events = steady("WebServ", 10.0, 4.0)
        cluster.run_trace(Trace(events, 4.0))
        metrics = cluster.metrics
        assert metrics.mispredictions > 0
        assert metrics.completed_workflows() == len(events)

    def test_stale_profile_pins_dispatch_to_max_frequency(self):
        guard = GuardConfig(safe_mode=SafeModeConfig(dpt_staleness_s=1.5))
        cluster = build_cluster(guard, n_servers=1, drain_s=3.0)
        # A warm-up burst trains the profile, then a silent gap longer
        # than the staleness bound, then one more burst: the first
        # post-gap dispatches must pin to the top frequency.
        events = (steady("WebServ", 10.0, 3.0)
                  + steady("WebServ", 10.0, 7.0, start=6.0))
        cluster.run_trace(Trace(events, 7.0))
        metrics = cluster.metrics
        assert metrics.freq_pins >= 1
        assert metrics.completed_workflows() == len(events)
        # Fresh observations unpin: not every post-gap arrival pinned.
        assert metrics.freq_pins < 10

    def test_guard_counters_stay_zero_without_a_config(self):
        cluster = build_cluster(None)
        cluster.run_trace(Trace(steady("WebServ", 10.0, 2.0), 2.0))
        metrics = cluster.metrics
        assert cluster.guard is None
        assert metrics.shed_count() == 0
        assert metrics.breaker_opens == metrics.breaker_fast_fails == 0
        assert metrics.mispredictions == metrics.milp_fallbacks == 0
        assert metrics.freq_pins == 0
        assert metrics.checkpoints_taken == metrics.checkpoint_restores == 0
        assert metrics.watchdog_kicks == 0


class TestOverloadExperimentShape:
    """Structure of the overload experiment harness (cheap pieces only)."""

    def test_guard_config_is_admission_only_and_sized_to_capacity(self):
        guard = overload.guard_config(2, 20)
        assert guard.admission is not None
        assert guard.admission.rate_rps > 0
        assert guard.admission.brownout_ewt_s == overload.BROWNOUT_EWT_S
        assert set(guard.admission.best_effort) == set(
            overload.best_effort_benchmarks())

    def test_best_effort_set_is_fixed_and_real(self):
        best_effort = overload.best_effort_benchmarks()
        assert len(best_effort) == 1
        assert set(best_effort) <= set(benchmark_names())

    def test_utilization_sweep_crosses_saturation(self):
        assert min(overload.UTILIZATIONS) < 1.0 < max(overload.UTILIZATIONS)
        assert math.isfinite(sum(overload.UTILIZATIONS))
