"""Tests for the MILP solver and the Delay-Power Table deadline split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpt import (
    DelayPowerTable,
    split_deadlines,
    split_deadlines_exhaustive,
)
from repro.core.milp import MilpProblem, solve_milp
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.workloads.applications import Workflow, WorkflowStage
from repro.workloads.model import FunctionModel


class TestMilpSolver:
    def test_simple_binary_knapsack(self):
        # max 3x0 + 4x1 st x0 + 2x1 <= 2 -> x = (1, 0) wait: (0,1) gives 4.
        problem = MilpProblem(
            c=np.array([-3.0, -4.0]),
            integer_mask=np.array([True, True]),
            a_ub=np.array([[1.0, 2.0]]), b_ub=np.array([2.0]),
            bounds=[(0, 1), (0, 1)])
        solution = solve_milp(problem)
        assert solution.ok
        assert solution.objective == pytest.approx(-4.0)
        assert list(solution.x) == [0.0, 1.0]

    def test_continuous_variables_stay_continuous(self):
        # min x0 + x1, x0 integer, x0 + x1 >= 1.5, x1 <= 0.4
        problem = MilpProblem(
            c=np.array([1.0, 1.0]),
            integer_mask=np.array([True, False]),
            a_ub=np.array([[-1.0, -1.0]]), b_ub=np.array([-1.5]),
            bounds=[(0, None), (0, 0.4)])
        solution = solve_milp(problem)
        assert solution.ok
        assert solution.x[0] == pytest.approx(2.0)  # 1.1 needed -> ceil 2
        # x1 adjusts continuously
        assert solution.objective == pytest.approx(2.0 + 0.0, abs=0.5)

    def test_infeasible_problem(self):
        problem = MilpProblem(
            c=np.array([1.0]),
            integer_mask=np.array([True]),
            a_ub=np.array([[1.0], [-1.0]]), b_ub=np.array([0.2, -0.8]),
            bounds=[(0, 1)])
        solution = solve_milp(problem)
        assert not solution.ok
        assert solution.status == "infeasible"

    def test_equality_constraints(self):
        # One-hot selection: pick the cheapest of three options.
        problem = MilpProblem(
            c=np.array([5.0, 3.0, 7.0]),
            integer_mask=np.array([True, True, True]),
            a_eq=np.array([[1.0, 1.0, 1.0]]), b_eq=np.array([1.0]),
            bounds=[(0, 1)] * 3)
        solution = solve_milp(problem)
        assert solution.ok
        assert list(solution.x) == [0.0, 1.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            MilpProblem(c=np.array([[1.0]]), integer_mask=np.array([True]))
        with pytest.raises(ValueError):
            MilpProblem(c=np.array([1.0, 2.0]),
                        integer_mask=np.array([True]))
        with pytest.raises(ValueError):
            MilpProblem(c=np.array([1.0]), integer_mask=np.array([True]),
                        bounds=[(0, 1), (0, 1)])

    def test_node_budget_exhaustion_is_flagged(self):
        # min x0+x1+x2 st 2x0+3x1+5x2 >= 7, binary: needs branching, so a
        # one-node budget runs out with the frontier still open.
        problem = MilpProblem(
            c=np.array([1.0, 1.0, 1.0]),
            integer_mask=np.array([True, True, True]),
            a_ub=np.array([[-2.0, -3.0, -5.0]]), b_ub=np.array([-7.0]),
            bounds=[(0, 1)] * 3)
        full = solve_milp(problem)
        assert full.ok and not full.exhausted
        assert full.objective == pytest.approx(2.0)
        starved = solve_milp(problem, max_nodes=1)
        assert starved.exhausted
        assert not starved.ok  # no incumbent found in one node

    def test_infeasible_is_not_exhausted(self):
        problem = MilpProblem(
            c=np.array([1.0]),
            integer_mask=np.array([True]),
            a_ub=np.array([[1.0], [-1.0]]), b_ub=np.array([0.2, -0.8]),
            bounds=[(0, 1)])
        solution = solve_milp(problem)
        assert not solution.ok
        assert not solution.exhausted  # proven infeasible, not starved

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    def test_multiple_choice_knapsack_matches_brute_force(self, n_groups, seed):
        """Random one-frequency-per-function problems: the B&B solution
        must equal exhaustive enumeration."""
        rng = np.random.default_rng(seed)
        n_options = 3
        costs = rng.uniform(1, 10, size=(n_groups, n_options))
        times = rng.uniform(1, 5, size=(n_groups, n_options))
        budget = float(times.min(axis=1).sum() * 1.5)

        n = n_groups * n_options
        c = costs.reshape(-1)
        a_eq = np.zeros((n_groups, n))
        for g in range(n_groups):
            a_eq[g, g * n_options:(g + 1) * n_options] = 1.0
        problem = MilpProblem(
            c=c, integer_mask=np.ones(n, dtype=bool),
            a_ub=times.reshape(1, -1) * np.ones((1, n)) * 0 + times.reshape(1, -1),
            b_ub=np.array([budget]),
            a_eq=a_eq, b_eq=np.ones(n_groups),
            bounds=[(0, 1)] * n)
        solution = solve_milp(problem)

        import itertools
        best = np.inf
        for combo in itertools.product(range(n_options), repeat=n_groups):
            total_time = sum(times[g, j] for g, j in enumerate(combo))
            if total_time <= budget + 1e-9:
                best = min(best, sum(costs[g, j] for g, j in enumerate(combo)))
        if best is np.inf:
            assert not solution.ok
        else:
            assert solution.ok
            assert solution.objective == pytest.approx(best, rel=1e-6)


def constant_fn(name, run_ms):
    return FunctionModel(name=name, run_seconds_at_max=run_ms / 1000.0,
                         compute_fraction=0.7, block_seconds=0.0,
                         n_blocks=0, cold_start_seconds=0.1)


def make_dpt(workflow, scale=None, queue_s=0.0):
    """DPT with physically consistent t/E entries for every function."""
    scale = scale or FrequencyScale()
    power = PowerModel()
    dpt = DelayPowerTable(scale)
    for fn in workflow.functions:
        for level in scale:
            t_run = fn.run_seconds(level)
            energy = t_run * power.core_active_power(level)
            dpt.update(fn.name, level, t_run + queue_s, energy)
    return dpt


class TestDelayPowerTable:
    def test_update_and_lookup(self):
        dpt = DelayPowerTable(FrequencyScale())
        dpt.update("f", 3.0, 0.1, 2.0)
        assert dpt.entry("f", 3.0) == (0.1, 2.0)
        assert dpt.entry("f", 1.2) is None
        assert not dpt.has_function("f")

    def test_has_function_requires_all_levels(self):
        dpt = DelayPowerTable(FrequencyScale())
        for level in FrequencyScale():
            dpt.update("f", level, 0.1, 2.0)
        assert dpt.has_function("f")

    def test_validation(self):
        dpt = DelayPowerTable(FrequencyScale())
        with pytest.raises(ValueError):
            dpt.update("f", 2.0, 0.1, 1.0)  # not a level
        with pytest.raises(ValueError):
            dpt.update("f", 3.0, -0.1, 1.0)


class TestSplitDeadlines:
    def test_loose_slo_selects_lowest_frequency(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),
            WorkflowStage((constant_fn("b", 200),)),
        ))
        dpt = make_dpt(workflow)
        split = split_deadlines(workflow, slo_s=100.0, dpt=dpt)
        assert split.feasible
        assert all(freq == 1.2 for freq in split.frequencies.values())

    def test_tight_slo_selects_highest_frequency(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),
            WorkflowStage((constant_fn("b", 200),)),
        ))
        dpt = make_dpt(workflow)
        # Just feasible at max only: sum at max = 0.3s.
        split = split_deadlines(workflow, slo_s=0.301, dpt=dpt)
        assert split.feasible
        assert all(freq == 3.0 for freq in split.frequencies.values())

    def test_infeasible_slo_falls_back_to_fastest_plan(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),))
        dpt = make_dpt(workflow)
        split = split_deadlines(workflow, slo_s=0.01, dpt=dpt)
        assert not split.feasible
        assert split.frequencies["a"] == 3.0

    def test_intermediate_slo_mixes_frequencies_energy_optimally(self):
        workflow = Workflow("mix", (
            WorkflowStage((constant_fn("short", 20),)),
            WorkflowStage((constant_fn("long", 500),)),
        ))
        dpt = make_dpt(workflow)
        slo = 0.75  # between all-max (0.52) and all-min (1.17)
        split = split_deadlines(workflow, slo, dpt)
        exact = split_deadlines_exhaustive(workflow, slo, dpt)
        assert split.feasible
        assert split.energy_j == pytest.approx(exact.energy_j, rel=1e-6)

    def test_milp_matches_exhaustive_on_parallel_stages(self):
        workflow = Workflow("par", (
            WorkflowStage((constant_fn("p1", 100), constant_fn("p2", 150))),
            WorkflowStage((constant_fn("tail", 60),)),
        ))
        dpt = make_dpt(workflow)
        for slo in (0.3, 0.5, 0.8):
            milp = split_deadlines(workflow, slo, dpt)
            exact = split_deadlines_exhaustive(workflow, slo, dpt)
            assert milp.energy_j == pytest.approx(exact.energy_j, rel=1e-6), slo

    def test_parallel_stage_budget_is_slowest_member(self):
        workflow = Workflow("par", (
            WorkflowStage((constant_fn("p1", 100), constant_fn("p2", 200))),
        ))
        dpt = make_dpt(workflow)
        split = split_deadlines(workflow, slo_s=10.0, dpt=dpt)
        chosen_p2 = split.frequencies["p2"]
        # Budget covers the slower member before slack scaling.
        assert split.stage_budgets[0] >= dpt.times("p2")[chosen_p2] - 1e-9

    def test_function_deadlines_are_cumulative_absolute(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),
            WorkflowStage((constant_fn("b", 100),)),
        ))
        dpt = make_dpt(workflow)
        split = split_deadlines(workflow, slo_s=1.0, dpt=dpt)
        deadlines = split.function_deadlines(workflow, arrival_s=50.0)
        assert deadlines["a"] < deadlines["b"]
        assert deadlines["b"] == pytest.approx(50.0 + sum(split.stage_budgets))

    def test_budgets_fill_whole_slo(self):
        """The paper's deadlines consume the full SLO (Fig. 10)."""
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),
            WorkflowStage((constant_fn("b", 100),)),
        ))
        dpt = make_dpt(workflow)
        split = split_deadlines(workflow, slo_s=2.0, dpt=dpt)
        assert sum(split.stage_budgets) == pytest.approx(2.0)

    def test_missing_dpt_entries_raise(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),))
        dpt = DelayPowerTable(FrequencyScale())
        with pytest.raises(KeyError):
            split_deadlines(workflow, 1.0, dpt)

    def test_invalid_slo(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),))
        with pytest.raises(ValueError):
            split_deadlines(workflow, 0.0, make_dpt(workflow))

    def test_single_function_chain_all_slo_regimes(self):
        workflow = Workflow("solo", (
            WorkflowStage((constant_fn("a", 100),)),))
        dpt = make_dpt(workflow)
        loose = split_deadlines(workflow, slo_s=1.0, dpt=dpt)
        assert loose.feasible and loose.frequencies["a"] == 1.2
        tight = split_deadlines(workflow, slo_s=0.101, dpt=dpt)
        assert tight.feasible and tight.frequencies["a"] == 3.0
        hopeless = split_deadlines(workflow, slo_s=0.01, dpt=dpt)
        assert not hopeless.feasible
        assert not hopeless.solver_exhausted  # infeasible, not starved
        assert hopeless.frequencies["a"] == 3.0  # fastest-plan fallback

    def test_starved_split_falls_back_and_reports_exhaustion(self):
        """An intermediate SLO needs branch-and-bound; with a one-node
        budget the split degrades to the fastest plan and flags it (the
        Workflow Controller's cue to use the proportional split)."""
        workflow = Workflow("solo", (
            WorkflowStage((constant_fn("a", 100),)),))
        dpt = make_dpt(workflow)
        full = split_deadlines(workflow, slo_s=0.15, dpt=dpt)
        assert full.feasible and not full.solver_exhausted
        starved = split_deadlines(workflow, slo_s=0.15, dpt=dpt,
                                  max_nodes=1)
        assert starved.solver_exhausted
        assert not starved.feasible
        assert starved.frequencies["a"] == 3.0  # always-safe fallback

    def test_default_max_nodes_is_never_exhausted_on_real_workflows(self):
        workflow = Workflow("par", (
            WorkflowStage((constant_fn("p1", 100), constant_fn("p2", 150))),
            WorkflowStage((constant_fn("tail", 60),)),
        ))
        dpt = make_dpt(workflow)
        for slo in (0.3, 0.5, 0.8):
            assert not split_deadlines(workflow, slo, dpt).solver_exhausted

    def test_queue_time_in_entries_tightens_choices(self):
        workflow = Workflow("chain", (
            WorkflowStage((constant_fn("a", 100),)),
            WorkflowStage((constant_fn("b", 100),)),
        ))
        no_queue = split_deadlines(workflow, 0.6, make_dpt(workflow))
        queued = split_deadlines(workflow, 0.6,
                                 make_dpt(workflow, queue_s=0.1))
        mean_freq = lambda s: np.mean(list(s.frequencies.values()))
        assert mean_freq(queued) >= mean_freq(no_queue)

    def test_exhaustive_guard_rejects_huge_workflows(self):
        functions = tuple(constant_fn(f"f{i}", 10) for i in range(12))
        workflow = Workflow("big", tuple(
            WorkflowStage((fn,)) for fn in functions))
        dpt = make_dpt(workflow)
        with pytest.raises(ValueError):
            split_deadlines_exhaustive(workflow, 10.0, dpt,
                                       max_combinations=1000)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_milp_never_worse_than_exhaustive_random_chains(self, seed):
        rng = np.random.default_rng(seed)
        functions = tuple(
            constant_fn(f"f{i}", float(rng.uniform(10, 300)))
            for i in range(3))
        workflow = Workflow("rand", tuple(
            WorkflowStage((fn,)) for fn in functions))
        dpt = make_dpt(workflow)
        t_max = sum(dpt.times(fn.name)[3.0] for fn in functions)
        t_min = sum(dpt.times(fn.name)[1.2] for fn in functions)
        slo = float(rng.uniform(t_max, t_min * 1.2))
        milp = split_deadlines(workflow, slo, dpt)
        exact = split_deadlines_exhaustive(workflow, slo, dpt)
        assert milp.feasible == exact.feasible
        if milp.feasible:
            assert milp.energy_j == pytest.approx(exact.energy_j, rel=1e-6)
