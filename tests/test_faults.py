"""repro.faults: deterministic plans, the injector, and reliability policies.

Covers the acceptance properties of the fault subsystem: plans are
bit-identical per seed; an empty plan is provably inert; crashed nodes
lose no invocations once the frontend retries; timeouts/hedges behave and
are accounted; spike/stall windows compose and restore exactly.
"""


import pytest

from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.faults import (
    CONTAINER_KILL,
    DVFS_STALL,
    NODE_CRASH,
    RPC_SPIKE,
    FaultEvent,
    FaultPlan,
)
from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.sim import Environment
from repro.traces.trace import Trace, TraceEvent


def run_chaos(system, events, duration, plan=None, policy=None,
              n_servers=2, drain=60.0, seed=0):
    env = Environment()
    cluster = Cluster(env, system,
                      ClusterConfig(n_servers=n_servers, seed=seed,
                                    drain_s=drain, reliability=policy),
                      fault_plan=plan)
    cluster.run_trace(Trace(events, duration))
    return cluster


def steady(benchmark, rate_hz, duration):
    step = 1.0 / rate_hz
    return [TraceEvent(0.1 + i * step, benchmark)
            for i in range(int((duration - 0.2) * rate_hz))]


RETRY = ReliabilityPolicy(max_retries=8, backoff_base_s=0.05,
                          backoff_multiplier=2.0, backoff_jitter=0.1)


class TestFaultPlan:
    def test_same_seed_identical_plan(self):
        a = FaultPlan.calibrated(300.0, 4, ["WebServ", "CNNServ"], seed=7)
        b = FaultPlan.calibrated(300.0, 4, ["WebServ", "CNNServ"], seed=7)
        assert a == b
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultPlan.calibrated(300.0, 4, ["WebServ"], seed=1)
        b = FaultPlan.calibrated(300.0, 4, ["WebServ"], seed=2)
        assert a != b

    def test_events_time_sorted(self):
        plan = FaultPlan.calibrated(300.0, 4, ["WebServ"], seed=3)
        times = [e.time_s for e in plan.events]
        assert times == sorted(times)
        # Construction order does not matter either.
        late = FaultEvent(5.0, NODE_CRASH, duration_s=1.0)
        early = FaultEvent(1.0, NODE_CRASH, duration_s=1.0)
        assert FaultPlan((late, early)).events == (early, late)

    def test_calibrated_guarantees_a_crash(self):
        # Even a tiny run gets min_crashes crashes so recovery is exercised.
        plan = FaultPlan.calibrated(10.0, 1, [], seed=0)
        assert plan.count(NODE_CRASH) >= 1
        assert plan.has_node_crashes

    def test_none_plan_is_empty(self):
        plan = FaultPlan.none()
        assert plan.events == ()
        assert plan.count() == 0
        assert not plan.has_node_crashes

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor_strike")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, NODE_CRASH, duration_s=1.0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, NODE_CRASH, duration_s=0.0)  # no downtime
        with pytest.raises(ValueError):
            FaultEvent(1.0, CONTAINER_KILL)  # no function
        with pytest.raises(ValueError):
            FaultEvent(1.0, RPC_SPIKE, duration_s=0.0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, DVFS_STALL, duration_s=1.0, magnitude=0.0)


class TestReliabilityPolicy:
    def test_backoff_schedule(self):
        policy = ReliabilityPolicy(backoff_base_s=0.1,
                                   backoff_multiplier=2.0,
                                   backoff_jitter=0.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.8)

    def test_jitter_scales_symmetrically(self):
        policy = ReliabilityPolicy(backoff_base_s=1.0,
                                   backoff_multiplier=1.0,
                                   backoff_jitter=0.5)
        assert policy.backoff_s(1, jitter_draw=1.0) == pytest.approx(1.5)
        assert policy.backoff_s(1, jitter_draw=-1.0) == pytest.approx(0.5)
        assert policy.backoff_s(1, jitter_draw=0.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ReliabilityPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ReliabilityPolicy(backoff_jitter=1.0)
        with pytest.raises(ValueError):
            ReliabilityPolicy(invocation_timeout_s=0.0)
        with pytest.raises(ValueError):
            ReliabilityPolicy(hedge_after_s=-1.0)
        with pytest.raises(ValueError):
            ReliabilityPolicy(max_hedges=-1)
        with pytest.raises(ValueError):
            RETRY.backoff_s(0)

    @pytest.mark.parametrize("field", [
        "backoff_base_s", "backoff_multiplier", "backoff_jitter",
        "invocation_timeout_s", "hedge_after_s"])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf")],
                             ids=["nan", "inf"])
    def test_non_finite_values_are_rejected(self, field, bad):
        with pytest.raises(ValueError, match="finite"):
            ReliabilityPolicy(**{field: bad})

    def test_backoff_stays_in_jitter_bounds(self):
        policy = ReliabilityPolicy(backoff_base_s=0.1,
                                   backoff_multiplier=2.0,
                                   backoff_jitter=0.3)
        for attempt in (1, 2, 5):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            for draw in (-1.0, -0.5, 0.0, 0.5, 1.0):
                delay = policy.backoff_s(attempt, jitter_draw=draw)
                assert nominal * 0.7 - 1e-12 <= delay
                assert delay <= nominal * 1.3 + 1e-12

    def test_max_hedges_zero_disarms_hedging(self):
        # hedge_after_s set but zero hedges allowed: no duplicate ever
        # launches, even for a slow cold start.
        policy = ReliabilityPolicy(max_retries=2, backoff_jitter=0.0,
                                   hedge_after_s=0.01, max_hedges=0)
        events = [TraceEvent(0.1, "CNNServ")]
        cluster = run_chaos(BaselineSystem(), events, 3.0, n_servers=2,
                            policy=policy)
        assert cluster.metrics.hedges == 0
        assert cluster.metrics.completed_workflows() == 1

    def test_max_hedges_caps_duplicates(self):
        # CNNServ's 1.5 s cold start leaves room for many 0.1 s hedge
        # windows; the cap keeps the duplicate count at max_hedges.
        def hedges_with(cap):
            policy = ReliabilityPolicy(max_retries=2, backoff_jitter=0.0,
                                       hedge_after_s=0.1, max_hedges=cap)
            cluster = run_chaos(BaselineSystem(),
                                [TraceEvent(0.1, "CNNServ")], 4.0,
                                n_servers=4, policy=policy)
            assert cluster.metrics.completed_workflows() == 1
            return cluster.metrics.hedges

        assert hedges_with(1) == 1
        assert hedges_with(3) == 3


class TestInertness:
    def test_empty_plan_is_bit_identical(self):
        """The all-zero plan must change nothing, bit for bit."""
        events = steady("WebServ", 10.0, 5.0)

        def run(plan):
            return run_chaos(EcoFaaSSystem(EcoFaaSConfig()), events, 5.0,
                             plan=plan)

        plain = run(None)
        chaos = run(FaultPlan.none())
        assert chaos.fault_injector is None
        assert chaos.total_energy_j == plain.total_energy_j
        assert ([r.latency_s for r in chaos.metrics.workflow_records]
                == [r.latency_s for r in plain.metrics.workflow_records])
        assert chaos.metrics.retries == 0
        assert chaos.metrics.failure_count() == 0

    def test_crash_plan_without_policy_is_rejected(self):
        plan = FaultPlan((FaultEvent(1.0, NODE_CRASH, duration_s=2.0),))
        with pytest.raises(ValueError, match="reliability"):
            run_chaos(BaselineSystem(), [TraceEvent(0.1, "WebServ")], 5.0,
                      plan=plan)

    def test_crash_free_plan_needs_no_policy(self):
        plan = FaultPlan((FaultEvent(
            1.0, CONTAINER_KILL, function="WebServ"),))
        cluster = run_chaos(BaselineSystem(), [TraceEvent(0.1, "WebServ")],
                            5.0, plan=plan)
        assert cluster.fault_injector is not None


class TestCrashRecovery:
    def plan(self):
        return FaultPlan((FaultEvent(1.0, NODE_CRASH, node=0,
                                     duration_s=1.5),))

    @pytest.mark.parametrize("system_factory", [
        BaselineSystem, lambda: EcoFaaSSystem(EcoFaaSConfig())],
        ids=["baseline", "ecofaas"])
    def test_no_invocation_lost_to_a_crash(self, system_factory):
        # CNNServ's 1.5 s cold start guarantees the t=1.0 crash lands on
        # in-flight work (jobs still queued behind the container boot).
        events = steady("CNNServ", 10.0, 4.0)
        cluster = run_chaos(system_factory(), events, 4.0,
                            plan=self.plan(), policy=RETRY)
        metrics = cluster.metrics
        # Every workflow still completes; nothing is lost for good.
        assert metrics.completed_workflows() == len(events)
        assert metrics.failed_workflows == 0
        assert metrics.lost_invocations == 0
        # The crash actually hit in-flight work, and every lost job was
        # re-dispatched to completion.
        assert metrics.failure_count("node_crash") == 1
        assert metrics.jobs_lost_to_crash > 0
        assert metrics.crash_redispatches == metrics.jobs_lost_to_crash
        assert metrics.retries > 0
        assert metrics.mttr_s() == pytest.approx(1.5)
        # Partial executions charged to retry energy.
        assert metrics.retry_energy_j > 0

    def test_node_rejoins_and_serves_again(self):
        events = steady("CNNServ", 10.0, 4.0)
        cluster = run_chaos(BaselineSystem(), events, 4.0,
                            plan=self.plan(), policy=RETRY)
        node = cluster.nodes[0]
        assert not node.down
        assert node.crash_count == 1
        # The rebooted node took traffic after t=2.5 (crash at 1.0 + 1.5).
        late = [r for r in cluster.metrics.function_records
                if r.arrival_s > 2.6]
        assert late  # traffic kept flowing post-recovery

    def test_single_node_cluster_waits_out_the_outage(self):
        # With every node down the frontend must stall, not crash-loop.
        events = [TraceEvent(0.5, "WebServ"), TraceEvent(1.2, "WebServ")]
        cluster = run_chaos(BaselineSystem(), events, 3.0, n_servers=1,
                            plan=self.plan(), policy=RETRY)
        assert cluster.metrics.completed_workflows() == 2
        assert cluster.metrics.lost_invocations == 0

    def test_crash_determinism(self):
        events = steady("WebServ", 20.0, 4.0)

        def run():
            cluster = run_chaos(EcoFaaSSystem(EcoFaaSConfig()), events, 4.0,
                                plan=self.plan(), policy=RETRY, seed=5)
            return (cluster.total_energy_j, cluster.metrics.retries,
                    [r.latency_s for r in cluster.metrics.workflow_records])

        assert run() == run()


class TestContainerKill:
    def test_kill_forces_fresh_cold_start(self):
        events = [TraceEvent(0.1, "WebServ"), TraceEvent(3.0, "WebServ")]
        plan = FaultPlan((FaultEvent(2.0, CONTAINER_KILL, node=0,
                                     function="WebServ"),))
        cluster = run_chaos(BaselineSystem(), events, 5.0, n_servers=1,
                            plan=plan)
        metrics = cluster.metrics
        assert metrics.completed_workflows() == 2
        # Warm container was killed between the requests: two cold starts.
        assert metrics.cold_start_count() == 2
        assert metrics.failure_count(CONTAINER_KILL) == 1
        assert cluster.nodes[0].containers.kills == 1

    def test_kill_of_cold_container_is_not_counted(self):
        events = [TraceEvent(0.1, "WebServ")]
        plan = FaultPlan((FaultEvent(2.0, CONTAINER_KILL, node=0,
                                     function="CNNServ"),))  # never started
        cluster = run_chaos(BaselineSystem(), events, 5.0, n_servers=1,
                            plan=plan)
        assert cluster.metrics.failure_count(CONTAINER_KILL) == 0
        assert cluster.fault_injector.applied == []


class TestLatencyFaults:
    def test_rpc_spike_stretches_block_time(self):
        events = [TraceEvent(0.5, "WebServ")]
        plan = FaultPlan((FaultEvent(0.0, RPC_SPIKE, node=0,
                                     duration_s=30.0, magnitude=5.0),))
        calm = run_chaos(BaselineSystem(), list(events), 2.0, n_servers=1)
        spiky = run_chaos(BaselineSystem(), list(events), 2.0, n_servers=1,
                          plan=plan)
        calm_r = calm.metrics.function_records[0]
        spiky_r = spiky.metrics.function_records[0]
        assert spiky_r.t_block_s > calm_r.t_block_s * 2
        assert spiky_r.latency_s > calm_r.latency_s

    def test_dvfs_stall_inflates_transition_cost(self):
        # PowerCtrl re-programs cores per job (sandboxed switch cost paid
        # whenever the core's frequency changes); a stall makes those
        # transitions expensive, so latency rises.
        events = steady("WebServ", 10.0, 3.0)
        plan = FaultPlan((FaultEvent(0.0, DVFS_STALL, node=0,
                                     duration_s=60.0, magnitude=200.0),))
        calm = run_chaos(PowerCtrlSystem(), list(events), 3.0, n_servers=1)
        stalled = run_chaos(PowerCtrlSystem(), list(events), 3.0,
                            n_servers=1, plan=plan)
        assert (stalled.metrics.latency_avg()
                > calm.metrics.latency_avg())

    def test_overlapping_spikes_compose_and_restore_exactly(self):
        plan = FaultPlan((
            FaultEvent(0.5, RPC_SPIKE, node=0, duration_s=2.0,
                       magnitude=3.0),
            FaultEvent(1.0, RPC_SPIKE, node=0, duration_s=2.0,
                       magnitude=7.0),
        ))
        env = Environment()
        cluster = Cluster(env, BaselineSystem(),
                          ClusterConfig(n_servers=1, seed=0),
                          fault_plan=plan)
        node = cluster.nodes[0]
        seen = {}
        for t in (0.75, 1.5, 2.75, 4.0):
            env.run(until=t)
            seen[t] = node.rpc_latency_factor
        assert seen[0.75] == pytest.approx(3.0)
        assert seen[1.5] == pytest.approx(21.0)   # windows overlap
        assert seen[2.75] == pytest.approx(7.0)   # first window over
        assert seen[4.0] == 1.0                   # exact restore


class TestTimeoutsAndHedging:
    def test_timeout_abandons_and_eventually_loses(self):
        # A timeout far below any feasible service time: every attempt is
        # written off and the invocation is finally lost.
        policy = ReliabilityPolicy(max_retries=2, backoff_base_s=0.01,
                                   backoff_jitter=0.0,
                                   invocation_timeout_s=0.001)
        events = [TraceEvent(0.1, "WebServ")]
        cluster = run_chaos(BaselineSystem(), events, 2.0, n_servers=1,
                            policy=policy)
        metrics = cluster.metrics
        assert metrics.timeouts == 3          # initial + 2 retries
        assert metrics.retries == 2
        assert metrics.lost_invocations == 1
        assert metrics.failed_workflows == 1
        assert metrics.completed_workflows() == 0
        # The written-off attempts still ran to completion during the
        # drain; their energy is accounted as retry waste, not results.
        assert metrics.abandoned_completions == 3
        assert metrics.retry_energy_j > 0
        assert metrics.function_records == []

    def test_hedge_launches_duplicate_on_second_node(self):
        policy = ReliabilityPolicy(max_retries=2, backoff_jitter=0.0,
                                   hedge_after_s=0.01)
        events = [TraceEvent(0.1, "CNNServ")]
        cluster = run_chaos(BaselineSystem(), events, 3.0, n_servers=2,
                            policy=policy)
        metrics = cluster.metrics
        assert metrics.hedges == 1
        assert metrics.completed_workflows() == 1
        # One attempt won; the loser finished as an abandoned duplicate.
        assert metrics.abandoned_completions == 1
        assert len(metrics.function_records) == 1

    def test_policy_without_faults_changes_no_outcome(self):
        # A generous policy on a healthy cluster: no retries, no hedges,
        # identical completion counts to the plain path.
        events = steady("WebServ", 10.0, 3.0)
        plain = run_chaos(BaselineSystem(), list(events), 3.0)
        guarded = run_chaos(BaselineSystem(), list(events), 3.0,
                            policy=RETRY)
        assert (guarded.metrics.completed_workflows()
                == plain.metrics.completed_workflows() == len(events))
        assert guarded.metrics.retries == 0
        assert guarded.metrics.timeouts == 0
        assert guarded.metrics.hedges == 0


class TestInjectorDeterminism:
    def test_applied_log_is_reproducible(self):
        plan = FaultPlan.calibrated(20.0, 2, ["WebServ"], seed=11,
                                    kills_per_node_hour=2000.0,
                                    spikes_per_hour=2000.0)
        events = steady("WebServ", 10.0, 20.0)

        def run():
            cluster = run_chaos(BaselineSystem(), list(events), 20.0,
                                plan=plan, policy=RETRY, seed=11)
            return cluster.fault_injector.applied

        first, second = run(), run()
        assert first == second
        assert first  # something actually fired


class TestPlanValidationAndSerialization:
    """Cluster-relative validation and the fuzz-artifact JSON round trip."""

    def test_nan_and_inf_times_are_rejected(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError, match="finite"):
                FaultEvent(bad, NODE_CRASH, duration_s=1.0)
            with pytest.raises(ValueError, match="finite"):
                FaultEvent(1.0, RPC_SPIKE, duration_s=bad)
            with pytest.raises(ValueError, match="finite"):
                FaultEvent(1.0, DVFS_STALL, duration_s=1.0, magnitude=bad)

    def test_check_flags_cluster_relative_problems(self):
        plan = FaultPlan((
            FaultEvent(1.0, NODE_CRASH, node=5, duration_s=2.0),
            FaultEvent(2.0, CONTAINER_KILL, node=0, function="Ghost"),
        ))
        problems = plan.check(n_servers=2, functions=["WebServ"])
        assert len(problems) == 2
        assert any("out of range" in p for p in problems)
        assert any("Ghost" in p for p in problems)
        # Without a cluster shape, nothing is checkable.
        assert plan.check() == []

    def test_check_flags_overlapping_crash_windows(self):
        plan = FaultPlan((
            FaultEvent(1.0, NODE_CRASH, node=0, duration_s=3.0),
            FaultEvent(2.0, NODE_CRASH, node=0, duration_s=3.0),
            FaultEvent(2.0, NODE_CRASH, node=1, duration_s=3.0),
        ))
        problems = plan.check(n_servers=2)
        assert len(problems) == 1
        assert "overlaps" in problems[0]

    def test_validate_raises_listing_every_problem(self):
        plan = FaultPlan((
            FaultEvent(1.0, NODE_CRASH, node=9, duration_s=2.0),
            FaultEvent(4.0, NODE_CRASH, node=9, duration_s=2.0),
        ))
        with pytest.raises(ValueError, match="invalid fault plan"):
            plan.validate(n_servers=2)
        assert plan.validate(n_servers=10) is plan  # clean shape passes

    def test_calibrated_plans_keep_passing_node_range_checks(self):
        plan = FaultPlan.calibrated(60.0, 3, ["WebServ"], seed=11)
        problems = plan.check(n_servers=3, functions=["WebServ"])
        assert all("overlaps" in p for p in problems)

    def test_json_round_trip_is_identity(self):
        plan = FaultPlan.calibrated(30.0, 2, ["WebServ", "CNNServ"],
                                    seed=4)
        data = plan.to_json()
        import json
        assert json.loads(json.dumps(data)) == data
        assert FaultPlan.from_json(data) == plan

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-event fields"):
            FaultPlan.from_json([{"time_s": 1.0, "kind": NODE_CRASH,
                                  "duration_s": 1.0, "severity": "bad"}])
