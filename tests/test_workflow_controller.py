"""Unit tests for the Workflow Controller (deadlines, DPT, staleness)."""

import pytest

from repro.baselines.powerctrl import proportional_deadlines
from repro.core.config import EcoFaaSConfig
from repro.core.profiles import ProfileStore
from repro.core.workflow_controller import WorkflowController
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.sim import Environment
from repro.workloads.registry import workflow_for


def make_controller(workflow_name="eBank", config=None):
    env = Environment()
    config = config or EcoFaaSConfig()
    store = ProfileStore(FrequencyScale(), PowerModel(), config)
    workflow = workflow_for(workflow_name)
    controller = WorkflowController(env, workflow, store, config)
    return env, store, workflow, controller


def populate(store, workflow, freq=3.0, queue_s=0.0, n=5):
    for fn in workflow.functions:
        profile = store.profile(fn)
        for _ in range(n):
            profile.observe(freq, fn.run_seconds(freq), fn.block_seconds,
                            fn.run_seconds(freq) * 8.0)
        for _ in range(n):
            store.queue_ewma(fn.name).update(queue_s)
    for level in FrequencyScale():
        for _ in range(n):
            store.level_queue_ewma(level).update(queue_s)


class TestDeadlineAssignment:
    def test_proportional_fallback_before_profiles_ready(self):
        env, store, workflow, controller = make_controller()
        deadlines = controller.deadlines(arrival_s=0.0, slo_s=2.0)
        assert deadlines == proportional_deadlines(workflow, 0.0, 2.0)
        assert controller.milp_runs == 0

    def test_milp_split_once_profiles_ready(self):
        env, store, workflow, controller = make_controller()
        populate(store, workflow)
        deadlines = controller.deadlines(arrival_s=10.0, slo_s=2.0)
        assert controller.milp_runs == 1
        values = [deadlines[f.name] for f in workflow.functions]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(12.0)

    def test_cached_split_reused_within_t_update(self):
        env, store, workflow, controller = make_controller(
            config=EcoFaaSConfig(t_update_s=5.0))
        populate(store, workflow)
        controller.deadlines(0.0, 2.0)
        env.run(until=2.0)
        controller.deadlines(2.0, 2.0)
        assert controller.milp_runs == 1  # still fresh

    def test_split_recomputed_after_t_update(self):
        env, store, workflow, controller = make_controller(
            config=EcoFaaSConfig(t_update_s=5.0))
        populate(store, workflow)
        controller.deadlines(0.0, 2.0)
        env.run(until=6.0)
        controller.deadlines(6.0, 2.0)
        assert controller.milp_runs == 2

    def test_slo_change_forces_recompute(self):
        env, store, workflow, controller = make_controller()
        populate(store, workflow)
        controller.deadlines(0.0, 2.0)
        controller.deadlines(0.0, 4.0)
        assert controller.milp_runs == 2

    def test_milp_ablation_never_solves(self):
        env, store, workflow, controller = make_controller(
            config=EcoFaaSConfig(use_milp=False))
        populate(store, workflow)
        deadlines = controller.deadlines(0.0, 2.0)
        assert controller.milp_runs == 0
        assert deadlines == proportional_deadlines(workflow, 0.0, 2.0)

    def test_queueing_pushes_plan_to_higher_frequencies(self):
        env, store, workflow, controller = make_controller("VidAn")
        populate(store, workflow, queue_s=0.0)
        controller.deadlines(0.0, workflow_for("VidAn").slo_seconds())
        relaxed = dict(controller._split.frequencies)

        env2, store2, workflow2, controller2 = make_controller("VidAn")
        populate(store2, workflow2, queue_s=0.5)
        controller2.deadlines(0.0, workflow_for("VidAn").slo_seconds())
        pressured = dict(controller2._split.frequencies)
        assert (sum(pressured.values()) >= sum(relaxed.values()))

    def test_dpt_populated_for_every_level(self):
        env, store, workflow, controller = make_controller()
        populate(store, workflow)
        controller.deadlines(0.0, 2.0)
        for fn in workflow.functions:
            assert controller.dpt.has_function(fn.name)

    def test_energy_of_plan_decreases_with_looser_slo(self):
        env, store, workflow, controller = make_controller("VidAn")
        populate(store, workflow)
        slo_tight = workflow.warm_latency(3.0) * 1.1
        controller.deadlines(0.0, slo_tight)
        tight_energy = controller._split.energy_j
        controller.deadlines(0.0, slo_tight * 10)
        loose_energy = controller._split.energy_j
        assert loose_energy < tight_energy
