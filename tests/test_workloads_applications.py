"""Tests for application workflows and the benchmark registry."""

import pytest

from repro.workloads.applications import APPLICATIONS, Workflow, WorkflowStage
from repro.workloads.functionbench import CNN_SERV, STANDALONE_FUNCTIONS
from repro.workloads.registry import (
    all_benchmarks,
    benchmark_names,
    get_application,
    get_function,
    workflow_for,
)


class TestWorkflowStructure:
    def test_table1_function_counts(self):
        # Table I: MLTune 6, DataAn 8, eBank 6, eBook 7, VidAn 3.
        expected = {"MLTune": 6, "DataAn": 8, "eBank": 6, "eBook": 7,
                    "VidAn": 3}
        for name, count in expected.items():
            assert APPLICATIONS[name].n_functions == count, name

    def test_some_apps_have_parallel_stages(self):
        assert any(len(stage.functions) > 1
                   for stage in APPLICATIONS["MLTune"].stages)
        assert any(len(stage.functions) > 1
                   for stage in APPLICATIONS["DataAn"].stages)

    def test_chain_apps_are_purely_sequential(self):
        assert all(len(stage.functions) == 1
                   for stage in APPLICATIONS["eBank"].stages)
        assert all(len(stage.functions) == 1
                   for stage in APPLICATIONS["VidAn"].stages)

    def test_warm_latency_sums_stage_maxima(self):
        app = APPLICATIONS["eBook"]
        expected = sum(
            max(f.service_seconds(3.0) for f in stage.functions)
            for stage in app.stages)
        assert app.warm_latency(3.0) == pytest.approx(expected)

    def test_parallel_stage_latency_is_slowest_member(self):
        stage = next(stage for stage in APPLICATIONS["MLTune"].stages
                     if len(stage.functions) > 1)
        assert stage.warm_latency(3.0) == pytest.approx(
            max(f.service_seconds(3.0) for f in stage.functions))

    def test_slo_multiple(self):
        app = APPLICATIONS["eBank"]
        assert app.slo_seconds() == pytest.approx(5 * app.warm_latency(3.0))
        with pytest.raises(ValueError):
            app.slo_seconds(multiple=-1.0)

    def test_stage_of(self):
        app = APPLICATIONS["eBank"]
        assert app.stage_of("eBank.auth") == 0
        assert app.stage_of("eBank.log") == 5
        with pytest.raises(KeyError):
            app.stage_of("nope")

    def test_function_lookup(self):
        app = APPLICATIONS["VidAn"]
        assert app.function("VidAn.decode").name == "VidAn.decode"
        with pytest.raises(KeyError):
            app.function("VidAn.missing")

    def test_single_wraps_standalone_function(self):
        wf = Workflow.single(CNN_SERV)
        assert wf.name == "CNNServ"
        assert wf.n_functions == 1
        assert wf.warm_latency(3.0) == pytest.approx(
            CNN_SERV.service_seconds(3.0))

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            Workflow("empty", ())

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            WorkflowStage(())

    def test_duplicate_function_names_rejected(self):
        stage = WorkflowStage((CNN_SERV,))
        with pytest.raises(ValueError):
            Workflow("dup", (stage, stage))


class TestRegistry:
    def test_twelve_benchmarks(self):
        names = benchmark_names()
        assert len(names) == 12
        assert names[:7] == [f.name for f in STANDALONE_FUNCTIONS]
        assert set(names[7:]) == set(APPLICATIONS)

    def test_workflow_for_every_benchmark(self):
        for wf in all_benchmarks():
            assert wf.n_functions >= 1
            assert wf.slo_seconds() > 0

    def test_workflow_for_unknown_raises(self):
        with pytest.raises(KeyError):
            workflow_for("NotABenchmark")

    def test_get_function_finds_app_internals(self):
        assert get_function("eBank.auth").name == "eBank.auth"
        assert get_function("CNNServ") is CNN_SERV
        with pytest.raises(KeyError):
            get_function("ghost")

    def test_get_application(self):
        assert get_application("MLTune").n_functions == 6
        with pytest.raises(KeyError):
            get_application("CNNServ")

    def test_all_function_names_globally_unique(self):
        names = [f.name for wf in all_benchmarks() for f in wf.functions]
        assert len(names) == len(set(names))
