"""repro.cancel units: config validation and retry-budget accounting.

The load-bearing property is token conservation — every token of a
:class:`RetryTokenPool` is in exactly one of {available, spent,
refunded} and the partition sums back to capacity at every instant —
checked both directly and under seeded-random operation sequences
(stdlib ``random``; the property-based satellite of ISSUE 9).
"""

import math
import random

import pytest

from repro.cancel import (
    CancelConfig,
    DeadlineConfig,
    RetryBudget,
    RetryBudgetConfig,
    RetryTokenPool,
)


class TestConfig:
    def test_defaults_arm_every_cancel_point(self):
        deadline = DeadlineConfig()
        assert deadline.slack_s == 0.0
        assert deadline.cancel_queued and deadline.cancel_hedges
        assert deadline.cancel_timeouts and deadline.check_stage_boundary

    def test_full_arms_both_sections(self):
        config = CancelConfig.full()
        assert config.deadline is not None
        assert config.retry_budget is not None
        partial = CancelConfig.full(retry_budget=None)
        assert partial.deadline is not None
        assert partial.retry_budget is None

    def test_empty_config_arms_nothing(self):
        config = CancelConfig()
        assert config.deadline is None and config.retry_budget is None

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("inf")])
    def test_bad_slack_rejected(self, bad):
        with pytest.raises(ValueError):
            DeadlineConfig(slack_s=bad)

    @pytest.mark.parametrize("kwargs", [
        {"ratio": 0.0}, {"ratio": -0.5}, {"ratio": float("nan")},
        {"window_s": 0.0}, {"window_s": -1.0}, {"floor": -1},
    ])
    def test_bad_budget_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryBudgetConfig(**kwargs)

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            DeadlineConfig().slack_s = 1.0


class TestRetryTokenPool:
    def test_starts_full_and_conserving(self):
        pool = RetryTokenPool(3)
        assert pool.available == 3 and pool.spent == 0
        assert pool.conserves()

    def test_grant_moves_available_to_spent(self):
        pool = RetryTokenPool(2)
        assert pool.grant() and pool.grant()
        assert not pool.grant()  # exhausted
        assert (pool.available, pool.spent, pool.refunded) == (0, 2, 0)
        assert pool.conserves()

    def test_refund_retires_rather_than_reuses(self):
        pool = RetryTokenPool(1)
        assert pool.grant()
        pool.refund()
        assert (pool.available, pool.spent, pool.refunded) == (0, 0, 1)
        assert not pool.grant()  # the refunded token is NOT reusable
        assert pool.conserves()

    def test_refund_without_grant_raises(self):
        with pytest.raises(RuntimeError):
            RetryTokenPool(1).refund()

    def test_zero_capacity_never_grants(self):
        pool = RetryTokenPool(0)
        assert not pool.grant()
        assert pool.conserves()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RetryTokenPool(-1)


class TestRetryBudget:
    CFG = RetryBudgetConfig(ratio=0.1, window_s=10.0, floor=2)

    def test_first_window_capacity_is_the_floor(self):
        budget = RetryBudget(self.CFG, now=0.0)
        assert budget.pool.capacity == 2
        assert budget.try_grant(1.0) and budget.try_grant(2.0)
        assert not budget.try_grant(3.0)
        assert budget.denied_total == 1 and budget.granted_total == 2

    def test_window_roll_sizes_capacity_to_first_attempts(self):
        budget = RetryBudget(self.CFG, now=0.0)
        for _ in range(50):
            budget.note_first_attempt(1.0)
        budget.note_first_attempt(10.0)  # crosses the boundary: rolls
        assert budget.rolls == 1
        assert budget.pool.capacity == math.ceil(0.1 * 50)

    def test_floor_applies_to_quiet_windows(self):
        budget = RetryBudget(self.CFG, now=0.0)
        budget.note_first_attempt(1.0)  # 1 first attempt -> ceil(0.1)=1
        assert budget.try_grant(10.5)   # rolled: capacity max(2, 1) == 2
        assert budget.pool.capacity == 2

    def test_idle_gap_rolls_every_crossed_window(self):
        budget = RetryBudget(self.CFG, now=0.0)
        budget.try_grant(35.0)  # 3 boundaries crossed at 10, 20, 30
        assert budget.rolls == 3

    def test_refund_after_roll_only_advances_the_cumulative(self):
        budget = RetryBudget(self.CFG, now=0.0)
        assert budget.try_grant(1.0)
        budget.refund(15.0)  # the granted token's window already rolled
        assert budget.refunded_total == 1
        assert budget.pool.refunded == 0  # fresh pool: nothing to move
        assert budget.pool.conserves()


class TestBudgetProperties:
    """Seeded stdlib-random sequences of note/grant/refund: the pool
    partition must conserve after every operation, and the cumulative
    counters must equal the op-by-op tallies."""

    @pytest.mark.parametrize("seed", range(10))
    def test_conservation_under_random_sequences(self, seed):
        rng = random.Random(seed)
        config = RetryBudgetConfig(
            ratio=rng.choice([0.05, 0.1, 0.25, 0.5]),
            window_s=rng.uniform(0.5, 4.0),
            floor=rng.randint(0, 4))
        now = rng.uniform(0.0, 5.0)
        budget = RetryBudget(config, now=now)
        grants = denies = refunds = firsts = 0
        for _ in range(500):
            now += rng.random() * config.window_s * 0.7
            op = rng.random()
            if op < 0.45:
                budget.note_first_attempt(now)
                firsts += 1
            elif op < 0.85:
                if budget.try_grant(now):
                    grants += 1
                else:
                    denies += 1
            elif grants > refunds:
                budget.refund(now)
                refunds += 1
            pool = budget.pool
            assert pool.conserves(), (seed, pool.__dict__)
            assert (pool.available + pool.spent + pool.refunded
                    == pool.capacity)
        assert budget.granted_total == grants
        assert budget.denied_total == denies
        assert budget.refunded_total == refunds
        # The current window can never hold more spent tokens than were
        # ever granted.
        assert budget.pool.spent <= budget.granted_total

    @pytest.mark.parametrize("seed", range(5))
    def test_grants_bounded_by_window_capacities(self, seed):
        """Total grants can never exceed the sum of every window's
        capacity, each of which is max(floor, ceil(ratio * firsts))."""
        rng = random.Random(1000 + seed)
        config = RetryBudgetConfig(ratio=0.1, window_s=1.0,
                                   floor=rng.randint(1, 3))
        budget = RetryBudget(config, now=0.0)
        now, total_firsts = 0.0, 0
        for _ in range(300):
            now += rng.random() * 0.4
            if rng.random() < 0.5:
                budget.note_first_attempt(now)
                total_firsts += 1
            else:
                budget.try_grant(now)
        # Loose but sound: every window's capacity is at most
        # max(floor, ceil(ratio * all first attempts ever)).
        per_window_max = max(config.floor,
                             math.ceil(config.ratio * total_firsts))
        assert budget.granted_total <= (budget.rolls + 1) * per_window_max
