"""Tracing must not perturb the simulation (the zero-overhead contract).

Two guarantees:

* a traced run produces **bit-identical metrics** to an untraced run of
  the same seed (the tracer only reads state, never mutates or draws
  random numbers);
* two traced runs of the same seed produce **byte-identical** trace
  files (the exporters are fully deterministic).
"""

import pytest

from repro import obs
from repro.baselines import BaselineSystem
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults.plan import FaultPlan
from repro.platform.cluster import ClusterConfig

CONFIG = ClusterConfig(n_servers=2, drain_s=4.0)


def small_trace():
    return make_load_trace("low", 2, 6.0, seed=3)


def run_once(system_factory, traced, fault_plan=None):
    """One run; returns (cluster, tracer-or-None)."""
    tracer = obs.install(obs.Tracer()) if traced else None
    try:
        cluster = run_cluster(system_factory(), small_trace(), CONFIG,
                              fault_plan=fault_plan)
    finally:
        obs.uninstall()
    return cluster, tracer


def metrics_fingerprint(cluster):
    """Every observable outcome of a run, in a comparable form."""
    m = cluster.metrics
    return {
        "functions": m.function_records,
        "workflows": m.workflow_records,
        "retries": m.retries,
        "timeouts": m.timeouts,
        "failures": m.failures,
        "energy": [s.meter.total_j for s in cluster.servers],
    }


@pytest.mark.parametrize("system_factory", [
    BaselineSystem,
    lambda: EcoFaaSSystem(EcoFaaSConfig()),
], ids=["baseline", "ecofaas"])
def test_traced_run_is_bit_identical_to_untraced(system_factory):
    untraced, _ = run_once(system_factory, traced=False)
    traced, tracer = run_once(system_factory, traced=True)
    assert metrics_fingerprint(traced) == metrics_fingerprint(untraced)
    # And the tracer actually recorded the run.
    assert tracer.spans_of("invocation")
    assert tracer.spans_of("phase")
    assert tracer.counters


def test_traced_chaos_run_is_bit_identical_to_untraced():
    from repro.platform.reliability import ReliabilityPolicy

    def plan():
        return FaultPlan.calibrated(6.0, 2, ["WebServ", "CNNServ"], seed=5)
    chaos_config = ClusterConfig(
        n_servers=2, drain_s=4.0,
        reliability=ReliabilityPolicy(max_retries=8, backoff_base_s=0.05))
    results = []
    for traced in (False, True):
        tracer = obs.install(obs.Tracer()) if traced else None
        try:
            cluster = run_cluster(EcoFaaSSystem(EcoFaaSConfig()),
                                  small_trace(), chaos_config,
                                  fault_plan=plan())
        finally:
            obs.uninstall()
        results.append(cluster)
    untraced, traced_cluster = results
    assert metrics_fingerprint(traced_cluster) == \
        metrics_fingerprint(untraced)
    assert tracer.instants_named("fault_node_crash")


def test_two_traced_runs_write_byte_identical_files(tmp_path):
    paths = []
    for i in range(2):
        _, tracer = run_once(lambda: EcoFaaSSystem(EcoFaaSConfig()),
                             traced=True)
        path = tmp_path / f"trace{i}.json"
        obs.write_chrome_trace(tracer, str(path))
        obs.write_epoch_metrics(tracer, str(tmp_path / f"epochs{i}.csv"))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    assert (tmp_path / "epochs0.csv").read_bytes() == \
           (tmp_path / "epochs1.csv").read_bytes()
    assert obs.validate_file(str(paths[0])) == []


def test_cli_trace_and_report(tmp_path):
    """The --trace/--epoch-metrics/report plumbing end to end."""
    from repro.cli import main
    _, tracer = run_once(lambda: EcoFaaSSystem(EcoFaaSConfig()), traced=True)
    trace_path = tmp_path / "trace.json"
    obs.write_chrome_trace(tracer, str(trace_path))
    assert main(["report", str(trace_path), "--top", "3"]) == 0


def test_epoch_metrics_requires_trace_flag(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["fig16", "--epoch-metrics", "x.csv"])
