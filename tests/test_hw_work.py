"""Tests for the two-component work model, incl. conservation properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.work import WorkUnit


class TestWorkUnit:
    def test_duration_combines_compute_and_memory(self):
        work = WorkUnit(gcycles=3.0, mem_seconds=0.5)
        assert work.duration(3.0) == pytest.approx(1.0 + 0.5)
        assert work.duration(1.5) == pytest.approx(2.0 + 0.5)

    def test_compute_bound_scales_inversely_with_frequency(self):
        work = WorkUnit(gcycles=6.0, mem_seconds=0.0)
        assert work.duration(1.2) / work.duration(3.0) == pytest.approx(2.5)

    def test_memory_bound_is_frequency_insensitive(self):
        work = WorkUnit(gcycles=0.0, mem_seconds=1.0)
        assert work.duration(1.2) == work.duration(3.0) == 1.0

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            WorkUnit(gcycles=-1.0)
        with pytest.raises(ValueError):
            WorkUnit(gcycles=1.0, mem_seconds=-0.1)

    def test_duration_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            WorkUnit(1.0).duration(0.0)

    def test_consume_full_duration_finishes(self):
        work = WorkUnit(gcycles=2.0, mem_seconds=1.0)
        work.consume(2.0, work.duration(2.0))
        assert work.done

    def test_consume_half_leaves_half(self):
        work = WorkUnit(gcycles=2.0, mem_seconds=1.0)
        total = work.duration(2.0)
        work.consume(2.0, total / 2)
        assert work.gcycles == pytest.approx(1.0)
        assert work.mem_seconds == pytest.approx(0.5)
        assert work.duration(2.0) == pytest.approx(total / 2)

    def test_consume_more_than_remaining_raises(self):
        work = WorkUnit(gcycles=1.0)
        with pytest.raises(ValueError):
            work.consume(1.0, 2.0)

    def test_consume_negative_raises(self):
        with pytest.raises(ValueError):
            WorkUnit(1.0).consume(1.0, -0.5)

    def test_consume_zero_is_noop(self):
        work = WorkUnit(gcycles=1.0, mem_seconds=0.5)
        work.consume(2.0, 0.0)
        assert work.gcycles == 1.0 and work.mem_seconds == 0.5

    def test_copy_is_independent(self):
        template = WorkUnit(gcycles=1.0, mem_seconds=0.5)
        clone = template.copy()
        clone.consume(1.0, 0.5)
        assert template.gcycles == 1.0

    def test_from_profile_roundtrips_duration(self):
        work = WorkUnit.from_profile(
            seconds_at_max=0.1, compute_fraction=0.7, max_freq_ghz=3.0)
        assert work.duration(3.0) == pytest.approx(0.1)
        # At half frequency the compute part doubles, the memory part stays.
        assert work.duration(1.5) == pytest.approx(0.07 * 2 + 0.03)

    def test_from_profile_validates_fraction(self):
        with pytest.raises(ValueError):
            WorkUnit.from_profile(0.1, 1.5, 3.0)
        with pytest.raises(ValueError):
            WorkUnit.from_profile(-0.1, 0.5, 3.0)


# ---------------------------------------------------------------------------
# Properties: consumption conserves work regardless of how the execution is
# chopped into slices or which frequencies the slices run at.
# ---------------------------------------------------------------------------
frequencies = st.floats(min_value=0.5, max_value=4.0)
fractions = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=6)


@given(
    gcycles=st.floats(min_value=0.0, max_value=100.0),
    mem=st.floats(min_value=0.0, max_value=10.0),
    freq=frequencies,
    slice_fractions=fractions,
)
def test_piecewise_consumption_sums_to_total_duration(
        gcycles, mem, freq, slice_fractions):
    """Consuming in arbitrary slices at one frequency takes exactly as long
    as running to completion in one go."""
    work = WorkUnit(gcycles, mem)
    total = work.duration(freq)
    elapsed = 0.0
    for fraction in slice_fractions:
        chunk = work.duration(freq) * fraction
        work.consume(freq, chunk)
        elapsed += chunk
    elapsed += work.duration(freq)
    work.consume(freq, work.duration(freq))
    assert work.done
    assert elapsed == pytest.approx(total, rel=1e-9)


@given(
    gcycles=st.floats(min_value=0.1, max_value=100.0),
    mem=st.floats(min_value=0.0, max_value=10.0),
    f1=frequencies,
    f2=frequencies,
    fraction=st.floats(min_value=0.01, max_value=0.99),
)
def test_frequency_change_midway_preserves_component_ratio(
        gcycles, mem, f1, f2, fraction):
    """A mid-run frequency change rescales both components by the same
    factor (uniform interleaving), so the compute/memory ratio survives."""
    work = WorkUnit(gcycles, mem)
    ratio_before = work.mem_seconds / work.gcycles
    work.consume(f1, work.duration(f1) * fraction)
    assert work.mem_seconds / work.gcycles == pytest.approx(
        ratio_before, rel=1e-6)
    # And the rest finishes at the second frequency without error.
    work.consume(f2, work.duration(f2))
    assert work.done


@given(
    gcycles=st.floats(min_value=0.1, max_value=100.0),
    freq_lo=st.floats(min_value=0.5, max_value=2.0),
    delta=st.floats(min_value=0.1, max_value=2.0),
)
def test_higher_frequency_is_never_slower(gcycles, freq_lo, delta):
    work = WorkUnit(gcycles, mem_seconds=1.0)
    assert work.duration(freq_lo + delta) <= work.duration(freq_lo)
