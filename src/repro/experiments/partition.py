"""Partition: failure detection, controller failover, fencing under cuts.

Not a paper figure — the high-availability companion to the chaos
experiment. EcoFaaS runs a deterministic partition scenario with the
``repro.ha`` layer armed:

* at t=10 s the link between node 1 and the frontend is cut both ways
  for 30 s (the classic symmetric partition: work stranded there must be
  detected, re-dispatched, and its late completions fenced);
* at t=12 s the lease-holding global controller ``ctl0`` crashes for
  20 s (failover: a standby must take over within one lease period, and
  pool resizing must keep happening under the new epoch);
* at t=20 s node 2's *uplink only* is cut for 8 s (an asymmetric cut:
  the node keeps executing dispatched work but its heartbeats and
  results vanish — the false-suspicion + duplicate-fencing path);
* at t=40 s the by-then leader ``ctl1`` is partitioned from the frontend
  for 10 s while staying connected to the nodes (the stale-leader case:
  ``ctl0`` wins the next election under epoch 3, and every resize claim
  the partitioned ``ctl1`` still makes under epoch 2 is fenced).

Each seed also runs a fault-free control arm as the latency reference.
The acceptance bar, checked across >= 3 seeds: controller loss healed
within one lease period, bounded p99 under the 30 s partition, and zero
duplicate workflow completions.
"""

from __future__ import annotations

from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import (
    ExperimentResult,
    make_load_trace,
    run_cluster,
)
from repro.faults import CONTROLLER_CRASH, NETWORK_PARTITION, FaultEvent, FaultPlan
from repro.ha import HAConfig
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy

#: Scenario timeline (seconds into the run).
PARTITION_AT_S = 10.0
PARTITION_HEAL_S = 30.0
CONTROLLER_CRASH_AT_S = 12.0
CONTROLLER_DOWNTIME_S = 20.0
ASYM_CUT_AT_S = 20.0
ASYM_HEAL_S = 8.0
STALE_LEADER_AT_S = 40.0
STALE_LEADER_HEAL_S = 10.0


def ha_config() -> HAConfig:
    """The partition run's HA operating point."""
    return HAConfig(lease_s=2.0, phi_threshold=8.0, dead_after_s=5.0,
                    n_controllers=3)


def reliability_policy() -> ReliabilityPolicy:
    """Retry hard and write off attempts that outlive the partition's
    detection horizon, so stranded work turns into journal re-dispatches
    instead of lost invocations."""
    return ReliabilityPolicy(max_retries=8, backoff_base_s=0.05,
                             backoff_multiplier=2.0, backoff_jitter=0.1)


def partition_plan() -> FaultPlan:
    """The deterministic three-act scenario described in the module doc."""
    return FaultPlan((
        FaultEvent(time_s=PARTITION_AT_S, kind=NETWORK_PARTITION, node=1,
                   duration_s=PARTITION_HEAL_S, direction="both"),
        FaultEvent(time_s=CONTROLLER_CRASH_AT_S, kind=CONTROLLER_CRASH,
                   node=0, duration_s=CONTROLLER_DOWNTIME_S),
        FaultEvent(time_s=ASYM_CUT_AT_S, kind=NETWORK_PARTITION, node=2,
                   duration_s=ASYM_HEAL_S, direction="out"),
        FaultEvent(time_s=STALE_LEADER_AT_S, kind=NETWORK_PARTITION,
                   endpoint="ctl1", duration_s=STALE_LEADER_HEAL_S,
                   direction="both"),
    ))


def run_one(seed: int, with_faults: bool, duration_s: float,
            n_servers: int):
    """One EcoFaaS run, HA armed, with or without the partition plan."""
    config = ClusterConfig(
        n_servers=n_servers, seed=seed, drain_s=15.0,
        reliability=reliability_policy(), ha=ha_config())
    trace = make_load_trace("low", n_servers, duration_s, seed=seed + 1)
    plan = partition_plan() if with_faults else None
    return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config,
                       fault_plan=plan)


def run(quick: bool = True, seed: int = 0,
        ha: bool = False) -> ExperimentResult:
    """``ha=True`` (the CLI's ``--ha``) runs only the fault arm — the CI
    smoke mode; the default also runs the fault-free control arm."""
    result = ExperimentResult(
        "Partition",
        "Failure detection, controller failover, and fencing under"
        " network partitions (repro.ha)")
    duration = 60.0 if quick else 300.0
    n_servers = 3 if quick else 5
    lease_s = ha_config().lease_s
    seeds = [seed, seed + 1, seed + 2]

    for s in seeds:
        arms = [("partition", True)]
        if not ha:
            arms.append(("control", False))
        for arm, with_faults in arms:
            cluster = run_one(s, with_faults, duration, n_servers)
            metrics = cluster.metrics
            runtime = cluster.ha
            result.add(
                seed=s,
                arm=arm,
                completed=metrics.completed_workflows(),
                failed=metrics.failed_workflows,
                p99_s=round(metrics.latency_p99(), 3),
                suspicions=metrics.ha_suspicions,
                false_pos=metrics.ha_false_suspicions,
                suspect_lat_s=round(metrics.ha_mean_suspicion_latency_s(),
                                    3),
                failovers=metrics.ha_failovers,
                failover_s=round(metrics.ha_mean_failover_s(), 3),
                epoch=runtime.controllers.epoch,
                redispatches=metrics.ha_redispatches,
                dup_fenced=metrics.ha_duplicates_fenced,
                dup_completions=metrics.ha_duplicate_completions,
                fenced=metrics.ha_fenced_decisions,
                frozen=metrics.ha_frozen_decisions,
                energy_j=round(cluster.total_energy_j, 1),
            )

    result.note(f"scenario: symmetric node1<->frontend cut at"
                f" t={PARTITION_AT_S:.0f}s for {PARTITION_HEAL_S:.0f}s;"
                f" leader ctl0 crash at t={CONTROLLER_CRASH_AT_S:.0f}s for"
                f" {CONTROLLER_DOWNTIME_S:.0f}s; asymmetric node2 uplink"
                f" cut at t={ASYM_CUT_AT_S:.0f}s for {ASYM_HEAL_S:.0f}s;"
                f" leader ctl1 partitioned from the frontend at"
                f" t={STALE_LEADER_AT_S:.0f}s for"
                f" {STALE_LEADER_HEAL_S:.0f}s (stale-leader fencing)")
    result.note(f"failover_s must stay within one lease period"
                f" ({lease_s:.1f}s): controller loss is healed by the"
                f" deterministic lowest-id election on lease expiry")
    result.note("dup_completions must be 0 on every row: the idempotency"
                " journal fences duplicate completions from false"
                " suspicion")
    result.note("the HA layer is opt-in: without ClusterConfig.ha every"
                " other experiment is bit-identical to pre-HA builds")
    return result
