"""Fig. 6: throughput under ConstFreq vs SwitchFreq.

Both environments run every invocation at the same mid frequency; the only
difference is that SwitchFreq re-issues the frequency write from the
sandboxed userspace at every context switch, paying 10–20 ms each time
(Section III-4). The paper measures a 24.1 % average throughput loss.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.frequency import DvfsCostModel
from repro.hardware.power import PowerModel
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.functionbench import STANDALONE_FUNCTIONS
from repro.workloads.model import FunctionModel

#: The constant frequency of the experiment (paper: 2.5 GHz; our scale's
#: nearest level is 2.4 GHz).
FREQ_GHZ = 2.4
N_CORES = 8


def _run_environment(fn: FunctionModel, switch_at_dispatch: bool,
                     duration_s: float, seed: int) -> Dict[str, float]:
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    rng = np.random.default_rng(seed)
    dvfs = DvfsCostModel(rng=rng)
    cores = [Core(env, i, power, meter, FREQ_GHZ) for i in range(N_CORES)]
    # SwitchFreq's userspace write happens on every dispatch even though
    # the value does not change — modelled as extra context-switch cost.
    extra = dvfs.sandbox_cost() if switch_at_dispatch else 0.0
    pool = CorePoolScheduler(env, cores, frequency_ghz=FREQ_GHZ,
                             context_switch_s=5e-6 + extra)
    completed = [0]

    def on_done(event):
        completed[0] += 1

    def driver():
        # Saturating open-loop load: always more work than capacity.
        rate = 2.0 * N_CORES / fn.run_seconds(FREQ_GHZ)
        while env.now < duration_s:
            yield env.timeout(float(rng.exponential(1.0 / rate)))
            spec = fn.sample_invocation(rng)
            job = Job(env, spec, fn.name, arrival_s=env.now)
            job.done.callbacks.append(on_done)
            pool.submit(job)

    env.process(driver(), name="driver")
    env.run(until=duration_s)
    return {"throughput_rps": completed[0] / duration_s}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 6",
        "Throughput: ConstFreq vs SwitchFreq (sandboxed switch each"
        " context switch)")
    duration = 20.0 if quick else 120.0
    for fn in STANDALONE_FUNCTIONS:
        const = _run_environment(fn, False, duration, seed)
        switch = _run_environment(fn, True, duration, seed)
        result.add(
            function=fn.name,
            const_rps=round(const["throughput_rps"], 1),
            norm_throughput_switch=round(
                switch["throughput_rps"] / const["throughput_rps"], 3),
        )
    loss = 1.0 - float(np.mean(result.column("norm_throughput_switch")))
    result.note(f"mean throughput loss from sandboxed switching:"
                f" {100 * loss:.1f}% (paper: 24.1%)")
    result.note("short functions (WebServ) lose the most, as in the paper")
    return result
