"""Table I: the evaluated serverless benchmarks."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.workloads.applications import APPLICATIONS
from repro.workloads.functionbench import STANDALONE_FUNCTIONS

_DESCRIPTIONS = {
    "WebServ": "Processing JSON file fetched from the storage",
    "ImgProc": "Image processing: Resize image",
    "CNNServ": "ML model serving: CNN-based image classification",
    "LRServ": "ML model serving: Logistic regression",
    "RNNServ": "ML model serving: RNN-based word generation",
    "VidProc": "Video processing: Apply gray-scale effect",
    "MLTrain": "ML model training: Logistic regression",
    "MLTune": "Tuning an ML model",
    "DataAn": "Wage-data analysis workload",
    "eBank": "Withdraw money from an account",
    "eBook": "A hotel reservation service",
    "VidAn": "A video analysis system",
}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Table I", "Serverless benchmarks used in the evaluation")
    for fn in STANDALONE_FUNCTIONS:
        result.add(
            benchmark=fn.name,
            kind="function",
            description=_DESCRIPTIONS[fn.name],
            functions=1,
            warm_latency_ms=round(fn.service_seconds(3.0) * 1000, 2),
            idle_fraction=round(fn.idle_fraction, 2),
        )
    for name, workflow in APPLICATIONS.items():
        result.add(
            benchmark=name,
            kind="application",
            description=_DESCRIPTIONS[name],
            functions=workflow.n_functions,
            warm_latency_ms=round(workflow.warm_latency(3.0) * 1000, 2),
            idle_fraction=round(
                sum(f.idle_fraction for f in workflow.functions)
                / workflow.n_functions, 2),
        )
    result.note("function counts match Table I: MLTune 6, DataAn 8,"
                " eBank 6, eBook 7, VidAn 3")
    return result
