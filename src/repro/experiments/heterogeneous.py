"""Section VI-E3: transfer learning across heterogeneous server types.

Delay-Power Tables profiled on one microarchitecture (Haswell) do not
carry to another (Broadwell, Skylake). This experiment reproduces the
paper's measurement: fit a linear-regression transfer model with a quarter
of the target machine's profiles and evaluate the prediction accuracy on
the rest — the paper reports 93.1 %.
"""

from __future__ import annotations

import numpy as np

from repro.core.transfer import transfer_profiles
from repro.experiments.common import ExperimentResult
from repro.hardware.frequency import FrequencyScale
from repro.workloads.registry import all_benchmarks

#: Relative cycle-time factors of the paper's server generations (newer
#: parts retire the same work in fewer cycles at equal clocks).
MACHINES = {"Broadwell": 0.92, "Skylake": 0.80}


def _profiles(speed: float, noise: float, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    table = {}
    for workflow in all_benchmarks():
        for fn in workflow.functions:
            table[fn.name] = {
                level: fn.run_seconds(level) * speed
                * float(np.exp(rng.normal(0, noise)))
                for level in FrequencyScale()
            }
    return table


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Heterogeneous servers (VI-E3)",
        "Transfer-learning accuracy: Haswell profiles -> other machines")
    noise = 0.02
    haswell = _profiles(1.0, noise, seed)
    functions = sorted(haswell)
    quarter = functions[: max(2, len(functions) // 4)]
    for machine, speed in MACHINES.items():
        target = _profiles(speed, noise, seed + 1)
        subset = {fn: target[fn] for fn in quarter}
        model, predicted = transfer_profiles(haswell, subset)
        held_out = [fn for fn in functions if fn not in quarter]
        source_vals, target_vals = [], []
        for fn in held_out:
            for level, value in target[fn].items():
                source_vals.append(haswell[fn][level])
                target_vals.append(value)
        accuracy = model.accuracy(source_vals, target_vals)
        result.add(machine=machine,
                   train_fraction=round(len(quarter) / len(functions), 2),
                   slope=round(model.slope, 3),
                   r2=round(model.r2, 4),
                   accuracy_pct=round(100 * accuracy, 1))
    result.note("paper anchor: 93.1% accuracy with 1/4 of the target"
                " machine's samples")

    # End-to-end: EcoFaaS on a mixed Haswell+Skylake cluster, profiles
    # bridged across types at run time.
    from repro.core import EcoFaaSSystem
    from repro.experiments.common import run_cluster
    from repro.platform.cluster import ClusterConfig
    from repro.traces.poisson import (PoissonLoadConfig,
                                      generate_poisson_trace)
    duration = 20.0 if quick else 120.0
    trace = generate_poisson_trace(PoissonLoadConfig(
        ["CNNServ", "WebServ", "eBank"], rate_rps=30.0,
        duration_s=duration, seed=seed + 1))
    cluster = run_cluster(
        EcoFaaSSystem(), trace,
        ClusterConfig(n_servers=2, seed=seed, drain_s=30.0,
                      machine_mix=(("haswell", 1.0), ("skylake", 1.25))))
    metrics = cluster.metrics
    result.add(machine="mixed-cluster(e2e)",
               train_fraction=1.0,
               slope=0.0, r2=0.0,
               accuracy_pct=round(
                   100 * (1 - metrics.slo_violation_rate()), 1))
    result.note("mixed-cluster row: % of workflows meeting their SLO when"
                " EcoFaaS schedules across Haswell+Skylake with bridged"
                " profiles")
    return result
