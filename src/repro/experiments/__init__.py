"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(quick=True, seed=0) -> ExperimentResult``. Quick
mode uses scaled-down durations/cluster sizes so the whole evaluation
regenerates in minutes; passing ``quick=False`` runs closer to the paper's
scale. The :mod:`repro.cli` entry point prints any experiment's rows as a
text table.
"""

from repro.experiments.common import (
    ExperimentResult,
    make_load_trace,
    make_azure_benchmark_trace,
    run_three_systems,
)

__all__ = [
    "ExperimentResult",
    "make_azure_benchmark_trace",
    "make_load_trace",
    "run_three_systems",
]

#: Registry of experiment ids → module name (populated by the CLI lazily).
EXPERIMENTS = {
    "table1": "repro.experiments.table1_benchmarks",
    "fig02": "repro.experiments.fig02_freq_sensitivity",
    "fig03": "repro.experiments.fig03_resource_sensitivity",
    "fig04": "repro.experiments.fig04_input_prediction",
    "fig05": "repro.experiments.fig05_rtc_vs_cs",
    "fig06": "repro.experiments.fig06_switch_overhead",
    "fig07": "repro.experiments.fig07_trace_cdf",
    "fig12": "repro.experiments.fig12_energy_trace",
    "fig13": "repro.experiments.fig13_energy_load",
    "fig14": "repro.experiments.fig14_freq_timeline",
    "fig15": "repro.experiments.fig15_freq_distribution",
    "fig16": "repro.experiments.fig16_tail_latency",
    "fig17": "repro.experiments.fig17_throughput",
    "fig18": "repro.experiments.fig18_latency_vs_load",
    "fig19": "repro.experiments.fig19_prediction_error",
    "fig20": "repro.experiments.fig20_update_sensitivity",
    "fig21": "repro.experiments.fig21_pool_granularity",
    "fig22": "repro.experiments.fig22_variability",
    "fig23": "repro.experiments.fig23_colocation",
    "overheads": "repro.experiments.section8d_overheads",
    "ablations": "repro.experiments.ablations",
    "heterogeneous": "repro.experiments.heterogeneous",
    "chaos": "repro.experiments.chaos",
    "overload": "repro.experiments.overload",
    "partition": "repro.experiments.partition",
    "tenancy": "repro.experiments.tenancy",
    "fuzzsmoke": "repro.experiments.fuzz_smoke",
    "retrystorm": "repro.experiments.retrystorm",
}
