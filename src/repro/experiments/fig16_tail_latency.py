"""Fig. 16: tail (p99) latency of the three systems, averaged across loads.

Paper anchors: Baseline+PowerCtrl inflates the tail badly (frequent
sandboxed frequency changes on the critical path); EcoFaaS lands ~5 %
below Baseline and 34.8 % below Baseline+PowerCtrl.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    make_load_trace,
    run_three_systems,
)
from repro.platform.cluster import ClusterConfig
from repro.workloads.registry import benchmark_names

LEVELS = ("low", "medium", "high")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 16",
        "Normalized p99 latency per benchmark, averaged across loads")
    duration = 40.0 if quick else 300.0
    n_servers = 3 if quick else 20
    # p99 per (level, system, benchmark) + overall per (level, system).
    tails = {}
    overall = {}
    for level in LEVELS:
        trace = make_load_trace(level, n_servers, duration, seed=seed + 1)
        clusters = run_three_systems(
            trace, ClusterConfig(n_servers=n_servers, seed=seed,
                                 drain_s=30.0))
        for name in SYSTEM_ORDER:
            metrics = clusters[name].metrics
            overall[(level, name)] = metrics.latency_p99()
            for benchmark in metrics.benchmarks():
                tails[(level, name, benchmark)] = metrics.latency_p99(
                    benchmark)

    for benchmark in benchmark_names():
        averaged = {}
        for name in SYSTEM_ORDER:
            values = [tails[(level, name, benchmark)]
                      for level in LEVELS
                      if (level, name, benchmark) in tails]
            if values:
                averaged[name] = float(np.mean(values))
        if "Baseline" not in averaged:
            continue
        base = averaged["Baseline"]
        row = {"benchmark": benchmark, "baseline_p99_s": round(base, 3)}
        for name in SYSTEM_ORDER:
            row[f"norm_{name}"] = round(averaged.get(name, 0.0) / base, 3)
        result.add(**row)

    # Cluster-wide tail per load — the paper's headline metric (the
    # per-benchmark normalization above is dominated by short benchmarks'
    # small absolute latencies).
    for level in LEVELS:
        base = overall[(level, "Baseline")]
        row = {"benchmark": f"ALL({level})", "baseline_p99_s": round(base, 3)}
        for name in SYSTEM_ORDER:
            row[f"norm_{name}"] = round(overall[(level, name)] / base, 3)
        result.add(**row)

    for name in SYSTEM_ORDER:
        values = [row[f"norm_{name}"] for row in result.rows
                  if not str(row["benchmark"]).startswith("ALL(")]
        result.note(f"{name} geo-mean normalized p99 (per benchmark):"
                    f" {float(np.exp(np.mean(np.log(values)))):.3f}")
    result.note("paper anchors (overall tail): EcoFaaS 0.95x Baseline and"
                " 0.652x Baseline+PowerCtrl")
    return result
