"""Fig. 3: response time at 3 GHz under LLC-way / memory-bandwidth cuts.

The paper's point: unlike frequency, cache and bandwidth barely matter —
at 4 LLC ways the worst function loses at most 6 %, at 20 % bandwidth at
most 4 %. Core frequency is the knob.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, measure_unloaded
from repro.hardware.cache import ResourceThrottleModel
from repro.workloads.functionbench import STANDALONE_FUNCTIONS

LLC_WAYS = (2, 4, 8, 12, 16)
BW_FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 3",
        "Normalized response time at 3 GHz vs (a) LLC ways, (b) mem bandwidth")
    n = 10 if quick else 60
    model = ResourceThrottleModel()
    for fn in STANDALONE_FUNCTIONS:
        reference = measure_unloaded(fn, 3.0, n_invocations=n, seed=seed)
        for ways in LLC_WAYS:
            multiplier = model.memory_time_multiplier(
                ways, 1.0, fn.llc_sensitivity, fn.bw_sensitivity)
            sample = measure_unloaded(fn, 3.0, n_invocations=n, seed=seed,
                                      mem_time_multiplier=multiplier)
            result.add(function=fn.name, knob="llc_ways", setting=ways,
                       norm_response_time=round(
                           sample.service_s / reference.service_s, 4))
        for bw in BW_FRACTIONS:
            multiplier = model.memory_time_multiplier(
                16, bw, fn.llc_sensitivity, fn.bw_sensitivity)
            sample = measure_unloaded(fn, 3.0, n_invocations=n, seed=seed,
                                      mem_time_multiplier=multiplier)
            result.add(function=fn.name, knob="membw", setting=bw,
                       norm_response_time=round(
                           sample.service_s / reference.service_s, 4))
    result.note("paper anchors: worst case +6% at 4 ways, +4% at 20%"
                " bandwidth")
    return result
