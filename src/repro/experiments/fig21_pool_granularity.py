"""Fig. 21: number of core pools under different frequency granularities.

With 300 MHz steps (the platform's native levels) a node runs 1–6 pools;
50 MHz steps fragment the server into many small pools (worse tail and
energy), 600 MHz steps leave too few levels for precise tuning (worse
energy).
"""

from __future__ import annotations

import numpy as np

from repro.core import EcoFaaSSystem
from repro.experiments.common import (
    ExperimentResult,
    make_azure_benchmark_trace,
    run_cluster,
)
from repro.hardware.frequency import FrequencyScale
from repro.platform.cluster import ClusterConfig

GRANULARITIES_MHZ = (50, 300, 600)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 21",
        "Concurrent core pools per node vs frequency granularity")
    duration = 60.0 if quick else 300.0
    trace = make_azure_benchmark_trace(duration, seed=seed)
    stats = {}
    for step_mhz in GRANULARITIES_MHZ:
        scale = FrequencyScale.from_granularity(step_mhz)
        cluster = run_cluster(
            EcoFaaSSystem(), trace,
            ClusterConfig(n_servers=2, seed=seed, drain_s=20.0,
                          scale=scale))
        counts = [count for node in cluster.nodes
                  for _, count in node.pool_count_samples]
        metrics = cluster.metrics
        stats[step_mhz] = {
            "energy": cluster.total_energy_j,
            "p99": metrics.latency_p99(),
        }
        result.add(
            granularity_mhz=step_mhz,
            levels=len(scale),
            pools_mean=round(float(np.mean(counts)), 2),
            pools_p95=int(np.percentile(counts, 95)),
            pools_max=int(max(counts)),
            energy_kj=round(cluster.total_energy_j / 1000, 2),
            p99_s=round(metrics.latency_p99(), 3),
        )
    ref = stats[300]
    for step_mhz in (50, 600):
        result.note(
            f"{step_mhz}MHz vs 300MHz: energy"
            f" {stats[step_mhz]['energy'] / ref['energy']:.3f}x, p99"
            f" {stats[step_mhz]['p99'] / ref['p99']:.3f}x")
    result.note("paper anchors: 300MHz yields 1-6 pools; 50MHz up to 10"
                " pools (+9% energy, +6% tail); 600MHz up to 4 pools"
                " (+16% energy)")
    return result
