"""Fig. 19: EcoFaaS energy vs injected execution-time overprediction.

Bounded overprediction makes EcoFaaS run faster than necessary. The paper
measures +22/+16/+8 % energy at 80 % error for low/medium/high load — the
impact shrinks at high load because the system already runs fast.
"""

from __future__ import annotations

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.experiments.common import (
    ExperimentResult,
    make_load_trace,
    run_cluster,
)
from repro.platform.cluster import ClusterConfig

ERRORS = (0.0, 0.2, 0.4, 0.8)
LEVELS = ("low", "medium", "high")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 19",
        "EcoFaaS energy vs average execution-time overprediction error")
    duration = 40.0 if quick else 300.0
    n_servers = 2 if quick else 20
    energies = {}
    for level in LEVELS:
        trace = make_load_trace(level, n_servers, duration, seed=seed + 1)
        for error in ERRORS:
            system = EcoFaaSSystem(
                EcoFaaSConfig(overprediction_error=error))
            cluster = run_cluster(
                system, trace,
                ClusterConfig(n_servers=n_servers, seed=seed, drain_s=20.0))
            energies[(level, error)] = cluster.total_energy_j
    for level in LEVELS:
        base = energies[(level, 0.0)]
        row = {"load": level, "exact_kj": round(base / 1000, 2)}
        for error in ERRORS:
            row[f"err{int(error * 100)}pct"] = round(
                energies[(level, error)] / base, 3)
        result.add(**row)
    result.note("paper anchors at 80% error: +22% (low), +16% (medium),"
                " +8% (high); impact shrinks with load")
    return result
