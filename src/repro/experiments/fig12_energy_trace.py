"""Fig. 12: energy of the three systems under real-world invocation patterns.

The Azure-like trace's 12 most popular functions are mapped to the 12
benchmarks and replayed on the cluster. The paper measures
Baseline+PowerCtrl at −33 % and EcoFaaS at −60 % total energy vs Baseline.
"""

from __future__ import annotations

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    make_azure_benchmark_trace,
    run_three_systems,
)
from repro.platform.cluster import ClusterConfig
from repro.workloads.registry import benchmark_names


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 12",
        "Normalized energy per benchmark with real-world invocation traces")
    duration = 60.0 if quick else 600.0
    n_servers = 5
    trace = make_azure_benchmark_trace(duration, seed=seed)
    clusters = run_three_systems(
        trace, ClusterConfig(n_servers=n_servers, seed=seed, drain_s=20.0))

    base_by_benchmark = clusters["Baseline"].energy_by_benchmark()
    for benchmark in benchmark_names():
        base = base_by_benchmark.get(benchmark, 0.0)
        if base <= 0:
            continue
        row = {"benchmark": benchmark,
               "baseline_kj": round(base / 1000, 3)}
        for name in SYSTEM_ORDER:
            energy = clusters[name].energy_by_benchmark().get(benchmark, 0.0)
            row[f"norm_{name}"] = round(energy / base, 3)
        result.add(**row)

    base_total = clusters["Baseline"].total_energy_j
    row = {"benchmark": "TOTAL(cluster)",
           "baseline_kj": round(base_total / 1000, 3)}
    for name in SYSTEM_ORDER:
        row[f"norm_{name}"] = round(
            clusters[name].total_energy_j / base_total, 3)
    result.add(**row)

    base_active = clusters["Baseline"].energy_by_component()["core_active"]
    row = {"benchmark": "TOTAL(core-active)",
           "baseline_kj": round(base_active / 1000, 3)}
    for name in SYSTEM_ORDER:
        row[f"norm_{name}"] = round(
            clusters[name].energy_by_component()["core_active"]
            / base_active, 3)
    result.add(**row)

    result.note("paper anchors: PowerCtrl 0.67x, EcoFaaS 0.40x of Baseline"
                " (per-benchmark energy)")
    result.note("cluster totals include always-on uncore/DRAM power, which"
                " dilutes relative savings; the per-benchmark rows are the"
                " paper's metric")
    return result
