"""Fig. 13: energy of the three systems at Low/Medium/High Poisson load.

Paper anchors vs Baseline: PowerCtrl −18/−31/−27 %, EcoFaaS −56/−61/−52 %
at 25/50/70 % CPU utilisation. All bars normalized to Baseline-High.
"""

from __future__ import annotations

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    make_load_trace,
    run_three_systems,
)
from repro.platform.cluster import ClusterConfig

LEVELS = ("low", "medium", "high")


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 13",
        "Normalized energy at Low/Medium/High load (vs Baseline-High)")
    duration = 40.0 if quick else 300.0
    n_servers = 3 if quick else 20
    totals = {}
    actives = {}
    for level in LEVELS:
        trace = make_load_trace(level, n_servers, duration, seed=seed + 1)
        clusters = run_three_systems(
            trace, ClusterConfig(n_servers=n_servers, seed=seed,
                                 drain_s=20.0))
        for name in SYSTEM_ORDER:
            totals[(level, name)] = clusters[name].total_energy_j
            actives[(level, name)] = (
                clusters[name].energy_by_component()["core_active"])

    base_high = totals[("high", "Baseline")]
    active_high = actives[("high", "Baseline")]
    for level in LEVELS:
        row = {"load": level}
        for name in SYSTEM_ORDER:
            row[f"norm_{name}"] = round(totals[(level, name)] / base_high, 3)
        for name in SYSTEM_ORDER:
            row[f"active_{name}"] = round(
                actives[(level, name)] / active_high, 3)
        row["baseline_kj"] = round(totals[(level, "Baseline")] / 1000, 2)
        result.add(**row)
    result.note("paper anchors (vs Baseline at same load): PowerCtrl"
                " -18/-31/-27%, EcoFaaS -56/-61/-52%")
    return result
