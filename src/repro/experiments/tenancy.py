"""Tenancy: mixed-tenant contention under a shrinking power cap.

Not a paper figure — the ``repro.tenancy`` evaluation (ROADMAP item 4):
three tenants partition the twelve benchmarks, each with a per-tenant
energy budget over a sliding window, and the same contention trace is
replayed under a cluster power cap swept from 100% down to 40% of the
uncapped draw. What the sweep shows:

* **energy vs cap** — cluster energy is monotonically non-increasing as
  the cap shrinks: every governor step moves the whole cluster down the
  frequency/core ladder, and at every DVFS level of the platform's scale
  the marginal joules-per-unit-work shrink with frequency once the idle
  baseline is accounted (the CI smoke asserts the monotonicity);
* **fairness** — the Jain index of the tenants' energy shares, computed
  from the settled bill, stays near the uncapped value because the cap
  actuates cluster-wide rather than per-tenant;
* **SLO-miss vs cap** — misses of SLO-bearing tenants grow as the cap
  bites: work runs slower at the capped frequencies;
* **billing** — each run settles into a per-tenant bill whose joules sum
  to the ledger's run total within 1e-6 (conservation by construction:
  unattributed joules are spread pro-rata over the attributed totals).

The calibration run (row ``cap_pct=100``) measures the uncapped average
cluster draw; the capped rows arm a :class:`PowerCapGovernor` at the
given percentage of it. All runs replay the identical arrival trace and
every tenancy decision is a pure function of simulation time and metered
counters, so the whole table is seed-deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import obs
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import ExperimentResult, run_cluster
from repro.platform.cluster import ClusterConfig
from repro.tenancy import (
    PowerCapConfig,
    TenancyConfig,
    TenantSpec,
    jain_index,
)
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.workloads.registry import all_benchmarks

#: Power-cap sweep, as a fraction of the measured uncapped draw.
CAP_FRACTIONS = (1.0, 0.85, 0.7, 0.55, 0.4)

#: Offered utilization: mild contention, so budgets and caps both bite.
CONTENTION_UTILIZATION = 1.2

#: The three tenants partitioning the twelve Table-1 benchmarks.
TENANT_BENCHMARKS = (
    ("interactive", ("WebServ", "ImgProc", "eBank", "eBook")),
    ("analytics", ("CNNServ", "LRServ", "RNNServ", "DataAn")),
    ("batch", ("MLTrain", "MLTune", "VidProc", "VidAn")),
)


def make_tenants(n_servers: int,
                 window_s: float = 5.0) -> Tuple[TenantSpec, ...]:
    """The evaluation's tenant set, budgets scaled to the cluster size.

    Budgets are joules per ``window_s`` sliding window, sized off a
    ~160 W/server contention draw split three ways: *interactive* gets
    headroom above its fair share (throttles should be rare), *analytics*
    sits right at it (throttles under contention), and *batch* — the
    best-effort tenant — gets half of a fair share, so its arrivals are
    the first shed when the budget meter catches up with it.
    """
    fair_share_j = 160.0 * n_servers * window_s / 3.0
    return (
        TenantSpec("interactive", TENANT_BENCHMARKS[0][1],
                   budget_j=1.5 * fair_share_j, window_s=window_s),
        TenantSpec("analytics", TENANT_BENCHMARKS[1][1],
                   budget_j=1.0 * fair_share_j, window_s=window_s),
        TenantSpec("batch", TENANT_BENCHMARKS[2][1],
                   budget_j=0.5 * fair_share_j, window_s=window_s,
                   best_effort=True),
    )


def make_tenancy(n_servers: int,
                 cap_w: Optional[float] = None) -> TenancyConfig:
    """A full tenancy policy; ``cap_w`` arms the power-cap governor."""
    # A fast governor tick (vs the 2 s default) lets shallow caps reach
    # equilibrium and deep caps bottom out within the short quick-mode
    # runs, so the sweep's rows actually differ.
    return TenancyConfig(
        tenants=make_tenants(n_servers),
        power_cap=(PowerCapConfig(cap_w=cap_w, period_s=0.5)
                   if cap_w is not None else None))


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Tenancy",
        "Mixed-tenant contention under a shrinking cluster power cap")
    duration = 10.0 if quick else 40.0
    n_servers = 2 if quick else 4
    cores = 20
    drain_s = 6.0
    best_effort = set(TENANT_BENCHMARKS[2][1])

    rate = CONTENTION_UTILIZATION * rate_for_utilization(
        all_benchmarks(), 1.0, total_cores=n_servers * cores)
    trace = generate_poisson_trace(PoissonLoadConfig(
        tuple(b for _, bs in TENANT_BENCHMARKS for b in bs),
        rate_rps=rate, duration_s=duration, seed=seed + 29))

    # Billing needs a ledger; arm a private tracer when none is active.
    private = obs.active_tracer() is None
    if private:
        obs.install(obs.Tracer(ledger=obs.EnergyLedger()))
    tracer = obs.active_tracer()
    try:
        nominal_w: Optional[float] = None
        for fraction in CAP_FRACTIONS:
            cap_w = (None if nominal_w is None
                     else round(fraction * nominal_w, 1))
            config = ClusterConfig(
                n_servers=n_servers, cores_per_server=cores, seed=seed,
                drain_s=drain_s,
                tenancy=make_tenancy(n_servers, cap_w=cap_w))
            cluster = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                                  config)
            energy_j = cluster.total_energy_j
            if nominal_w is None:
                # Calibration: the 100% row runs uncapped and defines
                # the nominal draw the capped rows are fractions of.
                nominal_w = energy_j / (duration + drain_s)
                cap_w = round(nominal_w, 1)
            metrics = cluster.metrics
            bill = cluster.tenancy.bills[-1] if cluster.tenancy.bills \
                else None
            billed = [row for row in (bill or {}).get("tenants", ())
                      if row["tenant"] != "(unattributed)"]
            slo_records = [r for r in metrics.workflow_records
                           if r.benchmark not in best_effort]
            result.add(
                cap_pct=int(round(fraction * 100)),
                cap_w=cap_w,
                energy_j=round(energy_j, 1),
                cap_steps=metrics.power_cap_steps,
                jain=round(jain_index([row["energy_j"]
                                       for row in billed]), 4)
                if billed else 1.0,
                slo_miss=sum(1 for r in slo_records if not r.met_slo),
                throttles=metrics.tenant_throttles,
                shed_be=sum(count for bench, count
                            in metrics.shed_by_benchmark.items()
                            if bench in best_effort),
                cost_usd=round(bill["total_usd"], 6) if bill else 0.0,
                billed_j=round(bill["total_j"], 1) if bill else 0.0,
            )
    finally:
        if private:
            obs.uninstall()

    result.note("cap_pct 100 is the uncapped calibration run; its average"
                " draw defines the watts the capped rows are fractions of")
    result.note("energy_j is monotonically non-increasing down the sweep:"
                " every cap step lowers the cluster frequency ceiling, and"
                " lower levels burn fewer joules per unit of work"
                " (CI-asserted)")
    result.note("jain: Jain fairness index of the tenants' billed energy"
                " shares (1.0 = perfectly even)")
    result.note("billed_j equals the run's ledger total within 1e-6:"
                " unattributed joules are spread pro-rata, so the bill"
                " conserves energy by construction")
    result.note("throttles: over-budget enforcement decisions (batch is"
                " shed outright, SLO-bearing tenants are rate-limited)")
    return result
