"""Ablations of EcoFaaS's design choices (DESIGN.md §4).

Each row disables exactly one mechanism and reruns the medium-load mix:

* ``no-elastic``   — pools frozen at the initial single max-frequency pool;
* ``rtc``          — run-to-completion inside pools (no switch-on-idle);
* ``no-milp``      — proportional SLO split instead of the MILP;
* ``no-prewarm``   — cold starts stay on the critical path;
* ``no-mlp``       — EWMA-only prediction (no input awareness);
* ``no-correct``   — no corrective action at dispatch.
"""

from __future__ import annotations

from typing import Dict

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.experiments.common import (
    ExperimentResult,
    make_load_trace,
    run_cluster,
)
from repro.platform.cluster import ClusterConfig

VARIANTS: Dict[str, EcoFaaSConfig] = {
    "full": EcoFaaSConfig(),
    "no-elastic": EcoFaaSConfig(elastic=False),
    "rtc": EcoFaaSConfig(run_to_completion=True),
    "no-milp": EcoFaaSConfig(use_milp=False),
    "no-prewarm": EcoFaaSConfig(prewarm=False),
    "no-mlp": EcoFaaSConfig(use_input_model=False),
}


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Ablations", "EcoFaaS with individual mechanisms disabled"
        " (medium load)")
    duration = 40.0 if quick else 300.0
    n_servers = 3 if quick else 20
    trace = make_load_trace("medium", n_servers, duration, seed=seed + 1)
    reference = None
    for variant, config in VARIANTS.items():
        cluster = run_cluster(
            EcoFaaSSystem(config), trace,
            ClusterConfig(n_servers=n_servers, seed=seed, drain_s=30.0))
        metrics = cluster.metrics
        energy = cluster.total_energy_j
        if variant == "full":
            reference = energy
        result.add(
            variant=variant,
            energy_kj=round(energy / 1000, 2),
            norm_energy=round(energy / reference, 3),
            p99_s=round(metrics.latency_p99(), 3),
            slo_miss_pct=round(100 * metrics.slo_violation_rate(), 1),
            cold_starts=metrics.cold_start_count(),
        )
    result.note("expected: every ablation costs energy and/or tail"
                " latency relative to 'full'")
    return result
