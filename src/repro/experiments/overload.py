"""Overload: graceful degradation past saturation, guards on vs off.

Not a paper figure — the robustness companion to Fig. 18: EcoFaaS driven
by offered load swept from comfortable utilization to several times the
cluster's capacity, once with no guards (the plain system) and once with
the full ``repro.guard`` stack armed (admission control with per-function
token buckets and EWT-driven brownouts, circuit breakers, safe-mode
fallbacks, controller checkpoints).

What graceful degradation looks like in the numbers:

* **guards off** — past saturation the backlog compounds: end-of-run
  in-flight work explodes, the p99 of what does complete grows with the
  offered load, and goodput collapses as every admitted workflow queues
  behind an unbounded backlog.
* **guards on** — the brownout sheds best-effort arrivals first, then
  rate-limits SLO-bearing ones at the deepest level; what *is* admitted
  completes with a bounded p99, goodput holds at the saturation plateau
  instead of collapsing, and below saturation not a single SLO-bearing
  workflow is shed (the CI smoke asserts exactly that).

Runs are seed-deterministic: both arms replay the identical arrival
trace per load point, and every guard decision is a pure function of
simulation time and counters.
"""

from __future__ import annotations

from typing import Tuple

from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import ExperimentResult, run_cluster
from repro.guard import AdmissionConfig, GuardConfig
from repro.platform.cluster import ClusterConfig
from repro.platform.metrics import percentile
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.workloads.registry import all_benchmarks, benchmark_names

#: Offered utilization sweep: below, at, and far past saturation.
UTILIZATIONS = (0.4, 0.8, 1.5, 2.5, 3.5)

#: Brownout thresholds (EWT-seconds per core) used by the guarded arm.
BROWNOUT_EWT_S = (0.4, 1.2)


def best_effort_benchmarks() -> Tuple[str, ...]:
    """The benchmark sacrificed first in a brownout (fixed, documented)."""
    return (sorted(benchmark_names())[-1],)


def guard_config(n_servers: int, cores_per_server: int) -> GuardConfig:
    """The guarded arm's policy, sized to the cluster's capacity.

    Each benchmark's token bucket sustains its fair share of the
    cluster's full saturation throughput, so sub-saturation Poisson
    bursts ride on the bucket margin and the buckets only bite once the
    offered load genuinely exceeds what the machines can serve.
    """
    sustainable = rate_for_utilization(
        all_benchmarks(), 1.0, total_cores=n_servers * cores_per_server)
    per_benchmark = max(sustainable / len(benchmark_names()), 0.5)
    return GuardConfig.full(admission=AdmissionConfig(
        rate_rps=per_benchmark,
        burst=max(2.0 * per_benchmark, 4.0),
        brownout_ewt_s=BROWNOUT_EWT_S,
        best_effort=best_effort_benchmarks()))


def run(quick: bool = True, seed: int = 0, tenancy: bool = False,
        power_cap=None) -> ExperimentResult:
    result = ExperimentResult(
        "Overload",
        "Goodput and tail latency past saturation, guards on vs off")
    duration = 15.0 if quick else 60.0
    n_servers = 2 if quick else 5
    cores = 20
    best_effort = set(best_effort_benchmarks())
    guard = guard_config(n_servers, cores)
    tenancy_config = None
    if tenancy or power_cap is not None:
        # Opt-in (--tenancy / --power-cap WATTS): tenant energy budgets
        # and, with a cap, the power-cap governor ride on the same sweep.
        from repro.experiments.tenancy import make_tenancy
        tenancy_config = make_tenancy(n_servers, cap_w=power_cap)

    saturation_rate = rate_for_utilization(all_benchmarks(), 1.0,
                                           total_cores=n_servers * cores)
    for utilization in UTILIZATIONS:
        rate = saturation_rate * utilization
        trace = generate_poisson_trace(PoissonLoadConfig(
            benchmark_names(), rate_rps=rate, duration_s=duration,
            seed=seed + 17))
        offered = sum(trace.invocation_counts().values())
        for guards_on in (False, True):
            config = ClusterConfig(
                n_servers=n_servers, cores_per_server=cores, seed=seed,
                drain_s=10.0, guard=guard if guards_on else None,
                tenancy=tenancy_config)
            cluster = run_cluster(
                EcoFaaSSystem(EcoFaaSConfig()), trace, config)
            metrics = cluster.metrics
            slo_records = [r for r in metrics.workflow_records
                           if r.benchmark not in best_effort]
            slo_latencies = [r.latency_s for r in slo_records]
            goodput = sum(1 for r in slo_records if r.met_slo)
            result.add(
                utilization=utilization,
                guards="on" if guards_on else "off",
                offered=offered,
                completed=metrics.completed_workflows(),
                goodput=goodput,
                shed_be=sum(count for bench, count
                            in metrics.shed_by_benchmark.items()
                            if bench in best_effort),
                shed_slo=sum(count for bench, count
                             in metrics.shed_by_benchmark.items()
                             if bench not in best_effort),
                p99_slo_s=round(percentile(slo_latencies, 99.0), 3),
                stranded=cluster.inflight,
                energy_j=round(cluster.total_energy_j, 1),
                **({"throttles": metrics.tenant_throttles,
                    "cap_steps": metrics.power_cap_steps}
                   if tenancy_config is not None else {}),
            )

    result.note("goodput: SLO-bearing workflows completed within their SLO")
    result.note("offered utilization > 1 is past saturation: the cluster"
                " cannot serve every arrival")
    result.note("shed_be / shed_slo: admission drops at the frontend —"
                " best-effort arrivals go first (brownout level 1), SLO"
                " work is only rate-limited at level 2")
    result.note("stranded: workflows still in flight when the run ended —"
                " the guards-off queue blow-up signal")
    result.note("guards change nothing below saturation: zero SLO-bearing"
                " sheds at sub-saturation load (CI-asserted)")
    return result
