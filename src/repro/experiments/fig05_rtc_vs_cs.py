"""Fig. 5: energy under Run-To-Completion vs Context-Switch-on-Idle.

Both environments pick per-invocation frequencies against the same SLO
(5x unloaded execution); the only difference is whether a core blocked on
I/O is handed to another ready invocation. Exploiting the idle time lets
more invocations run at lower frequencies — the paper measures 42.3 % less
energy, growing with idle time and load.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.workloads.functionbench import STANDALONE_FUNCTIONS
from repro.workloads.model import FunctionModel

#: Per-function offered loads as a fraction of one server's
#: run-to-completion capacity (the paper sweeps low→high and averages; the
#: RTC penalty grows with load as queue buildup forces high frequencies).
LOADS = (0.5, 0.75, 0.9)
N_CORES = 8


def _run_environment(fn: FunctionModel, utilization: float,
                     duration_s: float, run_to_completion: bool,
                     seed: int) -> Dict[str, float]:
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    scale = FrequencyScale()
    cores = [Core(env, i, power, meter, scale.max) for i in range(N_CORES)]
    pool = CorePoolScheduler(
        env, cores, frequency_ghz=scale.max,
        switch_on_idle=not run_to_completion,
        per_job_frequency=True,
        switch_cost=lambda: 50e-6)
    slo = fn.slo_seconds()
    # Load is relative to the run-to-completion capacity (a core is held
    # through the blocks), so both environments are feasible and the
    # difference is purely how the idle time is exploited.
    rate = utilization * N_CORES / fn.service_seconds(scale.max)
    rng = np.random.default_rng(seed)
    completed = []

    def choose_frequency(job: Job) -> float:
        """Oracle per-invocation choice against the SLO (both systems)."""
        wait = pool.estimated_queue_seconds()
        budget = slo - wait
        for level in scale.levels:
            service = (job.remaining_run_seconds(level)
                       + job.spec.total_block_seconds)
            if service <= budget:
                return level
        return scale.max

    def driver():
        while env.now < duration_s:
            yield env.timeout(float(rng.exponential(1.0 / rate)))
            spec = fn.sample_invocation(rng)
            job = Job(env, spec, fn.name, arrival_s=env.now,
                      deadline_s=env.now + slo)
            freq = choose_frequency(job)
            job.chosen_freq_ghz = freq
            if run_to_completion:
                # RTC queue waits include the blocked time of jobs ahead.
                job.registered_run_seconds = (
                    job.remaining_run_seconds(freq)
                    + job.spec.total_block_seconds)
            else:
                job.registered_run_seconds = job.remaining_run_seconds(freq)
            job.done.callbacks.append(lambda ev: completed.append(ev.value))
            pool.submit(job)

    env.process(driver(), name="driver")
    env.run()  # no periodic processes: the heap drains every invocation
    for core in cores:
        core.finalize()
    latencies = [job.latency_s for job in completed]
    return {
        "energy_j": meter.total_j,
        "p99_s": float(np.percentile(latencies, 99)) if latencies else 0.0,
        "completed": len(completed),
        "met_slo": float(np.mean([job.met_deadline for job in completed]))
        if completed else 0.0,
    }


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 5",
        "Total energy: Run-To-Completion vs Context-Switch-on-Idle"
        " (normalized, averaged across loads)")
    duration = 20.0 if quick else 120.0
    for fn in STANDALONE_FUNCTIONS:
        rtc_energy, cs_energy = [], []
        for load in LOADS:
            rtc = _run_environment(fn, load, duration, True, seed)
            cs = _run_environment(fn, load, duration, False, seed)
            rtc_energy.append(rtc["energy_j"])
            cs_energy.append(cs["energy_j"])
        mean_rtc = float(np.mean(rtc_energy))
        mean_cs = float(np.mean(cs_energy))
        result.add(
            function=fn.name,
            idle_fraction=round(fn.idle_fraction, 2),
            norm_energy_rtc=1.0,
            norm_energy_cs=round(mean_cs / mean_rtc, 3),
            rtc_energy_kj=round(mean_rtc / 1000, 3),
        )
    savings = 1.0 - float(np.mean(result.column("norm_energy_cs")))
    result.add(function="average", idle_fraction=0.0, norm_energy_rtc=1.0,
               norm_energy_cs=round(1.0 - savings, 3), rtc_energy_kj=0.0)
    result.note(f"mean energy saving of context-switch-on-idle:"
                f" {100 * savings:.1f}% (paper: 42.3%)")
    return result
