"""Fig. 7: CDF of distinct functions per window in a small cluster.

From the Azure Functions traces: within 1 s the system runs ~3 different
functions on average (up to ~36); within 10 s up to ~52 — i.e. the mix of
co-located functions changes far faster than any static core-to-frequency
assignment could track.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.traces.azure import AzureTraceConfig, generate_azure_trace

WINDOWS = (("1s", 1.0), ("10s", 10.0), ("1min", 60.0), ("10min", 600.0))


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 7",
        "Distinct functions per time window (Azure-like small cluster)")
    duration = 1200.0 if quick else 7200.0
    trace = generate_azure_trace(
        AzureTraceConfig.small_cluster(duration_s=duration, seed=seed))
    for label, window_s in WINDOWS:
        if window_s > duration / 2:
            continue
        counts = np.array(trace.distinct_per_window(window_s))
        result.add(
            window=label,
            mean=round(float(counts.mean()), 2),
            p50=int(np.percentile(counts, 50)),
            p90=int(np.percentile(counts, 90)),
            p99=int(np.percentile(counts, 99)),
            max=int(counts.max()),
        )
    result.note("paper anchors: ~3 distinct functions/second on average;"
                " tails reaching tens per second (36 in 1s, 52 in 10s)")
    result.note("cluster-wide load spikes in the generator reproduce the"
                " extreme tails (35 in 1s vs the paper's 36)")
    return result
