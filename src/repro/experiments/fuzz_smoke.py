"""Fuzz smoke: a few seeded chaos-fuzz trials with all invariants armed.

Not a paper figure — the verification companion to the chaos/overload/
partition/tenancy panels: each row is one fuzzer trial (random fault
schedule + config draw from ``repro.verify.fuzz``) run with every
cross-layer invariant monitor armed and the energy ledger's
conservation check live. On a correct tree every trial reports zero
violations; any violation raises, so ``repro all`` marks the panel
FAIL. The full campaign (more trials, shrinking, artifacts) lives
behind ``repro fuzz``.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    from repro.verify import fuzz as fuzz_mod
    result = ExperimentResult(
        "FuzzSmoke",
        "Seeded chaos-fuzz trials with all invariant monitors armed")
    trials = 3 if quick else 10
    failing = []
    for trial in range(trials):
        spec = fuzz_mod.sample_spec(trial, seed)
        outcome = fuzz_mod.run_trial(spec)
        names = sorted({v["invariant"] for v in outcome["violations"]})
        result.add(
            trial=trial,
            faults=len(spec["plan"]),
            servers=spec["n_servers"],
            utilization=spec["utilization"],
            ha=spec["ha"] is not None,
            tenancy=spec["tenancy"] is not None,
            burst=spec["burst"] is not None,
            violations=len(outcome["violations"]),
            invariants=",".join(names) if names else "-",
        )
        if names:
            failing.append((trial, names))
    result.note(f"{trials} trials at seed {seed}; every trial runs with"
                " the full invariant registry armed (clock, energy"
                " conservation, exactly-once lifecycle, breaker legality,"
                " HA fencing, tenant budgets)")
    result.note("zero violations expected on a correct tree; use"
                " 'repro fuzz' for the full campaign with shrinking")
    if failing:
        raise RuntimeError(
            f"fuzz smoke found invariant violations: "
            + "; ".join(f"trial {t}: {', '.join(names)}"
                        for t, names in failing))
    return result
