"""Fig. 14: average core frequency over time, Baseline vs EcoFaaS.

During peak load, Baseline sits pinned at the top frequency while EcoFaaS
fluctuates well below it, re-tuned every T_refresh.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    make_azure_benchmark_trace,
    make_systems,
    run_cluster,
)
from repro.platform.cluster import ClusterConfig


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 14",
        "Average core frequency over time during peak load (GHz)")
    duration = 40.0 if quick else 300.0
    trace = make_azure_benchmark_trace(duration, seed=seed)
    config = ClusterConfig(n_servers=2, seed=seed, drain_s=10.0)
    systems = make_systems()
    timelines = {}
    for name in ("Baseline", "EcoFaaS"):
        cluster = run_cluster(systems[name], trace, config,
                              sample_period_s=1.0)
        samples = cluster.servers[0].timeline.samples
        timelines[name] = samples
        # Report a decimated series plus the run-long average.
        step = max(1, len(samples) // 20)
        for t, freq in samples[::step]:
            result.add(system=name, time_s=round(t, 1),
                       avg_freq_ghz=round(freq, 3))
    for name, samples in timelines.items():
        loaded = [f for t, f in samples if 5.0 <= t <= duration]
        result.add(system=name, time_s=-1.0,
                   avg_freq_ghz=round(float(np.mean(loaded)), 3))
    result.note("rows with time_s=-1 hold the loaded-window average;"
                " paper shape: EcoFaaS always below Baseline's 3.0 GHz,"
                " fluctuating with each T_refresh")
    return result
