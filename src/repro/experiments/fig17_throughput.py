"""Fig. 17/18: throughput of the three systems.

Throughput = highest sustained load whose tail latency stays below the
SLO (5x unloaded execution). The paper finds EcoFaaS ~on par with Baseline
and 1.8x Baseline+PowerCtrl on average; Fig. 18 shows the CNNServ
latency-vs-load curves with PowerCtrl collapsing at ~350 RPS while
Baseline/EcoFaaS sustain ~850 RPS.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    make_systems,
    run_cluster,
)
from repro.platform.cluster import ClusterConfig
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace
from repro.workloads.registry import benchmark_names, workflow_for


def measure_tail(system_name: str, benchmark: str, rate_rps: float,
                 duration_s: float, seed: int,
                 n_servers: int) -> Optional[float]:
    """Steady-state p99 latency of one benchmark at one offered load.

    Requests arriving in the warmup prefix (first 25 % of the trace) are
    excluded: they carry cold-start latency, which the paper's hour-long
    runs amortise but a short simulated ramp would report as the tail.
    Returns ``inf`` when the system saturated (backlog never drained).
    """
    trace = generate_poisson_trace(PoissonLoadConfig(
        [benchmark], rate_rps=rate_rps, duration_s=duration_s,
        seed=seed))
    system = make_systems()[system_name]
    cluster = run_cluster(system, trace,
                          ClusterConfig(n_servers=n_servers, seed=seed,
                                        drain_s=duration_s))
    metrics = cluster.metrics
    if metrics.completed_workflows() < 0.9 * len(trace):
        return float("inf")  # saturated: backlog never drained
    warmup = 0.25 * duration_s
    latencies = [r.latency_s for r in metrics.workflow_records
                 if r.benchmark == benchmark and r.arrival_s >= warmup]
    if not latencies:
        return float("inf")
    return float(np.percentile(latencies, 99))


def rate_grid(benchmark: str, n_servers: int, points: int) -> List[float]:
    """Geometric grid bracketing the benchmark's single-server capacity."""
    workflow = workflow_for(benchmark)
    core_s = sum(f.run_seconds(3.0) for f in workflow.functions)
    capacity = n_servers * 20 / core_s
    return list(np.geomspace(0.05 * capacity, 1.2 * capacity, points))


def throughput_for(system_name: str, benchmark: str, duration_s: float,
                   seed: int, n_servers: int,
                   points: int) -> Dict[str, float]:
    slo = workflow_for(benchmark).slo_seconds()
    best = 0.0
    curve = []
    for rate in rate_grid(benchmark, n_servers, points):
        # Cap the event count per measurement: fast benchmarks reach
        # thousands of RPS and do not need tens of thousands of samples
        # for a stable p99.
        capped = max(4.0, min(duration_s, 4000.0 / rate))
        tail = measure_tail(system_name, benchmark, rate, capped,
                            seed, n_servers)
        curve.append((rate, tail))
        if tail is not None and tail <= slo:
            best = rate
    return {"throughput_rps": best, "curve": curve, "slo_s": slo}


def run(quick: bool = True, seed: int = 0,
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 17",
        "Throughput (max RPS with p99 <= SLO), normalized to Baseline")
    duration = 12.0 if quick else 120.0
    n_servers = 1
    points = 4 if quick else 9
    names = benchmarks or (
        ["WebServ", "CNNServ", "eBank"] if quick
        else benchmark_names())
    for benchmark in names:
        values = {}
        for system_name in SYSTEM_ORDER:
            values[system_name] = throughput_for(
                system_name, benchmark, duration, seed, n_servers,
                points)["throughput_rps"]
        base = values["Baseline"]
        if base == 0:
            continue
        result.add(
            benchmark=benchmark,
            baseline_rps=round(base, 1),
            **{f"norm_{name}": round(values[name] / base, 3)
               for name in SYSTEM_ORDER})
    powerctrl = [row["norm_Baseline+PowerCtrl"] for row in result.rows]
    eco = [row["norm_EcoFaaS"] for row in result.rows]
    if powerctrl and float(np.mean(powerctrl)) > 0:
        result.note(
            f"EcoFaaS vs PowerCtrl mean throughput ratio:"
            f" {float(np.mean(eco)) / float(np.mean(powerctrl)):.2f}x"
            " (paper: 1.8x)")
    elif powerctrl:
        result.note("Baseline+PowerCtrl met the SLO at no measured load"
                    " point (paper shape: its throughput collapses)")
    return result
