"""Fig. 4: input-aware execution-time prediction error.

For each function, train the 3-layer network once on the *selected*
(relevant) input features and once on *all* features, then measure the
prediction error |E−A|/A on held-out inputs. The paper finds 3.6 % with
selected features and 3.8 % with all features — so EcoFaaS trains on all
features and spares developers the annotation burden.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.mlp import MLPRegressor
from repro.experiments.common import ExperimentResult
from repro.workloads.functionbench import STANDALONE_FUNCTIONS
from repro.workloads.model import FunctionModel


def _ground_truth_times(fn: FunctionModel, rows: List[dict],
                        rng: np.random.Generator) -> np.ndarray:
    """True execution times for sampled inputs (with the model's noise)."""
    times = []
    for row in rows:
        multiplier = fn.input_model.time_multiplier(row)
        noise = float(np.exp(fn.run_noise_cv * rng.standard_normal()))
        times.append(fn.run_seconds_at_max * multiplier * noise)
    return np.array(times)


def _train_and_error(fn: FunctionModel, feature_names: List[str],
                     n_train: int, n_test: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    space = fn.input_model.space
    train_rows = [space.sample(rng) for _ in range(n_train)]
    test_rows = [space.sample(rng) for _ in range(n_test)]
    y_train = _ground_truth_times(fn, train_rows, rng)
    y_test = _ground_truth_times(fn, test_rows, rng)
    x_train = np.array([[row[n] for n in feature_names]
                        for row in train_rows])
    x_test = np.array([[row[n] for n in feature_names]
                       for row in test_rows])
    model = MLPRegressor(len(feature_names), seed=seed)
    for _ in range(80):
        idx = rng.choice(n_train, size=min(32, n_train), replace=False)
        model.partial_fit(x_train[idx], y_train[idx])
    predictions = model.predict(x_test)
    return float(np.mean(np.abs(predictions - y_test) / y_test))


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 4",
        "Prediction error |E-A|/A with selected vs all input features")
    n_train = 300 if quick else 1500
    n_test = 100 if quick else 500
    rng = np.random.default_rng(seed)
    for fn in STANDALONE_FUNCTIONS:
        space = fn.input_model.space
        selected_error = _train_and_error(
            fn, space.relevant_names, n_train, n_test, seed)
        all_error = _train_and_error(
            fn, space.feature_names, n_train, n_test, seed)
        # The ratio of longest to shortest execution time (bar annotations).
        sample_rows = [space.sample(rng) for _ in range(500)]
        times = _ground_truth_times(fn, sample_rows, rng)
        result.add(
            function=fn.name,
            error_selected_pct=round(100 * selected_error, 2),
            error_all_pct=round(100 * all_error, 2),
            time_ratio=round(float(times.max() / times.min()), 1),
        )
    mean_selected = float(np.mean(result.column("error_selected_pct")))
    mean_all = float(np.mean(result.column("error_all_pct")))
    result.add(function="average",
               error_selected_pct=round(mean_selected, 2),
               error_all_pct=round(mean_all, 2), time_ratio=0.0)
    result.note("paper anchors: average 3.6% (selected) vs 3.8% (all)")
    return result
