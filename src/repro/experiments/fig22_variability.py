"""Fig. 22: prediction error vs execution-time variability.

Datasets with increasing input dispersion raise the normalized standard
deviation of execution times; the input-aware model's error stays largely
flat, creeping up ~2 % only for the most variable functions (VidProc).
"""

from __future__ import annotations

import numpy as np

from repro.core.mlp import MLPRegressor
from repro.experiments.common import ExperimentResult
from repro.workloads.functionbench import STANDALONE_FUNCTIONS

DISPERSIONS = (0.25, 0.5, 1.0, 1.5, 2.0)


def _dataset(fn, dispersion, n, rng):
    rows = [fn.input_model.space.sample(rng, dispersion) for _ in range(n)]
    times = np.array([
        fn.run_seconds_at_max * fn.input_model.time_multiplier(row)
        * float(np.exp(fn.run_noise_cv * rng.standard_normal()))
        for row in rows
    ])
    names = fn.input_model.space.feature_names
    x = np.array([[row[k] for k in names] for row in rows])
    return x, times


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 22",
        "Prediction error vs execution-time variability (std/max)")
    n_train = 300 if quick else 1200
    n_test = 120 if quick else 400
    for fn in STANDALONE_FUNCTIONS:
        for dispersion in DISPERSIONS:
            rng = np.random.default_rng(seed)
            x_train, y_train = _dataset(fn, dispersion, n_train, rng)
            x_test, y_test = _dataset(fn, dispersion, n_test, rng)
            variability = float(y_train.std() / y_train.max())
            model = MLPRegressor(x_train.shape[1], seed=seed)
            for _ in range(80):
                idx = rng.choice(n_train, size=32, replace=False)
                model.partial_fit(x_train[idx], y_train[idx])
            predictions = model.predict(x_test)
            error = float(np.mean(np.abs(predictions - y_test) / y_test))
            result.add(function=fn.name, dispersion=dispersion,
                       variability=round(variability, 3),
                       error_pct=round(100 * error, 2))
    result.note("paper shape: error largely flat in variability; worst"
                " functions (VidProc-like) degrade by ~2% absolute")
    return result
