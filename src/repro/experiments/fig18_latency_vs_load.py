"""Fig. 18: CNNServ tail latency as the load ramps, for the three systems.

The paper's curves: Baseline and EcoFaaS stay below the SLO until ~850 RPS
while Baseline+PowerCtrl crosses it at ~350 RPS (sandboxed frequency
switches eat the capacity).
"""

from __future__ import annotations

from repro.experiments.common import SYSTEM_ORDER, ExperimentResult
from repro.experiments.fig17_throughput import measure_tail, rate_grid
from repro.workloads.registry import workflow_for

BENCHMARK = "CNNServ"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 18",
        f"{BENCHMARK} p99 latency vs offered load (dashed line = SLO)")
    duration = 12.0 if quick else 120.0
    n_servers = 1
    points = 5 if quick else 10
    slo = workflow_for(BENCHMARK).slo_seconds()
    for rate in rate_grid(BENCHMARK, n_servers, points):
        row = {"rate_rps": round(rate, 1), "slo_s": round(slo, 3)}
        for system_name in SYSTEM_ORDER:
            tail = measure_tail(system_name, BENCHMARK, rate, duration,
                                seed, n_servers)
            row[f"p99_{system_name}"] = (
                round(tail, 3) if tail != float("inf") else "saturated")
        result.add(**row)
    result.note("paper shape: PowerCtrl crosses the SLO at a small"
                " fraction of the load Baseline and EcoFaaS sustain"
                " (350 vs 850 RPS on their testbed)")
    return result
