"""Fig. 15: distribution of core frequencies across EcoFaaS invocations.

Paper anchors: more than half the invocations need less than 2.0 GHz, the
mode is 1.8 GHz (25 %), the top frequency serves only 4 % and the bottom
7 %.
"""

from __future__ import annotations

from repro.core import EcoFaaSSystem
from repro.experiments.common import (
    ExperimentResult,
    make_azure_benchmark_trace,
    run_cluster,
)
from repro.hardware.frequency import FrequencyScale
from repro.platform.cluster import ClusterConfig


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 15",
        "Share of dynamic invocations per chosen core frequency (EcoFaaS)")
    duration = 60.0 if quick else 600.0
    trace = make_azure_benchmark_trace(duration, seed=seed)
    cluster = run_cluster(
        EcoFaaSSystem(), trace,
        ClusterConfig(n_servers=5, seed=seed, drain_s=20.0))
    histogram = cluster.metrics.frequency_histogram()
    total = sum(histogram.values())
    below_2ghz = 0.0
    for level in FrequencyScale():
        share = histogram.get(level, 0) / total
        if level < 2.0:
            below_2ghz += share
        result.add(freq_ghz=level, share_pct=round(100 * share, 1),
                   invocations=histogram.get(level, 0))
    result.note(f"share below 2.0 GHz: {100 * below_2ghz:.1f}%"
                " (paper: >50%)")
    result.note("paper anchors: mode 1.8 GHz at 25%, max 4%, min 7%")
    return result
