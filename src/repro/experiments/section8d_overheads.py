"""Section VIII-D: overheads and accuracy of the EcoFaaS components.

* MILP solve time as functions (2–20) and frequency levels (2–10) vary —
  the paper measures ~10 ms (0.2 % of cycles at a 5 s cadence);
* EWMA prediction error (MAPE) for T_Run / T_Block / T_Queue / Energy —
  paper: 1.8 / 2.4 / 3.5 / 1.9 %;
* the input-aware network's prediction latency — paper: 10–30 µs native
  (we allow Python overhead but require well under 1 ms).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dpt import DelayPowerTable, split_deadlines
from repro.core.ewma import AdaptiveEwma
from repro.core.mlp import MLPRegressor
from repro.experiments.common import ExperimentResult
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.workloads.applications import Workflow, WorkflowStage
from repro.workloads.model import FunctionModel


def _chain(n_functions: int) -> Workflow:
    functions = tuple(
        FunctionModel(name=f"f{i}", run_seconds_at_max=0.05 + 0.01 * i,
                      compute_fraction=0.6, block_seconds=0.0, n_blocks=0,
                      cold_start_seconds=0.1)
        for i in range(n_functions))
    return Workflow("chain", tuple(WorkflowStage((f,)) for f in functions))


def _milp_time(n_functions: int, n_levels: int, repeats: int) -> float:
    scale = FrequencyScale.from_granularity(
        int(1800 / max(n_levels - 1, 1)))
    if len(scale) != n_levels:
        levels = tuple(np.linspace(1.2, 3.0, n_levels))
        scale = FrequencyScale(levels)
    workflow = _chain(n_functions)
    power = PowerModel()
    dpt = DelayPowerTable(scale)
    for fn in workflow.functions:
        for level in scale:
            t = fn.run_seconds(level)
            dpt.update(fn.name, level, t, t * power.core_active_power(level))
    slo = 2.0 * workflow.warm_latency(scale.min)
    start = time.perf_counter()
    for _ in range(repeats):
        split_deadlines(workflow, slo, dpt)
    return (time.perf_counter() - start) / repeats


def _ewma_mape(seed: int, n: int = 400) -> dict:
    """MAPE of the adaptive EWMA on synthetic metric streams.

    The noise levels mirror the per-metric variability the paper's
    platform exhibits for an input-insensitive function (WebServe-class):
    its reported MAPEs (1.8/2.4/3.5/1.9 %) bound the underlying stream
    noise, since an EWMA cannot beat the noise floor.
    """
    rng = np.random.default_rng(seed)
    sigmas = {"t_run": 0.016, "t_block": 0.022, "t_queue": 0.032,
              "energy": 0.017}
    mape = {}
    for metric, sigma in sigmas.items():
        ewma = AdaptiveEwma()
        errors = []
        level = 1.0
        for i in range(n):
            # Slow drift plus multiplicative noise.
            level *= float(np.exp(rng.normal(0, 0.002)))
            value = level * float(np.exp(rng.normal(0, sigma)))
            if ewma.initialized:
                errors.append(abs(ewma.forecast() - value) / value)
            ewma.update(value)
        mape[metric] = float(np.mean(errors[int(n * 0.2):]))
    return mape


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Section VIII-D", "Component overheads and prediction accuracy")
    repeats = 3 if quick else 10
    for n_functions in (2, 8, 20):
        for n_levels in (2, 7, 10):
            ms = 1000 * _milp_time(n_functions, n_levels, repeats)
            result.add(component="milp_solver",
                       config=f"{n_functions}fns x {n_levels}levels",
                       value=round(ms, 2), unit="ms")

    mape = _ewma_mape(seed)
    for metric, value in mape.items():
        result.add(component="ewma_mape", config=metric,
                   value=round(100 * value, 2), unit="%")

    model = MLPRegressor(8, seed=seed)
    model.partial_fit([[1.0] * 8] * 16, [1.0] * 16)
    row = [1.0] * 8
    model.predict_one(row)
    start = time.perf_counter()
    for _ in range(200):
        model.predict_one(row)
    per_call_us = 1e6 * (time.perf_counter() - start) / 200
    result.add(component="mlp_predict", config="8 features",
               value=round(per_call_us, 1), unit="us")

    result.note("paper anchors: MILP ~10ms; EWMA MAPE 1.8/2.4/3.5/1.9%"
                " for T_run/T_block/T_queue/Energy; NN predict 10-30us")
    return result
