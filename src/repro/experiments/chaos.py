"""Chaos: the three systems under a calibrated fault mix.

Not a paper figure — the reliability companion to Figs. 12/16: the same
medium Poisson load, but with deterministic fault injection armed (node
crashes with reboot, container kills, RPC latency spikes, DVFS-driver
stalls) and the frontend retrying lost invocations with exponential
backoff. Reported per system: energy, p99 latency, SLO-violation rate,
retry/failure counts, mean time to recover, and whether every crash-lost
in-flight job was re-dispatched (no invocation may be lost).

The fault layer is strictly opt-in: run any other experiment and none of
this machinery executes, so existing figures are unchanged.
"""

from __future__ import annotations

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    make_load_trace,
    run_three_systems,
)
from repro.cancel import CancelConfig
from repro.faults import FaultPlan
from repro.ha import HAConfig
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.workloads.registry import all_benchmarks


def all_function_names() -> list:
    """Every function appearing in any benchmark workflow, sorted."""
    names = set()
    for workflow in all_benchmarks():
        for stage in workflow.stages:
            for fn in stage.functions:
                names.add(fn.name)
    return sorted(names)


def default_policy() -> ReliabilityPolicy:
    """The chaos run's frontend policy: retry aggressively, never give up
    early enough to lose an invocation to an ordinary crash storm."""
    return ReliabilityPolicy(max_retries=8, backoff_base_s=0.05,
                             backoff_multiplier=2.0, backoff_jitter=0.1)


def run(quick: bool = True, seed: int = 0, ha: bool = False,
        cancel: bool = False) -> ExperimentResult:
    """``ha=True`` (the CLI's ``--ha``) additionally arms the ``repro.ha``
    layer, so crashed nodes are suspected and sidestepped by dispatch
    instead of only being retried around. ``cancel=True`` (``--cancel``)
    arms the ``repro.cancel`` layer: doomed attempts are killed at their
    doom line and retries draw from the cluster-wide budget."""
    result = ExperimentResult(
        "Chaos",
        "Energy, tail latency, and recovery under a calibrated fault mix")
    duration = 60.0 if quick else 300.0
    n_servers = 3 if quick else 10
    trace = make_load_trace("medium", n_servers, duration, seed=seed + 1)
    plan = FaultPlan.calibrated(
        duration_s=duration, n_servers=n_servers,
        functions=all_function_names(), seed=seed)
    config = ClusterConfig(n_servers=n_servers, seed=seed,
                           drain_s=30.0, reliability=default_policy(),
                           ha=HAConfig() if ha else None,
                           cancel=CancelConfig.full() if cancel else None)
    clusters = run_three_systems(trace, config, fault_plan=plan)

    for name in SYSTEM_ORDER:
        cluster = clusters[name]
        metrics = cluster.metrics
        lost = metrics.jobs_lost_to_crash
        redispatched_pct = (100.0 * metrics.crash_redispatches / lost
                            if lost else 100.0)
        result.add(
            system=name,
            energy_j=round(cluster.total_energy_j, 1),
            retry_energy_j=round(metrics.retry_energy_j, 1),
            p99_s=round(metrics.latency_p99(), 3),
            slo_viol_pct=round(100.0 * metrics.slo_violation_rate(), 2),
            completed=metrics.completed_workflows(),
            failed=metrics.failed_workflows,
            retries=metrics.retries,
            timeouts=metrics.timeouts,
            crashes=metrics.failure_count("node_crash"),
            jobs_lost=lost,
            redispatched_pct=round(redispatched_pct, 1),
            mttr_s=round(metrics.mttr_s(), 2),
            **({"cancelled": metrics.cancelled_attempts,
                "doomed_wf": metrics.doomed_workflows,
                "budget_denials": metrics.retry_budget_denials}
               if cancel else {}),
        )

    result.note(f"fault plan: {plan.count()} events"
                f" ({plan.count('node_crash')} crashes,"
                f" {plan.count('container_kill')} container kills,"
                f" {plan.count('rpc_spike')} RPC spikes,"
                f" {plan.count('dvfs_stall')} DVFS stalls)"
                f" over {duration:.0f}s x {n_servers} servers")
    if cancel:
        result.note("repro.cancel armed: doomed invocations are written"
                    " off at their doom line instead of re-dispatched,"
                    " so redispatched_pct < 100 is expected here")
    else:
        result.note("redispatched_pct must be 100: every job lost to a"
                    " crash is re-run to completion by the frontend's"
                    " retry loop")
    result.note("faults are opt-in: with no plan armed, every other"
                " experiment's output is bit-identical to a fault-free"
                " build")
    return result
