"""Retrystorm: a metastable failure, with and without repro.cancel.

Not a paper figure — the robustness companion to the overload and chaos
experiments, reproducing the classic *metastable failure* shape
(Bronson et al., HotOS'21): a trigger (load burst + container-kill storm)
pushes a cluster running an aggressive retry policy past saturation;
every attempt starts timing out, each timeout spawns retries and leaves
the timed-out attempt executing as abandoned work, so the effective load
*multiplies* — and the cluster stays collapsed long after the trigger
clears, sustained entirely by its own retry feedback loop.

Both arms replay the identical arrival trace and fault schedule:

* **cancel off** — the plain platform. After the trigger clears, goodput
  stays degraded: abandoned attempts keep burning cores, retries keep
  re-entering the queues, and the backlog feeds itself.
* **cancel on** — ``CancelConfig.full()``: the adaptive retry budget
  caps cluster-wide retries at a ratio of first attempts, and deadline
  propagation cancels doomed attempts (hedged losers, timed-out
  stragglers, queued work past its doom line) instead of letting them
  run. The feedback loop is starved and goodput recovers shortly after
  the trigger clears.

Reported per arm: goodput before / during / after the storm, the time
goodput stays degraded after the trigger clears, and the wasted-energy
fraction (retry waste + cancelled work over total). The CI smoke asserts
the off arm stays degraded at least twice as long as the on arm, and
that the energy ledger — including the new ``cancelled``/``doomed``
buckets — conserves within 1e-6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.cancel import CancelConfig
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments.common import ExperimentResult, run_cluster
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs.ledger import EnergyLedger
from repro.platform.cluster import ClusterConfig
from repro.platform.reliability import ReliabilityPolicy
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent
from repro.workloads.registry import all_benchmarks, benchmark_names

#: Goodput-recovery threshold: the first epoch pair at or above this
#: fraction of the pre-storm baseline counts as recovered.
RECOVERY_THRESHOLD = 0.7

#: Goodput epoch length (seconds) for the recovery timeline.
EPOCH_S = 1.0


def storm_policy() -> ReliabilityPolicy:
    """The aggressive frontend policy that makes the storm self-feeding:
    short timeouts, many retries, near-immediate backoff."""
    return ReliabilityPolicy(max_retries=6, backoff_base_s=0.05,
                             backoff_multiplier=1.5, backoff_jitter=0.0,
                             invocation_timeout_s=1.5)


def _storm_trace(n_servers: int, duration_s: float, storm: Tuple[float,
                 float], seed: int) -> Trace:
    """Steady near-capacity load plus a burst confined to the storm."""
    total_cores = n_servers * 20
    unit_rate = rate_for_utilization(all_benchmarks(), 1.0,
                                     total_cores=total_cores)
    base = generate_poisson_trace(PoissonLoadConfig(
        benchmark_names(), rate_rps=unit_rate * 0.6,
        duration_s=duration_s, seed=seed + 23))
    start, end = storm
    burst = generate_poisson_trace(PoissonLoadConfig(
        benchmark_names(), rate_rps=unit_rate * 2.0,
        duration_s=end - start, seed=seed + 29))
    shifted = [TraceEvent(round(e.time_s + start, 9), e.benchmark)
               for e in burst.events if e.time_s + start < end]
    return Trace(sorted(list(base.events) + shifted,
                        key=lambda e: e.time_s), duration_s)


def _kill_storm(n_servers: int, storm: Tuple[float, float],
                functions: List[str]) -> FaultPlan:
    """A container-kill barrage confined to the storm window: every
    ``period`` seconds one warm container dies, cycling deterministically
    over nodes and functions, so in-flight attempts keep timing out."""
    start, end = storm
    period = 0.25
    events = []
    t, i = start, 0
    while t < end:
        events.append(FaultEvent(
            time_s=round(t, 3), kind="container_kill",
            node=i % n_servers, function=functions[i % len(functions)]))
        t += period
        i += 1
    return FaultPlan(tuple(events)).validate(n_servers=n_servers,
                                             functions=functions)


def _goodput_timeline(records, horizon_s: float) -> List[int]:
    """Workflows completing within SLO, bucketed by completion epoch."""
    n_epochs = max(1, int(horizon_s / EPOCH_S))
    timeline = [0] * n_epochs
    for record in records:
        if not record.met_slo:
            continue
        done = record.arrival_s + record.latency_s
        epoch = min(n_epochs - 1, int(done / EPOCH_S))
        timeline[epoch] += 1
    return timeline


def _degraded_seconds(timeline: List[int], baseline_per_epoch: float,
                      clear_s: float) -> float:
    """Seconds after the trigger clears until goodput is back.

    Recovery = two consecutive epochs at or above
    ``RECOVERY_THRESHOLD`` of the pre-storm baseline; a single lucky
    epoch inside a collapsed stretch does not count. Never-recovered
    runs score the full remaining horizon.
    """
    threshold = RECOVERY_THRESHOLD * baseline_per_epoch
    first = int(clear_s / EPOCH_S)
    for epoch in range(first, len(timeline) - 1):
        if (timeline[epoch] >= threshold
                and timeline[epoch + 1] >= threshold):
            return max(0.0, epoch * EPOCH_S - clear_s)
    return len(timeline) * EPOCH_S - clear_s


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Retrystorm",
        "Metastable retry collapse after a cleared trigger,"
        " cancel+budgets off vs on")
    duration = 30.0 if quick else 90.0
    drain = 25.0 if quick else 60.0
    n_servers = 2 if quick else 5
    storm = (8.0, 14.0) if quick else (20.0, 32.0)
    horizon = duration + drain

    functions = sorted({fn.name for wf in all_benchmarks()
                        for stage in wf.stages for fn in stage.functions})
    trace = _storm_trace(n_servers, duration, storm, seed)
    plan = _kill_storm(n_servers, storm, functions)

    degraded: Dict[str, float] = {}
    for arm, cancel in (("off", None), ("on", CancelConfig.full())):
        config = ClusterConfig(
            n_servers=n_servers, seed=seed, drain_s=drain,
            reliability=storm_policy(), cancel=cancel)
        # Attach a ledger (unless the CLI already installed a tracer) so
        # each arm's wasted joules are classified and conservation —
        # including the cancelled/doomed buckets — is checked at 1e-6.
        own_tracer = obs.active_tracer() is None
        if own_tracer:
            obs.install(obs.Tracer(ledger=EnergyLedger()))
        try:
            cluster = run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                                  config, fault_plan=plan,
                                  label=f"EcoFaaS/cancel-{arm}")
            tracer = obs.active_tracer()
            ledger = tracer.ledger if tracer is not None else None
            report = (ledger.reports[-1]
                      if ledger is not None and ledger.reports else None)
        finally:
            if own_tracer:
                obs.uninstall()
        metrics = cluster.metrics
        timeline = _goodput_timeline(metrics.workflow_records, horizon)
        pre_epochs = range(1, int(storm[0] / EPOCH_S))
        baseline = (sum(timeline[e] for e in pre_epochs)
                    / max(1, len(pre_epochs)))
        degraded[arm] = _degraded_seconds(timeline, baseline, storm[1])
        wasted_j = metrics.retry_energy_j + metrics.cancelled_energy_j
        during = range(int(storm[0] / EPOCH_S), int(storm[1] / EPOCH_S))
        after = range(int(storm[1] / EPOCH_S), len(timeline))
        result.add(
            cancel=arm,
            goodput_pre=round(baseline, 2),
            goodput_storm=round(sum(timeline[e] for e in during)
                                / max(1, len(during)), 2),
            goodput_after=round(sum(timeline[e] for e in after)
                                / max(1, len(after)), 2),
            degraded_s=round(degraded[arm], 1),
            retries=metrics.retries,
            timeouts=metrics.timeouts,
            denials=metrics.retry_budget_denials,
            cancelled=metrics.cancelled_attempts,
            doomed_wf=metrics.doomed_workflows,
            wasted_pct=round(100.0 * wasted_j
                             / max(cluster.total_energy_j, 1e-12), 1),
            energy_j=round(cluster.total_energy_j, 1),
            conserved=(report.ok if report is not None else None),
        )

    result.note(f"trigger: {storm[1] - storm[0]:.0f}s load burst"
                f" (2x saturation) + container-kill barrage over"
                f" [{storm[0]:.0f}s, {storm[1]:.0f}s); policy retries"
                f" up to {storm_policy().max_retries}x with a"
                f" {storm_policy().invocation_timeout_s:.1f}s timeout")
    result.note("degraded_s: seconds past trigger-clear until goodput"
                f" holds >= {RECOVERY_THRESHOLD:.0%} of the pre-storm"
                " baseline for two consecutive epochs — the metastability"
                " signal: 'off' stays collapsed on pure retry feedback")
    result.note("wasted_pct: retry waste + cancelled-work joules over"
                " total; 'on' converts abandoned executions into early"
                " kills, so the fraction drops while goodput recovers")
    result.note("both arms replay the identical arrival trace and fault"
                " schedule; the only difference is CancelConfig")
    return result


def degraded_ratio(result: ExperimentResult) -> Optional[float]:
    """off/on degraded-seconds ratio (the >= 2x acceptance signal)."""
    off = float(result.row_for(cancel="off")["degraded_s"])
    on = float(result.row_for(cancel="on")["degraded_s"])
    if on <= 0.0:
        return None if off <= 0.0 else float("inf")
    return off / on
