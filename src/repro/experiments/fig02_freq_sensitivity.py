"""Fig. 2: response time and energy of each function vs core frequency.

The paper's headline characterization: many functions can run far below
3.0 GHz with modest latency cost and large energy savings (e.g. CNNServ at
2 GHz: +23 % time, −40 % energy; WebServ at 1.2 GHz: +12 % time, −47 %
energy).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, measure_unloaded
from repro.hardware.frequency import FrequencyScale
from repro.workloads.functionbench import STANDALONE_FUNCTIONS


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 2",
        "Normalized response time (a) and energy (b) vs core frequency")
    n = 10 if quick else 60
    scale = FrequencyScale()
    for fn in STANDALONE_FUNCTIONS:
        reference = measure_unloaded(fn, scale.max, n_invocations=n,
                                     seed=seed)
        for freq in scale:
            sample = measure_unloaded(fn, freq, n_invocations=n, seed=seed)
            result.add(
                function=fn.name,
                freq_ghz=freq,
                norm_response_time=round(
                    sample.service_s / reference.service_s, 3),
                norm_energy=round(sample.energy_j / reference.energy_j, 3),
                abs_time_ms=round(sample.service_s * 1000, 2),
                abs_energy_mj=round(sample.energy_j * 1000, 2),
            )
    result.note("paper anchors: CNNServ ~2.1GHz => ~1.23x time, ~0.6x"
                " energy; WebServ 1.2GHz => ~1.12x time, ~0.53x energy")
    return result
