"""Shared experiment infrastructure: result tables and standard runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs, verify
from repro.baselines import BaselineSystem, PowerCtrlSystem
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter
from repro.hardware.power import PowerModel
from repro.platform.cluster import Cluster, ClusterConfig
from repro.platform.job import Job
from repro.platform.scheduler import CorePoolScheduler
from repro.sim import Environment
from repro.traces.azure import (
    AzureTraceConfig,
    generate_azure_trace,
    map_to_benchmarks,
)
from repro.traces.poisson import (
    LOAD_LEVELS,
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace
from repro.workloads.model import FunctionModel
from repro.workloads.registry import all_benchmarks, benchmark_names

#: The three evaluated systems in the paper's presentation order.
SYSTEM_ORDER = ("Baseline", "Baseline+PowerCtrl", "EcoFaaS")


@dataclass
class ExperimentResult:
    """A reproduced table/figure: named rows of column → value."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **columns: object) -> None:
        self.rows.append(columns)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]

    def row_for(self, **match: object) -> Dict[str, object]:
        """The first row whose columns match all of ``match``."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.name}")

    def format_table(self) -> str:
        """Render the rows as a fixed-width text table."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        columns = list(self.rows[0].keys())

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        widths = {
            c: max(len(c), *(len(fmt(row.get(c, ""))) for row in self.rows))
            for c in columns
        }
        lines = [f"== {self.name}: {self.description} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in columns))
        lines.append("  ".join("-" * widths[c] for c in columns))
        for row in self.rows:
            lines.append("  ".join(
                fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# System factories and standard runs
# ---------------------------------------------------------------------------
def make_systems(ecofaas_config: Optional[EcoFaaSConfig] = None) -> Dict[str, object]:
    """Fresh instances of the three evaluated systems."""
    return {
        "Baseline": BaselineSystem(),
        "Baseline+PowerCtrl": PowerCtrlSystem(),
        "EcoFaaS": EcoFaaSSystem(ecofaas_config or EcoFaaSConfig()),
    }


def _trace_counter_sampler(env, cluster, tracer):
    """Read-only periodic counters: per-node power draw, EWT, load.

    Armed only on traced runs; it mutates nothing and draws no random
    numbers, so metrics stay bit-identical to an untraced run.
    """
    while True:
        prof = env.prof
        if prof.enabled:
            # The sampler is pure tracer overhead: bill it (and the
            # power snapshots nested inside) to the obs components.
            prof.enter("obs.trace")
        try:
            for node in cluster.nodes:
                track = f"node{node.server.server_id}"
                tracer.counter(track, "power_w",
                               node.server.power_snapshot_w())
                tracer.counter(track, "ewt_s",
                               sum(pool.ewt_seconds
                                   for pool in node.iter_pools()))
                tracer.counter(track, "outstanding", node.outstanding)
        finally:
            if prof.enabled:
                prof.exit("obs.trace")
        yield env.timeout(tracer.counter_period_s)


def run_cluster(system, trace: Trace,
                config: Optional[ClusterConfig] = None,
                sample_period_s: Optional[float] = None,
                fault_plan=None, label: Optional[str] = None) -> Cluster:
    """Run one trace on one system; returns the finalized cluster.

    ``sample_period_s`` arms periodic frequency-timeline sampling on every
    server (the Fig. 14 data source). ``fault_plan`` arms deterministic
    fault injection (``repro.faults``); None or an empty plan leaves the
    run untouched. When a tracer is installed (``repro.obs``), the run is
    recorded as a new run scope named after the system — or ``label``,
    which experiment A/B arms pass so their fingerprints/manifests stay
    distinguishable.
    """
    env = Environment()
    if label is None:
        label = getattr(system, "name", type(system).__name__)
    profiler = obs.active_profiler()
    if profiler is not None:
        # Self-profiling (repro.obs.prof): route the kernel's counter
        # and dispatch-timer hooks here. Wall-clock only — never
        # simulation state — so the run stays bit-identical.
        profiler.bind(env)
    tracer = obs.active_tracer()
    if tracer is not None:
        tracer.begin_run(label)
        tracer.bind(env)
    audit = obs.active_audit()
    if audit is not None:
        audit.begin_run(label)
        audit.bind(env)
    verifier = verify.active()
    if verifier is not None:
        # Invariant monitors (repro.verify): read-only checks of the
        # kernel clock, energy meters, breaker transitions, HA fencing,
        # and tenant budgets. Reads only — armed runs stay bit-identical.
        verifier.begin_run(label)
        verifier.bind(env)
    cluster = Cluster(env, system, config or ClusterConfig(),
                      fault_plan=fault_plan)
    if verifier is not None:
        verifier.arm(cluster)
    if tracer is not None:
        env.process(_trace_counter_sampler(env, cluster, tracer),
                    name="obs-counter-sampler")
    if sample_period_s is not None:
        def sampler():
            while True:
                for server in cluster.servers:
                    server.sample_timeline()
                yield env.timeout(sample_period_s)
        env.process(sampler(), name="freq-sampler")
    cluster.run_trace(trace)
    if verifier is not None:
        # End-of-run checks: workflow-lifecycle conservation, duplicate
        # completions, election-epoch monotonicity, plus a final sweep.
        verifier.close_run(cluster)
    if tracer is not None and tracer.ledger is not None:
        # Closing the run classifies this run's raw entries and checks
        # conservation against the hardware meters (raises on mismatch).
        tracer.ledger.close_run(cluster)
        if cluster.tenancy is not None:
            # Price the closed run into a per-tenant bill (repro.tenancy).
            cluster.tenancy.settle(tracer.ledger)
    if tracer is not None and tracer.fingerprint is not None:
        # Fold the run into per-epoch chain digests (repro.obs.fingerprint).
        # After the ledger close, so the energy chains see classified
        # entries; reads recorded state only.
        entry = tracer.fingerprint.close_run(cluster, tracer, audit=audit)
        if verifier is not None:
            # Self-check: the verify layer recomputes the chains from the
            # same recorded streams with its own inline hashing.
            verifier.check_fingerprints(tracer.fingerprint, entry, cluster)
    return cluster


def run_three_systems(trace: Trace, config: Optional[ClusterConfig] = None,
                      ecofaas_config: Optional[EcoFaaSConfig] = None,
                      sample_period_s: Optional[float] = None,
                      fault_plan=None) -> Dict[str, Cluster]:
    """Run the same trace on Baseline, Baseline+PowerCtrl, and EcoFaaS."""
    clusters = {}
    for name, system in make_systems(ecofaas_config).items():
        clusters[name] = run_cluster(system, trace, config, sample_period_s,
                                     fault_plan=fault_plan)
    return clusters


def make_load_trace(level: str, n_servers: int, duration_s: float,
                    seed: int = 1,
                    cores_per_server: int = 20) -> Trace:
    """The Section VII Poisson load at ``level`` in {low, medium, high}."""
    if level not in LOAD_LEVELS:
        raise ValueError(f"unknown load level {level!r}; "
                         f"expected one of {sorted(LOAD_LEVELS)}")
    rate = rate_for_utilization(
        all_benchmarks(), LOAD_LEVELS[level],
        total_cores=n_servers * cores_per_server)
    return generate_poisson_trace(PoissonLoadConfig(
        benchmark_names(), rate_rps=rate, duration_s=duration_s, seed=seed))


def make_azure_benchmark_trace(duration_s: float, seed: int = 0) -> Trace:
    """The Section VIII-A real-world-pattern trace mapped to benchmarks."""
    raw = generate_azure_trace(
        AzureTraceConfig.evaluation(duration_s=duration_s, seed=seed))
    return map_to_benchmarks(raw, benchmark_names())


# ---------------------------------------------------------------------------
# Micro-runs: one function on an unloaded fixed-frequency core
# ---------------------------------------------------------------------------
@dataclass
class MicroRun:
    """Mean unloaded service time and active energy of one function."""

    service_s: float
    run_s: float
    energy_j: float


def measure_unloaded(fn_model: FunctionModel, freq_ghz: float,
                     n_invocations: int = 20, seed: int = 0,
                     mem_time_multiplier: float = 1.0,
                     dispersion: float = 1.0) -> MicroRun:
    """Execute invocations back-to-back on one idle core at ``freq_ghz``.

    This drives the full core/scheduler machinery (not just the analytic
    model), so the Fig. 2/3 characterizations exercise the same code paths
    as the big experiments.
    """
    import numpy as np
    env = Environment()
    meter = EnergyMeter()
    power = PowerModel()
    core = Core(env, 0, power, meter, freq_ghz)
    pool = CorePoolScheduler(env, [core], frequency_ghz=freq_ghz,
                             context_switch_s=0.0)
    rng = np.random.default_rng(seed)
    jobs: List[Job] = []
    for i in range(n_invocations):
        spec = fn_model.sample_invocation(
            rng, dispersion=dispersion,
            mem_time_multiplier=mem_time_multiplier)
        job = Job(env, spec, fn_model.name, arrival_s=env.now)
        pool.submit(job)
        env.run()  # serial: one at a time, no queueing
        jobs.append(job)
    service = sum(j.latency_s for j in jobs) / len(jobs)
    run = sum(j.t_run for j in jobs) / len(jobs)
    energy = sum(j.energy_j for j in jobs) / len(jobs)
    return MicroRun(service_s=service, run_s=run, energy_j=energy)
