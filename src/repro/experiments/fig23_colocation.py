"""Fig. 23: CNNServ energy vs the number of co-located functions.

One server runs CNNServ at a constant medium load while 0..N other
functions share the machine. Interference forces higher frequencies in all
systems; EcoFaaS stays cheapest throughout because its profiles are
(re)trained online under the interference it actually experiences.
"""

from __future__ import annotations

from repro.experiments.common import (
    SYSTEM_ORDER,
    ExperimentResult,
    run_three_systems,
)
from repro.platform.cluster import ClusterConfig
from repro.traces.poisson import PoissonLoadConfig, generate_poisson_trace
from repro.workloads.registry import workflow_for

TARGET = "CNNServ"
NEIGHBOUR_SETS = (
    (),
    ("WebServ", "LRServ"),
    ("WebServ", "LRServ", "ImgProc", "RNNServ"),
    ("WebServ", "LRServ", "ImgProc", "RNNServ", "VidProc", "MLTrain"),
)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 23",
        f"{TARGET} energy vs number of co-located functions (1 server)")
    duration = 40.0 if quick else 300.0
    target_rate = 0.25 * 20 / workflow_for(TARGET).functions[0].run_seconds(3.0)

    for neighbours in NEIGHBOUR_SETS:
        # CNNServ holds a constant medium load; each neighbour adds its
        # own medium slice of the machine.
        mix = [TARGET] * 4 + list(neighbours)
        rate = target_rate * len(mix) / 4
        trace = generate_poisson_trace(PoissonLoadConfig(
            mix, rate_rps=rate, duration_s=duration, seed=seed + 1))
        clusters = run_three_systems(
            trace, ClusterConfig(n_servers=1, seed=seed, drain_s=30.0))
        row = {"colocated": len(neighbours)}
        for name in SYSTEM_ORDER:
            energy = clusters[name].energy_by_benchmark().get(TARGET, 0.0)
            count = clusters[name].metrics.completed_workflows(TARGET)
            row[f"mj_per_inv_{name}"] = round(1000 * energy / count, 1)
        result.add(**row)
    result.note("paper shape: per-invocation energy rises with"
                " co-location for all systems; EcoFaaS stays lowest")
    return result
