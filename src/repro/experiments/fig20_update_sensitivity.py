"""Fig. 20: energy vs the DPT-update (T_update) and pool-refresh
(T_refresh) periods.

Too-frequent updates burn overhead and destabilise pools; too-rare ones
leave stale decisions. The paper's sweet spots: T_update = 5 s,
T_refresh = 2 s.
"""

from __future__ import annotations

from repro.core import EcoFaaSConfig, EcoFaaSSystem
from repro.experiments.common import (
    ExperimentResult,
    make_load_trace,
    run_cluster,
)
from repro.platform.cluster import ClusterConfig

T_UPDATES = (0.1, 1.0, 5.0, 12.0)
T_REFRESHES = (0.1, 0.5, 2.0, 10.0)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 20",
        "EcoFaaS energy vs T_update (DPT) and T_refresh (pools), medium"
        " load")
    duration = 40.0 if quick else 300.0
    n_servers = 2 if quick else 20
    trace = make_load_trace("medium", n_servers, duration, seed=seed + 1)

    def energy_for(config: EcoFaaSConfig) -> float:
        cluster = run_cluster(
            EcoFaaSSystem(config), trace,
            ClusterConfig(n_servers=n_servers, seed=seed, drain_s=20.0))
        return cluster.total_energy_j

    reference = energy_for(EcoFaaSConfig())
    for t_update in T_UPDATES:
        energy = energy_for(EcoFaaSConfig(t_update_s=t_update))
        result.add(knob="t_update", value_s=t_update,
                   norm_energy=round(energy / reference, 3))
    for t_refresh in T_REFRESHES:
        energy = energy_for(EcoFaaSConfig(t_refresh_s=t_refresh))
        result.add(knob="t_refresh", value_s=t_refresh,
                   norm_energy=round(energy / reference, 3))
    result.note("paper shape: a shallow U around the chosen operating"
                " points (5s / 2s)")
    return result
