"""``repro explain``: ranked root causes for a missed-SLO workflow.

Joins the three observability artifacts —

* the exported Chrome trace (workflow/invocation/phase spans, instants,
  and the workflow→job links stored in ``otherData.workflowLinks``),
* optionally a decision audit log (JSONL), and

— to answer "why did this workflow miss its SLO?" with a ranked list of
concrete causes: seconds queued per pool (with the retune decision that
shrank it, when the audit log has one), cold-start boots, block-phase
holds, energy burned by aborted/abandoned retry attempts, breaker
fast-fails, HA redispatches, doom-line cancellations, and retry-budget
denials.

Everything operates on the exported files, not live tracer objects, so
``repro explain`` works on any trace produced earlier (and in CI).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.audit import load_jsonl


@dataclass
class _Span:
    run: int
    cat: str            # "workflow" | "invocation" | "phase"
    name: str
    uid: int
    t0: float
    t1: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


@dataclass
class Cause:
    """One ranked contributor to a miss. ``score`` orders the list."""

    score: float
    kind: str
    text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"score": round(self.score, 6), "kind": self.kind,
                "text": self.text}


class ExplainData:
    """Spans/instants/links/audit loaded from the exported artifacts."""

    def __init__(self) -> None:
        self.run_labels: Dict[int, str] = {}
        self.spans: List[_Span] = []
        self.instants: List[Dict[str, Any]] = []
        #: run → workflow uid → [job uids].
        self.links: Dict[int, Dict[int, List[int]]] = defaultdict(
            lambda: defaultdict(list))
        self.audit: List[Dict[str, Any]] = []


def _run_of_pid(pid_names: Dict[int, str], pid: int) -> Tuple[int, str]:
    name = pid_names.get(pid, "")
    if "[" in name and "]" in name:
        label = name.split("[", 1)[0].strip()
        index = name.split("[", 1)[1].split("]", 1)[0]
        if index.isdigit():
            return int(index), label
    return 0, name or "run"


def _track_of_pid(pid_names: Dict[int, str], pid: int) -> str:
    name = pid_names.get(pid, "")
    return name.rsplit(" ", 1)[-1] if name else ""


def load_explain_data(trace_path: str,
                      audit_path: Optional[str] = None) -> ExplainData:
    """Parse the exported trace (and audit JSONL) back into memory."""
    with open(trace_path) as handle:
        document = json.load(handle)
    events = (document if isinstance(document, list)
              else document.get("traceEvents", []))
    other = {} if isinstance(document, list) else document.get(
        "otherData", {})
    pid_names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
    data = ExplainData()
    for run, wf_uid, job_uid in other.get("workflowLinks", []):
        data.links[run][wf_uid].append(job_uid)
    open_spans: Dict[Tuple[int, str, int, str], List[_Span]] = \
        defaultdict(list)
    for event in events:
        phase = event.get("ph")
        if phase == "i":
            run, label = _run_of_pid(pid_names, event["pid"])
            data.run_labels.setdefault(run, label)
            data.instants.append({
                "run": run, "name": event["name"],
                "track": _track_of_pid(pid_names, event["pid"]),
                "t": event["ts"] / 1e6, "args": event.get("args", {})})
            continue
        if phase not in ("b", "e"):
            continue
        run, label = _run_of_pid(pid_names, event["pid"])
        data.run_labels.setdefault(run, label)
        key = (run, event.get("cat", ""), event["id"], event["name"])
        if phase == "b":
            span = _Span(run, event.get("cat", ""), event["name"],
                         event["id"], event["ts"] / 1e6, event["ts"] / 1e6,
                         dict(event.get("args", {})))
            open_spans[key].append(span)
            data.spans.append(span)
        else:
            stack = open_spans.get(key)
            if stack:
                span = stack.pop(0)  # FIFO: b/e pairs are emitted adjacent
                span.t1 = event["ts"] / 1e6
                span.args.update(event.get("args", {}))
    if audit_path:
        data.audit = load_jsonl(audit_path)
    return data


def missed_workflows(data: ExplainData, run: Optional[int] = None
                     ) -> List[_Span]:
    """Workflow spans that failed or missed their SLO, worst first.

    "Worst" is latency minus SLO budget (largest overshoot), so the
    default pick is the workflow with the most seconds to explain.
    """
    candidates = []
    for span in data.spans:
        if span.cat != "workflow" or (run is not None and span.run != run):
            continue
        status = span.args.get("status")
        if status in ("failed", "doomed"):
            candidates.append(span)
        elif status == "completed" and not span.args.get("met_slo", True):
            candidates.append(span)
    def overshoot(span: _Span) -> float:
        slo = float(span.args.get("slo_s", 0.0))
        return span.duration_s - slo
    return sorted(candidates, key=lambda s: (-overshoot(s), s.uid))


def _audit_for(data: ExplainData, run: int, kind: str) -> List[dict]:
    return [r for r in data.audit
            if r.get("run") == run and r.get("kind") == kind]


def _shrink_context(data: ExplainData, run: int, pool: str,
                    before_t: float) -> str:
    """The most recent audit retune that shrank ``pool`` before a time."""
    best = None
    for rec in _audit_for(data, run, "pool_retune"):
        if rec["t"] > before_t:
            continue
        prev = rec.get("inputs", {}).get("targets", {})
        new = rec.get("action", {}).get("targets", {})
        if pool in new and pool in prev and new[pool] < prev[pool]:
            if best is None or rec["t"] > best["t"]:
                best = rec
    if best is None:
        return ""
    prev = best["inputs"]["targets"][pool]
    new = best["action"]["targets"][pool]
    return (f" (retune at t={best['t']:.2f}s shrank it"
            f" {prev}→{new} cores)")


def explain(data: ExplainData, workflow_uid: int,
            run: Optional[int] = None) -> Dict[str, Any]:
    """Build the ranked cause list for one workflow."""
    wf = next((s for s in data.spans
               if s.cat == "workflow" and s.uid == workflow_uid
               and (run is None or s.run == run)), None)
    if wf is None:
        raise KeyError(
            f"no workflow span with uid {workflow_uid}"
            + (f" in run {run}" if run is not None else ""))
    run = wf.run
    job_uids = set(data.links.get(run, {}).get(workflow_uid, []))
    jobs = [s for s in data.spans
            if s.run == run and s.cat == "invocation" and s.uid in job_uids]
    phases = [s for s in data.spans
              if s.run == run and s.cat == "phase" and s.uid in job_uids
              and wf.t0 - 1e-9 <= s.t0 <= wf.t1 + 1e-9]
    causes: List[Cause] = []

    # Queue time, grouped by the pool the job waited in.
    queue_by_pool: Dict[str, float] = defaultdict(float)
    for span in phases:
        if span.name == "queue" and span.duration_s > 1e-9:
            queue_by_pool[span.args.get("pool") or "?"] += span.duration_s
    for pool, seconds in queue_by_pool.items():
        context = _shrink_context(data, run, pool, wf.t1) \
            if pool != "?" else ""
        where = f"in {pool}" if pool != "?" else "at dispatch"
        causes.append(Cause(seconds, "queueing",
                            f"queued {seconds:.2f}s {where}{context}"))

    # Cold starts and block-phase holds.
    cold_s = sum(s.duration_s for s in phases if s.name == "cold_start")
    if cold_s > 1e-9:
        n = sum(1 for s in phases if s.name == "cold_start")
        causes.append(Cause(
            cold_s, "cold_start",
            f"cold start: {cold_s:.2f}s booting"
            f" {n} container{'s' if n != 1 else ''}"))
    block_s = sum(s.duration_s for s in phases if s.name == "block")
    if block_s > 1e-9:
        causes.append(Cause(
            block_s, "block",
            f"blocked {block_s:.2f}s on external calls"))

    # Cancelled attempts: doomed work the cancel layer killed early.
    killed = [s for s in jobs if s.args.get("status") == "cancelled"]
    if killed:
        joules = sum(float(s.args.get("energy_j", 0.0)) for s in killed)
        causes.append(Cause(
            0.5 * len(killed), "cancelled",
            f"{len(killed)} attempt{'s' if len(killed) != 1 else ''}"
            f" cancelled by the doom line after burning {joules:.1f} J"))

    # Wasted attempts: aborted/abandoned jobs of this workflow.
    wasted = [s for s in jobs
              if s.args.get("status") == "aborted"
              or s.args.get("abandoned")]
    if wasted:
        joules = sum(float(s.args.get("energy_j", 0.0)) for s in wasted)
        retry_s = sum(s.duration_s for s in wasted)
        causes.append(Cause(
            max(retry_s, 0.1 * joules), "retry_waste",
            f"{len(wasted)} attempt{'s' if len(wasted) != 1 else ''}"
            f" aborted/abandoned, burning {joules:.1f} J over"
            f" {retry_s:.2f}s"))

    benchmarks = {wf.name}
    functions = {s.name for s in jobs}
    in_window = [i for i in data.instants
                 if i["run"] == run
                 and wf.t0 - 1e-9 <= i["t"] <= wf.t1 + 1e-9]

    # Breaker fast-fails against this workflow's functions.
    fast_fails = [i for i in in_window
                  if i["name"] == "breaker_fast_fail"
                  and i["args"].get("function") in functions]
    if fast_fails:
        causes.append(Cause(
            0.5 * len(fast_fails), "breaker",
            f"circuit breaker open: {len(fast_fails)} fast-fail"
            f"{'s' if len(fast_fails) != 1 else ''} for"
            f" {sorted({i['args'].get('function') for i in fast_fails})}"))

    # Retries/timeouts/shed attributed by benchmark within the window.
    for name, label in (("retry", "retried"),
                        ("invocation_timeout", "timed out")):
        hits = [i for i in in_window if i["name"] == name
                and i["args"].get("benchmark") in benchmarks]
        if hits:
            causes.append(Cause(
                0.4 * len(hits), "reliability",
                f"{len(hits)} invocation{'s' if len(hits) != 1 else ''}"
                f" {label} during this workflow"))

    # Tenant budget enforcement against this workflow's benchmark.
    throttles = [i for i in in_window
                 if i["name"] == "tenant_throttle"
                 and i["args"].get("benchmark") in benchmarks]
    if throttles:
        tenant = throttles[0]["args"].get("tenant", "?")
        budget = throttles[0]["args"].get("budget_j")
        budget_text = (f" (budget {budget:.0f} J)"
                       if isinstance(budget, (int, float)) else "")
        dropped = sum(1 for i in throttles
                      if i["args"].get("action") != "throttled_admit")
        causes.append(Cause(
            0.6 * len(throttles), "tenant_budget",
            f"tenant '{tenant}' over its energy budget{budget_text}:"
            f" {len(throttles)} arrival{'s' if len(throttles) != 1 else ''}"
            f" throttled, {dropped} dropped, during this workflow"))

    # Power-cap governor steps that slowed the cluster in the window.
    cap_steps = [i for i in in_window if i["name"] == "power_cap_step"]
    tightens = [i for i in cap_steps
                if i["args"].get("direction") == "tighten"]
    if tightens:
        last = tightens[-1]["args"]
        ceiling = last.get("freq_ceiling_ghz")
        ceiling_text = (f", frequency ceiling {ceiling:.1f} GHz"
                        if isinstance(ceiling, (int, float)) else "")
        causes.append(Cause(
            0.5 * len(tightens), "power_cap",
            f"power cap epoch {last.get('epoch', '?')}:"
            f" {len(tightens)} tightening"
            f" step{'s' if len(tightens) != 1 else ''} under a"
            f" {last.get('cap_w', 0):.0f} W cap{ceiling_text}"))

    # The cancel layer wrote this workflow off past its doom line.
    doomed = [i for i in data.instants
              if i["run"] == run and i["name"] == "workflow_doomed"
              and i["args"].get("workflow") == workflow_uid]
    for inst in doomed:
        causes.append(Cause(
            2.0, "doomed",
            f"workflow doomed at t={inst['t']:.2f}s"
            f" (stage {inst['args'].get('stage', '?')},"
            f" cause: {inst['args'].get('cause', '?')}) — its doom line"
            f" passed and the remaining chain was written off"))

    # Queued attempts of this workflow dropped at dispatch as unmeetable.
    drops = [i for i in in_window if i["name"] == "doomed_drop"
             and i["args"].get("job") in job_uids]
    if drops:
        causes.append(Cause(
            0.8 * len(drops), "doomed",
            f"{len(drops)} queued attempt{'s' if len(drops) != 1 else ''}"
            f" dropped at dispatch: remaining work could not fit before"
            f" the doom line"))

    # Retries denied to this workflow's functions by the cluster budget.
    denials = [i for i in in_window
               if i["name"] == "retry_budget_exhausted"
               and i["args"].get("function") in functions]
    if denials:
        causes.append(Cause(
            0.6 * len(denials), "retry_budget",
            f"{len(denials)} retr{'ies' if len(denials) != 1 else 'y'}"
            f" denied: the cluster-wide retry budget was exhausted"))

    # HA redispatches keyed by this workflow's uid.
    prefix = f"({workflow_uid},"
    redispatches = [i for i in data.instants
                    if i["run"] == run and i["name"] == "ha_redispatch"
                    and str(i["args"].get("key", "")).startswith(prefix)]
    for inst in redispatches:
        causes.append(Cause(
            1.0, "ha",
            f"work redispatched to {inst['args'].get('to', '?')} at"
            f" t={inst['t']:.2f}s after its node was suspected down"))

    # Audit records carrying this workflow's uid (redispatch decisions,
    # shed verdicts) add their reasons verbatim.
    for rec in data.audit:
        if rec.get("run") == run and rec.get("workflow_uid") == workflow_uid:
            reason = rec.get("reason") or rec.get("kind", "decision")
            causes.append(Cause(
                0.3, "audit",
                f"{rec.get('kind')}: {reason} (t={rec.get('t', 0):.2f}s)"))

    causes.sort(key=lambda c: (-c.score, c.kind, c.text))
    slo_s = float(wf.args.get("slo_s", 0.0))
    return {
        "run": run,
        "run_label": data.run_labels.get(run, "run"),
        "workflow_uid": workflow_uid,
        "benchmark": wf.name,
        "status": wf.args.get("status", "?"),
        "latency_s": wf.duration_s,
        "slo_s": slo_s,
        "missed_by_s": wf.duration_s - slo_s if slo_s else None,
        "jobs": sorted(job_uids),
        "causes": [c.to_dict() for c in causes],
    }


def format_explanation(result: Dict[str, Any]) -> str:
    lines = []
    slo = result["slo_s"]
    verdict = result["status"]
    if verdict == "completed":
        verdict = ("missed SLO" if slo and result["latency_s"] > slo
                   else "met SLO")
    lines.append(
        f"workflow {result['workflow_uid']} ({result['benchmark']})"
        f" in run {result['run']} ({result['run_label']}):"
        f" latency {result['latency_s']:.2f}s vs SLO {slo:.2f}s"
        f" — {verdict}")
    if not result["causes"]:
        lines.append("  no contributing causes found in the trace")
    else:
        lines.append("ranked causes:")
        for i, cause in enumerate(result["causes"], 1):
            lines.append(f"  {i}. {cause['text']}")
    return "\n".join(lines) + "\n"
