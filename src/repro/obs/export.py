"""Trace exporters: Perfetto-loadable Chrome JSON, epoch metrics, summary.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`write_chrome_trace` — the Chrome trace-event format (open the
  file at https://ui.perfetto.dev): one process per run and node, one
  thread per core pool, async tracks for invocation/workflow spans, and
  counter tracks for pool sizes, per-node power draw, and EWT;
* :func:`epoch_rows` / :func:`write_epoch_metrics` — a per-epoch
  (``T_refresh``-granularity) metrics time series: energy, p50/p99,
  SLO violations, pool occupancy, retry counters;
* :func:`run_summary` — a plain-text rollup per run.

Everything here is pure stdlib and fully deterministic: identical traces
serialize to identical bytes.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import (EPOCH_INSTANT_COLUMNS, LEDGER_COMPONENTS,
                                LEDGER_EPOCH_COLUMNS)
from repro.obs.tracer import Tracer


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def _process_of(track: str) -> str:
    """Group a track into its owning process (node, frontend, faults).

    Pool names carry their node as an ``@<server_id>`` suffix; node-level
    tracks are already named ``node<i>``; anything else lands in the
    cluster-wide process.
    """
    if track.startswith("node") and track[4:].isdigit():
        return track
    if "@" in track:
        suffix = track.rsplit("@", 1)[1]
        if suffix.isdigit():
            return f"node{suffix}"
    if track in ("frontend", "faults"):
        return track
    return "cluster"


class _TrackMap:
    """Deterministic (run, process) → pid and (pid, track) → tid mapping."""

    def __init__(self) -> None:
        self._pids: Dict[Tuple[int, str], int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._next_tid: Dict[int, int] = {}
        self.metadata: List[dict] = []

    def pid(self, run: int, process: str, run_label: str) -> int:
        key = (run, process)
        if key not in self._pids:
            pid = len(self._pids) + 1
            self._pids[key] = pid
            self.metadata.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"{run_label} [{run}] {process}"}})
        return self._pids[key]

    def tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        if key not in self._tids:
            tid = self._next_tid.get(pid, 0)
            self._next_tid[pid] = tid + 1
            self._tids[key] = tid
            self.metadata.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track}})
        return self._tids[key]


def _us(t_s: float) -> float:
    """Simulation seconds → trace-event microseconds."""
    return round(t_s * 1e6, 3)


def _scalar(value: Any) -> Any:
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()  # numpy scalar → plain python scalar
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def _json_safe(args: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in args.items():
        if isinstance(value, dict):
            value = {str(k): _scalar(v) for k, v in value.items()}
        else:
            value = _scalar(value)
        out[str(key)] = value
    return out


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """The tracer's records as a list of Chrome trace-event dicts."""
    tracer.finish_run()
    tracks = _TrackMap()
    events: List[dict] = []

    def label(run: int) -> str:
        if 0 <= run < len(tracer.run_labels):
            return tracer.run_labels[run]
        return "run"

    for span in tracer.spans:
        if span.kind == "workflow":
            process, cat = "frontend", "workflow"
        else:
            process, cat = "invocations", span.kind
        pid = tracks.pid(span.run, process, label(span.run))
        t1 = span.t1 if span.t1 is not None else span.t0
        common = {"cat": cat, "id": span.uid, "pid": pid, "tid": 0}
        events.append({"ph": "b", "name": span.name, "ts": _us(span.t0),
                       **common,
                       "args": _json_safe(span.args) if span.kind != "phase"
                       else {}})
        events.append({"ph": "e", "name": span.name, "ts": _us(t1),
                       **common, "args": _json_safe(span.args)})
    for inst in tracer.instants:
        pid = tracks.pid(inst.run, _process_of(inst.track), label(inst.run))
        tid = tracks.tid(pid, inst.track)
        events.append({"ph": "i", "s": "t", "name": inst.name,
                       "pid": pid, "tid": tid, "ts": _us(inst.t),
                       "args": _json_safe(inst.args)})
    for sample in tracer.counters:
        pid = tracks.pid(sample.run, _process_of(sample.track),
                         label(sample.run))
        events.append({"ph": "C", "name": f"{sample.series}:{sample.track}",
                       "pid": pid, "tid": 0, "ts": _us(sample.t),
                       "args": {"value": sample.value}})
    return tracks.metadata + events


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    events = chrome_trace_events(tracer)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs (EcoFaaS reproduction)",
            "runs": list(tracer.run_labels),
            "clock": "simulation seconds, exported as microseconds",
            # Workflow uid → job uid dispatch links: joins workflow spans
            # (cat "workflow") to invocation spans (cat "invocation") so
            # `repro explain` can walk one workflow's jobs.
            "workflowLinks": [list(link)
                              for link in getattr(tracer, "wf_links", [])],
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return len(events)


# ---------------------------------------------------------------------------
# Epoch metrics
# ---------------------------------------------------------------------------
def _nearest_rank(sorted_values: List[float], p: float) -> float:
    """Nearest-rank percentile (stdlib-only; NaN on empty input)."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      int(math.ceil(p / 100.0 * len(sorted_values))) - 1))
    return sorted_values[rank]


def epoch_rows(tracer: Tracer, epoch_s: float = 2.0) -> List[Dict[str, Any]]:
    """Per-run, per-epoch metrics rows (the CSV/JSON time series).

    The epoch length defaults to the EcoFaaS ``T_refresh`` (2 s) so each
    row lines up with one pool-retune decision window. Spans are binned
    by their *end* time (an invocation contributes to the epoch in which
    it completed, as the paper's rollups do).

    A run rarely ends on an epoch boundary; the final row covers the
    leftover ``[k*epoch_s, end)`` stretch and is marked ``is_partial``
    with its true ``t1_s``, so sums over the rows (energy in particular)
    cover the whole run rather than silently dropping the tail.

    When the tracer carries an energy ledger, each row additionally
    gets ``energy_<component>_j`` columns (see
    :data:`repro.obs.registry.LEDGER_COMPONENTS`) with the classified
    joules pro-rated over the epoch.
    """
    if epoch_s <= 0:
        raise ValueError(f"epoch length must be positive: {epoch_s}")
    tracer.finish_run()
    ledger = getattr(tracer, "ledger", None)
    rows: List[Dict[str, Any]] = []
    for run, run_label in enumerate(tracer.run_labels):
        end = tracer.run_end_s[run]
        n_epochs = max(1, int(math.ceil(end / epoch_s - 1e-9)))
        base = [{
            "run": run, "system": run_label, "epoch": e,
            "t0_s": e * epoch_s, "t1_s": (e + 1) * epoch_s,
            "is_partial": False,
            "invocations": 0, "energy_j": 0.0, "cold_starts": 0,
            "deadline_misses": 0, "workflows": 0, "slo_violations": 0,
            "p50_latency_s": float("nan"), "p99_latency_s": float("nan"),
            "retries": 0, "hedges": 0, "timeouts": 0, "faults": 0,
            "preemptions": 0, "freq_transitions": 0,
            "ha_suspicions": 0, "ha_redispatches": 0, "ha_failovers": 0,
            "ha_fenced": 0, "ha_frozen": 0,
            "slo_fast_burns": 0, "slo_slow_burns": 0,
            "tenant_throttles": 0, "power_cap_steps": 0,
            "cancels": 0, "doomed_drops": 0, "workflows_doomed": 0,
            "retry_budget_denials": 0, "retry_budget_refunds": 0,
            "mean_power_w": float("nan"), "mean_outstanding": float("nan"),
        } for e in range(n_epochs)]
        if 0.0 < end < n_epochs * epoch_s - 1e-9:
            base[-1]["t1_s"] = end
            base[-1]["is_partial"] = True

        def bin_of(t: float) -> int:
            return max(0, min(n_epochs - 1, int(t / epoch_s)))

        latencies: List[List[float]] = [[] for _ in range(n_epochs)]
        for span in tracer.spans:
            if span.run != run or span.t1 is None:
                continue
            row = base[bin_of(span.t1)]
            if span.kind == "invocation":
                if span.args.get("status") != "completed" \
                        or span.args.get("prewarm"):
                    continue
                row["invocations"] += 1
                row["energy_j"] += float(span.args.get("energy_j", 0.0))
                row["cold_starts"] += bool(span.args.get("cold_start"))
                row["deadline_misses"] += not span.args.get(
                    "met_deadline", True)
            elif span.kind == "workflow":
                if span.args.get("status") != "completed":
                    continue
                row["workflows"] += 1
                row["slo_violations"] += not span.args.get("met_slo", True)
                latencies[bin_of(span.t1)].append(span.duration_s)
        for e, values in enumerate(latencies):
            values.sort()
            base[e]["p50_latency_s"] = _nearest_rank(values, 50.0)
            base[e]["p99_latency_s"] = _nearest_rank(values, 99.0)

        for inst in tracer.instants:
            if inst.run != run:
                continue
            row = base[bin_of(inst.t)]
            column = EPOCH_INSTANT_COLUMNS.get(inst.name)
            if column is not None:
                row[column] += 1
            elif inst.name.startswith("fault_"):
                row["faults"] += 1

        if ledger is not None and ledger.reports:
            per_epoch = ledger.epoch_component_j(run, n_epochs, epoch_s)
            for e in range(n_epochs):
                for component, column in zip(LEDGER_COMPONENTS,
                                             LEDGER_EPOCH_COLUMNS):
                    base[e][column] = per_epoch[e][component]

        power: List[List[float]] = [[] for _ in range(n_epochs)]
        occupancy: List[List[float]] = [[] for _ in range(n_epochs)]
        # Counter samples arrive node-by-node at identical timestamps;
        # summing per timestamp yields cluster-wide series to average.
        by_time: Dict[Tuple[str, float], float] = {}
        for sample in tracer.counters:
            if sample.run != run or sample.series not in ("power_w",
                                                          "outstanding"):
                continue
            key = (sample.series, sample.t)
            by_time[key] = by_time.get(key, 0.0) + sample.value
        for (series, t), value in by_time.items():
            target = power if series == "power_w" else occupancy
            target[bin_of(t)].append(value)
        for e in range(n_epochs):
            if power[e]:
                base[e]["mean_power_w"] = sum(power[e]) / len(power[e])
            if occupancy[e]:
                base[e]["mean_outstanding"] = (sum(occupancy[e])
                                               / len(occupancy[e]))
        rows.extend(base)
    return rows


def write_epoch_metrics(tracer: Tracer, path: str,
                        epoch_s: float = 2.0) -> List[Dict[str, Any]]:
    """Write :func:`epoch_rows` as CSV (or JSON for ``.json`` paths)."""
    rows = epoch_rows(tracer, epoch_s)
    if path.endswith(".json"):
        with open(path, "w") as handle:
            json.dump(rows, handle, indent=1)
            handle.write("\n")
        return rows
    columns = list(rows[0].keys()) if rows else ["run", "system", "epoch"]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: (f"{v:.6g}" if isinstance(v, float) else v)
                             for k, v in row.items()})
    return rows


# ---------------------------------------------------------------------------
# Plain-text run summary
# ---------------------------------------------------------------------------
def _top_functions(tracer: Tracer, run: int, key, n: int = 5
                   ) -> List[Tuple[str, float]]:
    totals: Dict[str, float] = {}
    for span in tracer.spans_of("invocation", run):
        if span.args.get("prewarm"):
            continue
        value = key(span)
        if value is None:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + value
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:n]


def queueing_by_function(tracer: Tracer, run: Optional[int] = None
                         ) -> Dict[str, float]:
    """Total queue-phase seconds per function (report helper)."""
    totals: Dict[str, float] = {}
    names = {s.uid: s.name for s in tracer.spans_of("invocation", run)}
    for span in tracer.spans_of("phase", run):
        if span.name != "queue" or span.t1 is None:
            continue
        function = names.get(span.uid, "?")
        totals[function] = totals.get(function, 0.0) + span.duration_s
    return totals


def run_summary(tracer: Tracer, top_n: int = 5) -> str:
    """A human-readable rollup of every traced run."""
    tracer.finish_run()
    lines: List[str] = []
    for run, run_label in enumerate(tracer.run_labels):
        invocations = [s for s in tracer.spans_of("invocation", run)
                       if not s.args.get("prewarm")]
        completed = [s for s in invocations
                     if s.args.get("status") == "completed"]
        workflows = [s for s in tracer.spans_of("workflow", run)
                     if s.args.get("status") == "completed"]
        energy = sum(float(s.args.get("energy_j", 0.0)) for s in completed)
        lines.append(f"== trace summary: run {run} ({run_label}) ==")
        lines.append(
            f"  {len(completed)}/{len(invocations)} invocations completed,"
            f" {len(workflows)} workflows,"
            f" {tracer.run_end_s[run]:.2f}s simulated")
        lines.append(
            f"  invocation energy {energy:.1f} J,"
            f" {sum(1 for s in completed if s.args.get('cold_start'))}"
            f" cold starts,"
            f" {len(tracer.instants_named('preemption', run))} preemptions,"
            f" {len(tracer.instants_named('freq_transition', run))}"
            f" freq transitions")
        reliability = [f"{name}={len(tracer.instants_named(name, run))}"
                       for name in ("retry", "hedge", "invocation_timeout")]
        faults = sum(1 for i in tracer.instants
                     if i.run == run and i.name.startswith("fault_"))
        lines.append(f"  reliability: {' '.join(reliability)}"
                     f" faults={faults}")
        ha_counts = {name: len(tracer.instants_named(name, run))
                     for name in ("ha_suspect", "ha_failover",
                                  "ha_redispatch", "ha_fenced", "ha_frozen")}
        if any(ha_counts.values()):
            lines.append(
                "  ha: " + " ".join(f"{name.removeprefix('ha_')}={count}"
                                    for name, count in ha_counts.items()))
        for title, ranked, unit in (
                ("energy", _top_functions(
                    tracer, run,
                    lambda s: float(s.args.get("energy_j", 0.0)), top_n),
                 "J"),
                ("queueing delay", sorted(
                    queueing_by_function(tracer, run).items(),
                    key=lambda item: (-item[1], item[0]))[:top_n], "s"),
                ("deadline misses", _top_functions(
                    tracer, run,
                    lambda s: 0.0 + (not s.args.get("met_deadline", True)),
                    top_n), "")):
            ranked = [(name, value) for name, value in ranked if value > 0]
            if ranked:
                listing = ", ".join(f"{name}={value:.3g}{unit}"
                                    for name, value in ranked)
                lines.append(f"  top by {title}: {listing}")
    return "\n".join(lines)
