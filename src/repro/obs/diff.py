"""``repro diff``: first-divergence attribution between fingerprinted runs.

Given two ``fingerprints.json`` documents (or one document holding two
arms of an A/B experiment), this module answers the three questions a
whole-run fingerprint mismatch leaves open:

* **where** — bisect each subsystem's per-epoch chain digests to the
  first diverging epoch (chain link ``e`` covers every epoch up to and
  including ``e``, so the first mismatch is binary-searchable), and rank
  the diverged subsystems in causal priority order: a decision
  (``audit``) precedes the point events it causes (``instants``), which
  precede the rolled-up outcomes (``metrics``) and the energy
  attribution (``ledger``);
* **why** — join the audit JSONL (or the exported trace's instants)
  inside that first epoch and name the first diverging decision: its
  kind, actor, uid, time, and which input/action keys differ;
* **so what** — attribute the downstream deltas between the two runs:
  total energy and its split across the ledger's buckets (checked to
  re-sum to the total within the ledger's 1e-6 conservation tolerance),
  mean EWT, SLO misses per benchmark, and the cancel/retry counters.

Everything operates on the exported artifacts — never live objects — so
two runs recorded yesterday on different machines diff the same way as
two arms of one process. Same-seed, same-config runs produce identical
chains and the diff reports ``identical`` (exit 0 in the CLI).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.fingerprint import load_document

#: Schema identifier of the JSON report ``repro diff --json`` writes.
DIFF_FORMAT = "repro.obs.diff/1"

#: Relative tolerance for the bucket-deltas-resum-to-total check
#: (matches ``EnergyLedger.TOLERANCE``).
REL_TOLERANCE = 1e-6

#: Causal priority of diverged subsystems (decisions before outcomes).
PRIORITY = ("audit", "instants", "metrics", "ledger")

#: Manifest keys surfaced when two documents disagree about provenance.
MANIFEST_KEYS = ("experiment", "seed", "config_digest")


# ---------------------------------------------------------------------------
# Chain bisection
# ---------------------------------------------------------------------------
def first_mismatch(chain_a: List[str],
                   chain_b: List[str]) -> Optional[int]:
    """Index of the first diverging epoch, or None for identical chains.

    Uses the chain-cumulative property — link ``e`` digests every epoch
    ``<= e`` — to binary-search instead of scanning: if the links agree
    at ``mid``, every earlier epoch agreed too. A chain that is a strict
    prefix of the other diverges at the shorter length (the runs covered
    a different number of epochs).
    """
    n = min(len(chain_a), len(chain_b))
    if n == 0 or chain_a[n - 1] == chain_b[n - 1]:
        return None if len(chain_a) == len(chain_b) else n
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if chain_a[mid] == chain_b[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


# ---------------------------------------------------------------------------
# Run alignment
# ---------------------------------------------------------------------------
def pair_entries(doc_a: Dict[str, Any], doc_b: Dict[str, Any],
                 same_file: bool,
                 run_a: Optional[int] = None, run_b: Optional[int] = None
                 ) -> Tuple[List[Tuple[dict, dict]], List[str]]:
    """Align the two documents' runs into comparison pairs.

    Explicit ``--run-a/--run-b`` select one pair. Otherwise a single
    file with exactly two runs diffs its own arms (the A/B-experiment
    case), and two files align run-by-run at matching indices.
    """
    runs_a, runs_b = doc_a["runs"], doc_b["runs"]
    notes: List[str] = []

    def pick(runs: List[dict], index: int, side: str) -> dict:
        for entry in runs:
            if entry.get("run") == index:
                return entry
        raise ValueError(f"no run {index} in document {side}"
                         f" (has {sorted(e.get('run') for e in runs)})")

    if run_a is not None or run_b is not None:
        run_a = run_a if run_a is not None else 0
        run_b = run_b if run_b is not None else run_a
        return [(pick(runs_a, run_a, "A"), pick(runs_b, run_b, "B"))], notes
    if same_file:
        if len(runs_a) == 2:
            return [(runs_a[0], runs_a[1])], notes
        raise ValueError(
            f"diffing a document against itself needs --run-a/--run-b"
            f" unless it holds exactly two runs (it holds {len(runs_a)})")
    if not runs_a or not runs_b:
        raise ValueError("a fingerprints document has no runs to diff")
    if len(runs_a) != len(runs_b):
        notes.append(f"run counts differ: {len(runs_a)} in A vs"
                     f" {len(runs_b)} in B; comparing the first"
                     f" {min(len(runs_a), len(runs_b))} pair(s)")
    return list(zip(runs_a, runs_b)), notes


def _artifact_path(doc: Dict[str, Any], doc_path: str,
                   key: str) -> Optional[str]:
    """Resolve a manifest artifact path (relative to the document)."""
    path = (doc.get("manifest", {}).get("artifacts") or {}).get(key)
    if not path:
        return None
    if not os.path.isabs(path):
        path = os.path.join(os.path.dirname(os.path.abspath(doc_path)),
                            path)
    return path if os.path.exists(path) else None


# ---------------------------------------------------------------------------
# The first diverging decision (audit / instants join)
# ---------------------------------------------------------------------------
def _strip_run(record: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in record.items() if k != "run"}


def _key_deltas(rec_a: Dict[str, Any], rec_b: Dict[str, Any]
                ) -> List[str]:
    """Top-level keys (and inputs/action sub-keys) that differ."""
    deltas = []
    for key in sorted(set(rec_a) | set(rec_b)):
        va, vb = rec_a.get(key), rec_b.get(key)
        if va == vb:
            continue
        if isinstance(va, dict) and isinstance(vb, dict):
            subkeys = sorted(k for k in set(va) | set(vb)
                             if va.get(k) != vb.get(k))
            deltas.append(f"{key}({', '.join(subkeys)})")
        else:
            deltas.append(key)
    return deltas


def _describe_divergence(records_a: List[dict], records_b: List[dict],
                         source: str) -> Optional[Dict[str, Any]]:
    """The first position where two in-epoch record streams disagree."""
    for index, (rec_a, rec_b) in enumerate(zip(records_a, records_b)):
        if rec_a == rec_b:
            continue
        return {"source": source, "index": index, "a": rec_a, "b": rec_b,
                "differing_keys": _key_deltas(rec_a, rec_b)}
    if len(records_a) != len(records_b):
        index = min(len(records_a), len(records_b))
        longer, side = ((records_a, "a") if len(records_a) > len(records_b)
                        else (records_b, "b"))
        return {"source": source, "index": index, "only_in": side,
                side: longer[index]}
    return None


def _epoch_audit(doc: Dict[str, Any], doc_path: str, run: int,
                 epoch: int, epoch_s: float) -> Optional[List[dict]]:
    path = _artifact_path(doc, doc_path, "audit")
    if path is None:
        return None
    from repro.obs.audit import load_jsonl
    t0, t1 = epoch * epoch_s, (epoch + 1) * epoch_s
    return [_strip_run(r) for r in load_jsonl(path)
            if r.get("run") == run and t0 <= r.get("t", -1.0) < t1]


def _epoch_instants(doc: Dict[str, Any], doc_path: str, run: int,
                    epoch: int, epoch_s: float) -> Optional[List[dict]]:
    path = _artifact_path(doc, doc_path, "trace")
    if path is None:
        return None
    from repro.obs.explain import load_explain_data
    t0, t1 = epoch * epoch_s, (epoch + 1) * epoch_s
    return [{"name": i["name"], "track": i["track"],
             "t": round(i["t"], 6), "args": i["args"]}
            for i in load_explain_data(path).instants
            if i["run"] == run and t0 <= i["t"] < t1]


def first_diverging_decision(doc_a: Dict[str, Any], path_a: str,
                             doc_b: Dict[str, Any], path_b: str,
                             run_a: int, run_b: int, epoch: int,
                             subsystem: str
                             ) -> Tuple[Optional[dict], List[str]]:
    """Join the records inside the first diverging epoch, name the first
    diverging one. Falls back from audit to trace instants; returns
    (decision, notes) where notes explain any degraded lookup."""
    epoch_s = float(doc_a["epoch_s"])
    notes: List[str] = []
    sources = []
    if subsystem == "audit":
        sources = [("audit", _epoch_audit), ("instants", _epoch_instants)]
    elif subsystem == "instants":
        sources = [("instants", _epoch_instants), ("audit", _epoch_audit)]
    else:  # metrics/ledger diverged first: decisions give the best clue
        sources = [("audit", _epoch_audit), ("instants", _epoch_instants)]
    for name, loader in sources:
        records_a = loader(doc_a, path_a, run_a, epoch, epoch_s)
        records_b = loader(doc_b, path_b, run_b, epoch, epoch_s)
        if records_a is None or records_b is None:
            notes.append(f"{name} artifact missing on"
                         f" {'A' if records_a is None else 'B'}:"
                         f" cannot join epoch {epoch} records")
            continue
        decision = _describe_divergence(records_a, records_b, name)
        if decision is not None:
            return decision, notes
        notes.append(f"{name} records inside epoch {epoch} are identical")
    return None, notes


# ---------------------------------------------------------------------------
# Downstream attribution
# ---------------------------------------------------------------------------
def _delta(a: Optional[float], b: Optional[float]
           ) -> Optional[Dict[str, float]]:
    if a is None or b is None:
        return None
    return {"a": float(a), "b": float(b), "delta": float(b) - float(a)}


def attribute(entry_a: Dict[str, Any], entry_b: Dict[str, Any]
              ) -> Dict[str, Any]:
    """The B−A deltas of every summarized downstream outcome."""
    sa, sb = entry_a.get("summary", {}), entry_b.get("summary", {})
    energy = _delta(sa.get("energy_total_j"), sb.get("energy_total_j"))
    comp_a, comp_b = (sa.get("energy_by_component"),
                      sb.get("energy_by_component"))
    by_component = None
    bucket_sum_ok = None
    if comp_a is not None and comp_b is not None:
        by_component = {c: float(comp_b.get(c, 0.0)) - float(
            comp_a.get(c, 0.0)) for c in sorted(set(comp_a) | set(comp_b))}
        if energy is not None:
            total = energy["delta"]
            bucket_sum = sum(by_component.values())
            scale = max(abs(sa["energy_total_j"]), abs(sb["energy_total_j"]),
                        1e-12)
            bucket_sum_ok = abs(bucket_sum - total) <= REL_TOLERANCE * scale
    misses = {}
    ma, mb = (sa.get("slo_misses_by_benchmark") or {},
              sb.get("slo_misses_by_benchmark") or {})
    for bench in sorted(set(ma) | set(mb)):
        change = int(mb.get(bench, 0)) - int(ma.get(bench, 0))
        if change:
            misses[bench] = change
    counts = {}
    ca, cb = sa.get("counts") or {}, sb.get("counts") or {}
    for key in sorted(set(ca) | set(cb)):
        change = int(cb.get(key, 0)) - int(ca.get(key, 0))
        if change:
            counts[key] = change
    return {
        "energy_total_j": energy,
        "energy_by_component_delta_j": by_component,
        "bucket_deltas_resum_to_total": bucket_sum_ok,
        "ewt_mean_s": _delta(sa.get("ewt_mean_s"), sb.get("ewt_mean_s")),
        "workflows_completed": _delta(sa.get("workflows_completed"),
                                      sb.get("workflows_completed")),
        "slo_miss_delta_by_benchmark": misses,
        "count_deltas": counts,
    }


# ---------------------------------------------------------------------------
# Whole-document diff
# ---------------------------------------------------------------------------
def diff_pair(entry_a: Dict[str, Any], entry_b: Dict[str, Any],
              doc_a: Dict[str, Any], path_a: str,
              doc_b: Dict[str, Any], path_b: str) -> Dict[str, Any]:
    """Compare one aligned run pair; the per-pair report dict."""
    epoch_s = float(doc_a["epoch_s"])
    chains_a, chains_b = entry_a["chains"], entry_b["chains"]
    subsystems: Dict[str, Dict[str, Any]] = {}
    diverged: List[Tuple[str, int]] = []
    for sub in sorted(set(chains_a) | set(chains_b)):
        if sub not in chains_a or sub not in chains_b:
            subsystems[sub] = {
                "status": "only_a" if sub in chains_a else "only_b",
                "first_epoch": None}
            continue
        epoch = first_mismatch(chains_a[sub], chains_b[sub])
        if epoch is None:
            subsystems[sub] = {"status": "identical", "first_epoch": None}
        else:
            subsystems[sub] = {"status": "diverged", "first_epoch": epoch}
            diverged.append((sub, epoch))
    identical = (not diverged
                 and entry_a["final"] == entry_b["final"]
                 and all(s["status"] == "identical"
                         for s in subsystems.values()))
    pair: Dict[str, Any] = {
        "run_a": entry_a["run"], "run_b": entry_b["run"],
        "label_a": entry_a.get("label", "run"),
        "label_b": entry_b.get("label", "run"),
        "n_epochs": {"a": entry_a["n_epochs"], "b": entry_b["n_epochs"]},
        "final": {"a": entry_a["final"], "b": entry_b["final"],
                  "equal": entry_a["final"] == entry_b["final"]},
        "identical": identical,
        "subsystems": subsystems,
        "first": None,
        "decision": None,
        "attribution": None,
        "notes": [],
    }
    if identical:
        return pair
    if diverged:
        # Earliest epoch wins; the causal priority order breaks ties.
        rank = {sub: i for i, sub in enumerate(PRIORITY)}
        ordered = sorted(diverged,
                         key=lambda d: (d[1], rank.get(d[0], len(rank))))
        sub, epoch = ordered[0]
        pair["first"] = {"epoch": epoch, "subsystem": sub,
                         "t0_s": epoch * epoch_s,
                         "t1_s": (epoch + 1) * epoch_s}
        # Name the first diverging decision. The first diverging epoch
        # can hold no record-level delta — the ledger reclassifies
        # earlier joules retroactively (a retried attempt's energy
        # becomes retry_waste at the *later* retry decision) — so fall
        # forward through the other diverged audit/instants epochs
        # until one names a record.
        decision = None
        for sub2, epoch2 in ordered:
            if (sub2, epoch2) != (sub, epoch) \
                    and sub2 not in ("audit", "instants"):
                continue
            decision, notes = first_diverging_decision(
                doc_a, path_a, doc_b, path_b,
                entry_a["run"], entry_b["run"], epoch2, sub2)
            for note in notes:
                if note not in pair["notes"]:
                    pair["notes"].append(note)
            if decision is not None:
                if epoch2 != epoch:
                    pair["notes"].append(
                        f"first record-level delta sits in epoch"
                        f" {epoch2}: the epoch-{epoch} {sub} divergence"
                        f" is retroactive attribution of it")
                decision["epoch"] = epoch2
                break
        pair["decision"] = decision
    elif not pair["final"]["equal"]:
        pair["notes"].append(
            "final fingerprints differ but every shared chain agrees"
            " (the divergence is outside the chained subsystems)")
    pair["attribution"] = attribute(entry_a, entry_b)
    return pair


def diff_documents(path_a: str, path_b: Optional[str] = None,
                   run_a: Optional[int] = None,
                   run_b: Optional[int] = None) -> Dict[str, Any]:
    """Diff two fingerprints.json files (or one against itself)."""
    same_file = path_b is None or os.path.abspath(path_a) == \
        os.path.abspath(path_b)
    doc_a = load_document(path_a)
    doc_b = doc_a if same_file else load_document(path_b)
    real_b = path_a if same_file else path_b
    notes: List[str] = []
    if float(doc_a["epoch_s"]) != float(doc_b["epoch_s"]):
        raise ValueError(
            f"epoch lengths differ ({doc_a['epoch_s']}s vs"
            f" {doc_b['epoch_s']}s): chains are not comparable")
    man_a, man_b = doc_a.get("manifest", {}), doc_b.get("manifest", {})
    for key in MANIFEST_KEYS:
        if key in man_a and key in man_b and man_a[key] != man_b[key]:
            notes.append(f"manifest {key} differs:"
                         f" {man_a[key]!r} vs {man_b[key]!r}")
    pairs, pair_notes = pair_entries(doc_a, doc_b, same_file, run_a, run_b)
    notes.extend(pair_notes)
    compared = [diff_pair(ea, eb, doc_a, path_a, doc_b, real_b)
                for ea, eb in pairs]
    return {
        "format": DIFF_FORMAT,
        "a": {"path": path_a, "manifest": man_a,
              "runs": len(doc_a["runs"])},
        "b": {"path": real_b, "manifest": man_b,
              "runs": len(doc_b["runs"])},
        "epoch_s": float(doc_a["epoch_s"]),
        "identical": all(p["identical"] for p in compared) and not any(
            "run counts differ" in n for n in notes),
        "notes": notes,
        "pairs": compared,
    }


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------
def _short(digest_hex: str) -> str:
    return digest_hex[:12]


def _format_decision(decision: Dict[str, Any]) -> List[str]:
    lines = []
    source, index = decision["source"], decision["index"]
    where = (f"#{index} in epoch {decision['epoch']}"
             if "epoch" in decision else f"#{index} in epoch")
    if "only_in" in decision:
        side = decision["only_in"].upper()
        record = decision[decision["only_in"]]
        what = (f"kind {record.get('kind')} actor {record.get('actor')}"
                if source == "audit" else f"{record.get('name')}"
                f" on {record.get('track')}")
        uid = record.get("workflow_uid") if source == "audit" else None
        uid_text = f" workflow {uid}" if uid is not None else ""
        job = record.get("job_uid") if source == "audit" else None
        job_text = f" job {job}" if job is not None else ""
        lines.append(
            f"first diverging {source} record ({where}):"
            f" only arm {side} has {what}{uid_text}{job_text}"
            f" at t={record.get('t'):.3f}s")
        reason = record.get("reason")
        if reason:
            lines.append(f"  reason: {reason}")
        return lines
    rec_a, rec_b = decision["a"], decision["b"]
    keys = ", ".join(decision.get("differing_keys", [])) or "?"

    def both(key: str, fmt=lambda v: str(v)) -> str:
        va, vb = rec_a.get(key), rec_b.get(key)
        return fmt(va) if va == vb else f"{fmt(va)} vs {fmt(vb)}"

    def seconds(value) -> str:
        return f"{value:.3f}s" if isinstance(value, (int, float)) else "?"

    if source == "audit":
        uid_bits = ""
        if rec_a.get("workflow_uid") is not None \
                or rec_b.get("workflow_uid") is not None:
            uid_bits += f" workflow {both('workflow_uid')}"
        if rec_a.get("job_uid") is not None \
                or rec_b.get("job_uid") is not None:
            uid_bits += f" job {both('job_uid')}"
        lines.append(
            f"first diverging audit decision ({where}):"
            f" kind {both('kind')} actor {both('actor')}{uid_bits}"
            f" at t={both('t', seconds)}")
    else:
        lines.append(
            f"first diverging trace instant ({where}):"
            f" {both('name')} on {both('track')}"
            f" at t={both('t', seconds)}")
    lines.append(f"  differs in: {keys}")
    return lines


def _format_attribution(attribution: Dict[str, Any]) -> List[str]:
    lines = ["downstream deltas (B − A):"]
    energy = attribution.get("energy_total_j")
    if energy is not None:
        lines.append(f"  energy: {energy['delta']:+.6f} J total"
                     f" ({energy['a']:.6f} → {energy['b']:.6f})")
        buckets = attribution.get("energy_by_component_delta_j")
        if buckets:
            for component, delta in buckets.items():
                if abs(delta) > 1e-12:
                    lines.append(f"    {component:<12} {delta:+.6f} J")
            check = attribution.get("bucket_deltas_resum_to_total")
            if check is not None:
                verdict = "within" if check else "OUTSIDE"
                lines.append(f"    (bucket deltas re-sum to the total"
                             f" {verdict} 1e-6)")
    ewt = attribution.get("ewt_mean_s")
    if ewt is not None:
        lines.append(f"  mean EWT: {ewt['delta']:+.6f} s"
                     f" ({ewt['a']:.6f} → {ewt['b']:.6f})")
    done = attribution.get("workflows_completed")
    if done is not None and done["delta"]:
        lines.append(f"  workflows completed: {done['delta']:+.0f}"
                     f" ({done['a']:.0f} → {done['b']:.0f})")
    misses = attribution.get("slo_miss_delta_by_benchmark")
    if misses:
        listing = ", ".join(f"{bench} {delta:+d}"
                            for bench, delta in misses.items())
        lines.append(f"  SLO misses: {listing}")
    counts = attribution.get("count_deltas")
    if counts:
        listing = ", ".join(f"{key} {delta:+d}"
                            for key, delta in counts.items())
        lines.append(f"  counts: {listing}")
    if len(lines) == 1:
        lines.append("  (no summarized outcome moved)")
    return lines


def format_diff(result: Dict[str, Any]) -> str:
    lines = [f"repro diff: {result['a']['path']} vs"
             f" {result['b']['path']}"]
    for note in result["notes"]:
        lines.append(f"note: {note}")
    for pair in result["pairs"]:
        lines.append(
            f"A: run {pair['run_a']} ({pair['label_a']}) —"
            f" {pair['n_epochs']['a']} epochs,"
            f" final {_short(pair['final']['a'])}")
        lines.append(
            f"B: run {pair['run_b']} ({pair['label_b']}) —"
            f" {pair['n_epochs']['b']} epochs,"
            f" final {_short(pair['final']['b'])}")
        if pair["identical"]:
            lines.append("identical: every chain and the final"
                         " fingerprint agree")
            continue
        first = pair["first"]
        if first is not None:
            agreeing = sorted(sub for sub, s in pair["subsystems"].items()
                              if s["status"] == "identical")
            lines.append(
                f"first divergence: epoch {first['epoch']}"
                f" [{first['t0_s']:.1f}s, {first['t1_s']:.1f}s)"
                f" in subsystem '{first['subsystem']}'")
            others = [f"{sub}@{s['first_epoch']}"
                      for sub, s in sorted(pair["subsystems"].items())
                      if s["status"] == "diverged"
                      and sub != first["subsystem"]]
            if others:
                lines.append(f"  also diverged: {', '.join(others)}")
            if agreeing:
                lines.append(f"  still identical: {', '.join(agreeing)}")
        if pair["decision"] is not None:
            lines.extend(_format_decision(pair["decision"]))
        for note in pair["notes"]:
            lines.append(f"note: {note}")
        if pair["attribution"] is not None:
            lines.extend(_format_attribution(pair["attribution"]))
    return "\n".join(lines) + "\n"
