"""Chrome trace-event schema validation (CI's trace-smoke gate).

Usage::

    PYTHONPATH=src python -m repro.obs.validate out.json

Checks the structural contract Perfetto's JSON importer relies on:
a ``traceEvents`` array of event objects with known phases, numeric
timestamps, pid/tid routing, numeric counter values, and balanced
``b``/``e`` async span pairs.
"""

from __future__ import annotations

import json
import sys
from typing import List

#: Event phases repro.obs emits (a subset of the trace-event spec).
KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "e", "n", "M"}


def validate_events(events: List[dict]) -> List[str]:
    """Structural problems found in a trace-event list (empty = valid)."""
    problems: List[str] = []
    open_spans = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing/non-string name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing/non-int {key}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing/non-numeric ts")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter without args")
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                problems.append(f"{where}: non-numeric counter value")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant without scope s")
        if phase in ("b", "e"):
            if "id" not in event or "cat" not in event:
                problems.append(f"{where}: async event without id/cat")
                continue
            key = (event["pid"], event["cat"], event["id"],
                   event["name"])
            if phase == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                if open_spans.get(key, 0) <= 0:
                    problems.append(f"{where}: 'e' without matching 'b'"
                                    f" for {key}")
                else:
                    open_spans[key] -= 1
    dangling = {k: n for k, n in open_spans.items() if n > 0}
    if dangling:
        problems.append(f"{len(dangling)} async span(s) never closed:"
                        f" {sorted(dangling)[:3]}...")
    return problems


def validate_file(path: str) -> List[str]:
    """Validate one trace JSON file; returns the problem list."""
    with open(path) as handle:
        document = json.load(handle)
    if isinstance(document, list):
        events = document  # the bare-array flavour of the format
    elif isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no traceEvents array"]
    else:
        return ["top level is neither an object nor an array"]
    if not events:
        return ["trace contains no events"]
    return validate_events(events)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.json>",
              file=sys.stderr)
        return 2
    problems = validate_file(argv[0])
    if problems:
        for problem in problems[:20]:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    with open(argv[0]) as handle:
        count = len(json.load(handle)["traceEvents"])
    print(f"OK: {argv[0]} is valid trace-event JSON ({count} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
