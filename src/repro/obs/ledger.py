"""The energy-attribution ledger: where every joule of a run went.

The hardware energy model accrues joules into coarse meter components
(active cores, idle cores, uncore, DRAM, DVFS overhead). The ledger
records the *same* accrual events as timestamped entries tagged with
their full context — (node, pool, benchmark, function, job) — and then
classifies each entry into the component taxonomy of
:data:`repro.obs.registry.LEDGER_COMPONENTS`:

``run``, ``block``, ``cold_start``, ``idle``, ``freq_switch``,
``retry_waste``, ``cancelled``, ``doomed``, ``shed``, ``static``.

Classification is retrospective: whether an active segment was
productive work, a retry that later lost its race, or effort for a
workflow that ultimately failed is only known once the run finishes, so
:meth:`EnergyLedger.close_run` resolves raw entries against the final
job states and the tracer's workflow spans/links.

Because every ``EnergyMeter.add`` in the hardware layer is mirrored by
exactly one ledger entry with the same joules, the classified components
sum to the hardware model's total by construction; :meth:`close_run`
asserts this within a 1e-6 relative tolerance and raises
:class:`EnergyConservationError` otherwise.

The ledger is opt-in (attach one via ``Tracer(ledger=EnergyLedger())``)
and read-only with respect to the simulation: runs with and without a
ledger are bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.prof import profiled
from repro.obs.registry import LEDGER_COMPONENTS

#: Raw accrual kinds recorded by the hardware hooks, before
#: classification. The mapping of the unambiguous ones:
_DIRECT = {
    "idle": "idle",
    "blocked_hold": "block",
    "freq_switch": "freq_switch",
    "static": "static",
}


class EnergyConservationError(AssertionError):
    """The classified components do not sum to the hardware total."""


@dataclass
class LedgerEntry:
    """One energy accrual event, tagged with its full context."""

    run: int
    t0: float
    t1: float
    joules: float
    raw: str                      # accrual kind (see _DIRECT + active_*)
    node: str = ""
    pool: Optional[str] = None
    benchmark: Optional[str] = None
    function: Optional[str] = None
    uid: Optional[int] = None
    #: Final component, resolved by close_run().
    component: Optional[str] = None
    #: Transient job reference for retrospective classification; dropped
    #: (set to None) once the entry is classified.
    job: Any = None


@dataclass
class ConservationReport:
    """The per-run validation outcome of the ledger."""

    run: int
    label: str
    hardware_j: float
    ledger_j: float
    rel_error: float
    by_component: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.rel_error <= EnergyLedger.TOLERANCE


class EnergyLedger:
    """Accumulates and classifies energy accrual events across runs."""

    #: Relative conservation tolerance (components vs. hardware total).
    TOLERANCE = 1e-6

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []
        self.reports: List[ConservationReport] = []
        self.run_labels: List[str] = []
        self.tracer = None
        self._run = 0

    def attach(self, tracer) -> None:
        """Called by :class:`~repro.obs.tracer.Tracer` on construction."""
        self.tracer = tracer

    def begin_run(self, run: int, label: str) -> None:
        self._run = run
        while len(self.run_labels) <= run:
            self.run_labels.append(label)
        self.run_labels[run] = label

    # ------------------------------------------------------------------
    # Recording (called from the hardware accrual points)
    # ------------------------------------------------------------------
    @profiled("obs.ledger")
    def record_core(self, core, t0: float, t1: float, joules: float,
                    raw: str, job: Any = None) -> None:
        """One closed core accounting segment (idle/active/transition)."""
        if joules <= 0:
            return
        # float() strips numpy scalar types so summaries stay
        # json-serializable (np.float64 comparisons yield np.bool_).
        entry = LedgerEntry(
            run=self._run, t0=float(t0), t1=float(t1),
            joules=float(joules), raw=raw,
            node=getattr(core, "track", "") or f"core{core.core_id}",
            pool=getattr(core, "pool", None), job=job)
        if job is not None:
            entry.benchmark = getattr(job, "benchmark", None)
            entry.function = getattr(job, "function_name", None)
            entry.uid = getattr(job, "job_id", None)
        self.entries.append(entry)

    @profiled("obs.ledger")
    def record_static(self, node: str, t0: float, t1: float,
                      joules: float) -> None:
        """Background (uncore + DRAM standby) energy of one server."""
        if joules <= 0:
            return
        self.entries.append(LedgerEntry(
            run=self._run, t0=float(t0), t1=float(t1),
            joules=float(joules), raw="static", node=node))

    # ------------------------------------------------------------------
    # Classification + validation
    # ------------------------------------------------------------------
    @profiled("obs.ledger")
    def close_run(self, cluster) -> ConservationReport:
        """Classify this run's entries and validate conservation.

        Call after the cluster has been finalized (all meters accrued).
        Raises :class:`EnergyConservationError` when the components do
        not sum to ``cluster.total_energy_j`` within the tolerance.
        """
        run = self._run
        shed_uids = self._workflow_jobs(run, "failed")
        doomed_uids = self._workflow_jobs(run, "doomed")
        ledger_j = 0.0
        by_component = {c: 0.0 for c in LEDGER_COMPONENTS}
        for entry in self.entries:
            if entry.run != run:
                continue
            if entry.component is None:
                entry.component = self._classify(entry, shed_uids,
                                                 doomed_uids)
                entry.job = None
            ledger_j += entry.joules
            by_component[entry.component] += entry.joules
        hardware_j = float(cluster.total_energy_j)
        rel_error = (abs(hardware_j - ledger_j)
                     / max(abs(hardware_j), 1e-12))
        label = (self.run_labels[run] if run < len(self.run_labels)
                 else "run")
        report = ConservationReport(
            run=run, label=label, hardware_j=hardware_j,
            ledger_j=ledger_j, rel_error=rel_error,
            by_component=by_component)
        self.reports.append(report)
        if rel_error > self.TOLERANCE:
            raise EnergyConservationError(
                f"run {run} ({label}): ledger components sum to"
                f" {ledger_j:.6f} J but the hardware meters total"
                f" {hardware_j:.6f} J (relative error {rel_error:.3g}"
                f" > {self.TOLERANCE:g})")
        return report

    def _workflow_jobs(self, run: int, status: str) -> set:
        """Job uids of workflows that ended with ``status``.

        ``failed`` → shed work; ``doomed`` (repro.cancel wrote the chain
        off mid-flight) → the ``doomed`` bucket.
        """
        if self.tracer is None:
            return set()
        matched = {span.uid for span in self.tracer.spans
                   if span.kind == "workflow" and span.run == run
                   and span.args.get("status") == status}
        if not matched:
            return set()
        return {job for (r, wf, job) in self.tracer.wf_links
                if r == run and wf in matched}

    @staticmethod
    def _classify(entry: LedgerEntry, shed_uids: set,
                  doomed_uids: set) -> str:
        direct = _DIRECT.get(entry.raw)
        if direct is not None:
            return direct
        job = entry.job
        if job is not None and getattr(job, "cancelled", False):
            # Killed by the cancel layer: these joules were already
            # burned when the kill landed (the reclaimed remainder never
            # becomes an entry at all).
            return "cancelled"
        wasted = job is not None and (getattr(job, "aborted", False)
                                      or getattr(job, "abandoned", False))
        if wasted:
            return "retry_waste"
        if entry.raw == "active_setup" or (
                job is not None and getattr(job, "is_prewarm", False)):
            return "cold_start"
        if entry.uid is not None and entry.uid in doomed_uids:
            return "doomed"
        if entry.uid is not None and entry.uid in shed_uids:
            return "shed"
        return "run"

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _closed(self, run: Optional[int] = None) -> List[LedgerEntry]:
        return [e for e in self.entries if e.component is not None
                and (run is None or e.run == run)]

    def by_component(self, run: Optional[int] = None) -> Dict[str, float]:
        totals = {c: 0.0 for c in LEDGER_COMPONENTS}
        for entry in self._closed(run):
            totals[entry.component] += entry.joules
        return totals

    def _by_key(self, key, run: Optional[int]) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for entry in self._closed(run):
            name = key(entry)
            if name is None:
                continue
            totals[name] = totals.get(name, 0.0) + entry.joules
        return dict(sorted(totals.items(),
                           key=lambda item: (-item[1], item[0])))

    def by_node(self, run: Optional[int] = None) -> Dict[str, float]:
        return self._by_key(lambda e: e.node or None, run)

    def by_pool(self, run: Optional[int] = None) -> Dict[str, float]:
        return self._by_key(lambda e: e.pool, run)

    def by_benchmark(self, run: Optional[int] = None) -> Dict[str, float]:
        return self._by_key(lambda e: e.benchmark, run)

    def by_function(self, run: Optional[int] = None) -> Dict[str, float]:
        return self._by_key(lambda e: e.function, run)

    #: Rollup key for entries no benchmark can be charged for (idle
    #: cores, static background power, idle-pool retunes).
    UNATTRIBUTED = "(unattributed)"

    def by_benchmark_component(self, run: Optional[int] = None
                               ) -> Dict[str, Dict[str, float]]:
        """Joules per (benchmark x component); the billing substrate.

        Entries without a benchmark land under :data:`UNATTRIBUTED`, so
        the nested values sum to the ledger total exactly — billing
        spreads that row rather than dropping it.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for entry in self._closed(run):
            name = entry.benchmark or self.UNATTRIBUTED
            row = rows.setdefault(name, {c: 0.0 for c in LEDGER_COMPONENTS})
            row[entry.component] += entry.joules
        return dict(sorted(rows.items()))

    def by_tenant(self, tenant_of, run: Optional[int] = None
                  ) -> Dict[str, float]:
        """Joules per tenant, via a benchmark → tenant-name mapping.

        ``tenant_of`` is called with each attributed entry's benchmark
        (e.g. :meth:`TenantRegistry.tenant_name_of`); unattributable
        entries land under :data:`UNATTRIBUTED`. The values sum to the
        ledger total exactly (the tenancy conservation property).
        """
        totals: Dict[str, float] = {}
        for entry in self._closed(run):
            name = (tenant_of(entry.benchmark)
                    if entry.benchmark is not None else self.UNATTRIBUTED)
            totals[name] = totals.get(name, 0.0) + entry.joules
        return dict(sorted(totals.items(),
                           key=lambda item: (-item[1], item[0])))

    def epoch_component_j(self, run: int, n_epochs: int,
                          epoch_s: float) -> List[Dict[str, float]]:
        """Per-epoch joules per component, pro-rated by time overlap.

        An entry spanning an epoch boundary contributes to each epoch in
        proportion to its overlap, so the per-epoch rows sum to the run
        totals exactly (conservation holds over the whole series).
        """
        rows = [{c: 0.0 for c in LEDGER_COMPONENTS}
                for _ in range(n_epochs)]
        span_end = n_epochs * epoch_s
        for entry in self._closed(run):
            t0 = max(0.0, min(entry.t0, span_end))
            t1 = max(0.0, min(entry.t1, span_end))
            if t1 <= t0:
                # Degenerate (instantaneous or out-of-range): bin whole.
                e = max(0, min(n_epochs - 1, int(t0 / epoch_s)))
                rows[e][entry.component] += entry.joules
                continue
            first = max(0, min(n_epochs - 1, int(t0 / epoch_s)))
            last = max(0, min(n_epochs - 1, int((t1 - 1e-12) / epoch_s)))
            duration = entry.t1 - entry.t0
            for e in range(first, last + 1):
                lo = max(t0, e * epoch_s)
                hi = min(t1, (e + 1) * epoch_s)
                share = max(0.0, hi - lo) / duration
                rows[e][entry.component] += entry.joules * share
        return rows

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A JSON-serializable rollup of every closed run."""
        runs = []
        for report in self.reports:
            run = report.run
            runs.append({
                "run": run,
                "label": report.label,
                "hardware_j": report.hardware_j,
                "ledger_j": report.ledger_j,
                "rel_error": report.rel_error,
                "conserved": report.ok,
                "by_component": {c: report.by_component.get(c, 0.0)
                                 for c in LEDGER_COMPONENTS},
                "by_node": self.by_node(run),
                "by_pool": self.by_pool(run),
                "by_benchmark": self.by_benchmark(run),
                "by_function": self.by_function(run),
                "by_benchmark_component": self.by_benchmark_component(run),
            })
        return {
            "source": "repro.obs.ledger (EcoFaaS reproduction)",
            "components": list(LEDGER_COMPONENTS),
            "tolerance": self.TOLERANCE,
            "runs": runs,
        }

    def write(self, path: str) -> Dict[str, Any]:
        document = self.summary()
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return document
