"""The decision audit log: structured "why" records from the control plane.

Every consequential control-plane decision — the MILP deadline split, a
pool resize/retune, an admission shed, a brownout level change, a
circuit-breaker trip, an HA failover or redispatch — emits one
:class:`AuditRecord` describing the inputs the decider saw, the action
it took, the alternatives it rejected, and a human-readable reason.
Records carry the workflow/job uid where one applies, so they join
against trace spans (and ``repro explain`` walks both together).

Like the tracer, the audit log is opt-in and read-only: hooks check
``env.audit is not None`` (the :class:`~repro.sim.engine.Environment`
default) before building any arguments, so unaudited runs are
bit-identical to the seed fingerprints.

Export is JSONL with sorted keys and a monotonic per-run sequence
number, which makes same-seed audit logs byte-identical — CI diffs two
of them directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.prof import profiled

#: The audit record kinds emitted by the control plane. Purely
#: documentary — the log accepts any kind string — but tests pin these.
KINDS = (
    "milp_split",      # workflow_controller: deadline split chosen
    "pool_retune",     # node refresh: pool resize / frequency retarget
    "admission_shed",  # guard: workflow rejected at the frontend
    "brownout_change", # guard: admission brownout level moved
    "breaker_trip",    # guard: a function's circuit breaker opened
    "ha_failover",     # ha: controller leadership changed
    "ha_redispatch",   # ha: in-flight work resubmitted elsewhere
    "tenant_throttle", # tenancy: over-budget tenant shed or throttled
    "power_cap_step",  # tenancy: governor moved the actuation ladder
    "workflow_doomed", # cancel: a chain was written off past its doom line
    "retry_budget_exhausted",  # cancel: a retry was denied by the budget
)


@dataclass
class AuditRecord:
    """One control-plane decision: what was seen, done, and rejected."""

    run: int
    seq: int            # monotonic within the run (total order)
    t: float
    kind: str           # one of KINDS
    actor: str          # deciding component, e.g. "node0", "frontend"
    inputs: Dict[str, Any] = field(default_factory=dict)
    action: Dict[str, Any] = field(default_factory=dict)
    alternatives: List[Dict[str, Any]] = field(default_factory=list)
    reason: str = ""
    workflow_uid: Optional[int] = None
    job_uid: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "seq": self.seq,
            "t": round(self.t, 9),
            "kind": self.kind,
            "actor": self.actor,
            "inputs": self.inputs,
            "action": self.action,
            "alternatives": self.alternatives,
            "reason": self.reason,
            "workflow_uid": self.workflow_uid,
            "job_uid": self.job_uid,
        }


class AuditLog:
    """Accumulates decision records across one or more runs."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[AuditRecord] = []
        self.run_labels: List[str] = []
        self._env = None
        self._run = -1
        self._seq = 0

    # ------------------------------------------------------------------
    # Run lifecycle (mirrors the tracer's)
    # ------------------------------------------------------------------
    def bind(self, env) -> None:
        """Attach to ``env``: timestamps come from it, hooks route here."""
        self._env = env
        env.audit = self

    def begin_run(self, label: str) -> None:
        self._run += 1
        self._seq = 0
        self.run_labels.append(label)

    @property
    def now(self) -> float:
        if self._env is None:
            raise RuntimeError("audit log is not bound to an environment")
        return self._env.now

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @profiled("obs.audit")
    def record(self, kind: str, actor: str, *,
               inputs: Optional[Dict[str, Any]] = None,
               action: Optional[Dict[str, Any]] = None,
               alternatives: Sequence[Dict[str, Any]] = (),
               reason: str = "",
               workflow_uid: Optional[int] = None,
               job_uid: Optional[int] = None) -> AuditRecord:
        t = self.now
        if self._run < 0:
            # Hooks fired before begin_run: open an anonymous run.
            self._run = 0
            self.run_labels.append("run")
        rec = AuditRecord(
            run=self._run, seq=self._seq, t=t, kind=kind, actor=actor,
            inputs=dict(inputs or {}), action=dict(action or {}),
            alternatives=[dict(a) for a in alternatives], reason=reason,
            workflow_uid=workflow_uid, job_uid=job_uid)
        self._seq += 1
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Introspection + export
    # ------------------------------------------------------------------
    def of_kind(self, kind: str, run: Optional[int] = None
                ) -> List[AuditRecord]:
        return [r for r in self.records
                if r.kind == kind and (run is None or r.run == run)]

    def for_workflow(self, workflow_uid: int, run: Optional[int] = None
                     ) -> List[AuditRecord]:
        return [r for r in self.records
                if r.workflow_uid == workflow_uid
                and (run is None or r.run == run)]

    def to_jsonl(self) -> str:
        """Byte-deterministic JSONL (sorted keys, stable float repr)."""
        lines = []
        for rec in self.records:
            lines.append(json.dumps(rec.to_dict(), sort_keys=True,
                                    separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> int:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self.records)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read an audit JSONL file back into plain dicts (for explain)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
