"""SLO burn-rate monitors: deterministic latency histograms + alerts.

Per benchmark, the monitor keeps

* a **log-bucket latency histogram** — bucket ``i`` covers latencies in
  ``[1ms * 2^(i/4), 1ms * 2^((i+1)/4))``, i.e. four buckets per doubling
  starting at 1 ms. Bucketing is pure integer math on the latency value,
  so same-seed runs build byte-identical histograms; and
* **windowed burn rates** — the SLO-miss rate over a fast (default 5 s)
  and a slow (default 30 s) trailing window, divided by the target miss
  rate (the error budget). Burn > 1 means the budget is being consumed
  faster than provisioned.

Crossing a burn threshold emits a ``slo_burn_fast`` / ``slo_burn_slow``
trace instant on the frontend track (rising edge only — alerts don't
refire while the condition persists), and the epoch-metrics exporter
counts those instants into ``slo_fast_burns`` / ``slo_slow_burns``
columns via the shared registry.

The monitor observes workflow-end events through the tracer (see
``Tracer.workflow_end``) and never touches simulation state, so
attaching one keeps runs bit-identical.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Lowest histogram bucket boundary (seconds) and buckets per doubling.
_BASE_S = 1e-3
_BUCKETS_PER_DOUBLING = 4


def bucket_index(latency_s: float) -> int:
    """Deterministic log-bucket index for a latency (>= 0)."""
    if latency_s < _BASE_S:
        return 0
    return 1 + int(math.floor(
        _BUCKETS_PER_DOUBLING * math.log2(latency_s / _BASE_S)))


def bucket_bounds(index: int) -> tuple:
    """The ``[lo, hi)`` latency range of a bucket, in seconds."""
    if index <= 0:
        return (0.0, _BASE_S)
    return (_BASE_S * 2 ** ((index - 1) / _BUCKETS_PER_DOUBLING),
            _BASE_S * 2 ** (index / _BUCKETS_PER_DOUBLING))


class LogBucketHistogram:
    """A sparse log-bucket latency histogram (4 buckets per doubling)."""

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0

    def observe(self, latency_s: float) -> None:
        index = bucket_index(latency_s)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1

    def percentile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` (upper bucket bound)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return bucket_bounds(index)[1]
        return bucket_bounds(max(self.buckets))[1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
            "p50_est_s": self.percentile(0.50),
            "p99_est_s": self.percentile(0.99),
        }


@dataclass(frozen=True)
class BurnRateConfig:
    """Multi-window multi-burn-rate alerting policy (SRE-style)."""

    #: Error budget: the provisioned SLO-miss rate per benchmark.
    target_miss_rate: float = 0.1
    fast_window_s: float = 5.0
    slow_window_s: float = 30.0
    #: Burn thresholds: fast window trips on sharp budget consumption,
    #: slow window on sustained consumption at (or above) budget rate.
    fast_burn: float = 4.0
    slow_burn: float = 1.0
    #: Minimum observations in a window before it may alert.
    min_samples: int = 5


class _BenchmarkWindow:
    """Per-benchmark state: trailing events, histogram, alert edges."""

    def __init__(self) -> None:
        #: (t, met) workflow completions, oldest first.
        self.events: deque = deque()
        self.histogram = LogBucketHistogram()
        self.fast_alerting = False
        self.slow_alerting = False
        self.fast_alerts = 0
        self.slow_alerts = 0


class BurnRateMonitor:
    """Tracks per-benchmark SLO burn and emits threshold-crossing alerts."""

    def __init__(self, config: Optional[BurnRateConfig] = None) -> None:
        self.config = config or BurnRateConfig()
        #: run → benchmark → window state.
        self._runs: Dict[int, Dict[str, _BenchmarkWindow]] = {}
        self._run = 0

    def begin_run(self, run: int, label: str) -> None:
        self._run = run
        self._runs.setdefault(run, {})

    def _window(self, benchmark: str) -> _BenchmarkWindow:
        per_run = self._runs.setdefault(self._run, {})
        state = per_run.get(benchmark)
        if state is None:
            state = per_run[benchmark] = _BenchmarkWindow()
        return state

    def _burn(self, state: _BenchmarkWindow, now: float,
              window_s: float) -> tuple:
        """(burn rate, sample count) over the trailing window."""
        cutoff = now - window_s
        total = 0
        missed = 0
        for t, met in reversed(state.events):
            if t < cutoff:
                break
            total += 1
            if not met:
                missed += 1
        if total == 0:
            return 0.0, 0
        return (missed / total) / self.config.target_miss_rate, total

    def observe(self, tracer, benchmark: str, t: float, met: bool,
                latency_s: float = 0.0) -> None:
        """One workflow completion; called from ``Tracer.workflow_end``."""
        cfg = self.config
        state = self._window(benchmark)
        state.events.append((t, met))
        state.histogram.observe(latency_s)
        # Prune anything older than the slow window.
        cutoff = t - cfg.slow_window_s
        while state.events and state.events[0][0] < cutoff:
            state.events.popleft()

        fast, n_fast = self._burn(state, t, cfg.fast_window_s)
        slow, n_slow = self._burn(state, t, cfg.slow_window_s)
        fast_hot = n_fast >= cfg.min_samples and fast >= cfg.fast_burn
        slow_hot = n_slow >= cfg.min_samples and slow >= cfg.slow_burn
        # Rising-edge alerts only: one instant per excursion.
        if fast_hot and not state.fast_alerting:
            state.fast_alerts += 1
            tracer.instant("slo_burn_fast", "frontend",
                           benchmark=benchmark, burn=round(fast, 4),
                           window_s=cfg.fast_window_s, samples=n_fast)
        if slow_hot and not state.slow_alerting:
            state.slow_alerts += 1
            tracer.instant("slo_burn_slow", "frontend",
                           benchmark=benchmark, burn=round(slow, 4),
                           window_s=cfg.slow_window_s, samples=n_slow)
        state.fast_alerting = fast_hot
        state.slow_alerting = slow_hot

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def histogram_of(self, benchmark: str, run: Optional[int] = None
                     ) -> Optional[LogBucketHistogram]:
        per_run = self._runs.get(self._run if run is None else run, {})
        state = per_run.get(benchmark)
        return state.histogram if state is not None else None

    def summary(self) -> Dict[str, Any]:
        runs: List[Dict[str, Any]] = []
        for run in sorted(self._runs):
            benchmarks = {}
            for name in sorted(self._runs[run]):
                state = self._runs[run][name]
                benchmarks[name] = {
                    "fast_alerts": state.fast_alerts,
                    "slow_alerts": state.slow_alerts,
                    "histogram": state.histogram.to_dict(),
                }
            runs.append({"run": run, "benchmarks": benchmarks})
        return {
            "config": {
                "target_miss_rate": self.config.target_miss_rate,
                "fast_window_s": self.config.fast_window_s,
                "slow_window_s": self.config.slow_window_s,
                "fast_burn": self.config.fast_burn,
                "slow_burn": self.config.slow_burn,
                "min_samples": self.config.min_samples,
            },
            "runs": runs,
        }
