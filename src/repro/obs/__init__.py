"""repro.obs — invocation-lifecycle tracing, attribution, and telemetry.

A zero-overhead-when-disabled observability subsystem: the platform is
threaded with hooks that dispatch through ``Environment.trace`` (the
shared :data:`~repro.obs.tracer.NULL_TRACER` by default). Installing a
real :class:`~repro.obs.tracer.Tracer` — via :func:`install` for the
experiment harness, or ``tracer.bind(env)`` directly — records typed
span/instant/counter streams that export to Perfetto-loadable Chrome
trace JSON, per-epoch metrics time series, and plain-text summaries.

v2 adds, all equally opt-in and determinism-safe:

* :class:`~repro.obs.ledger.EnergyLedger` — per-joule attribution into
  run / block / cold-start / idle / freq-switch / retry-waste / shed /
  static components, validated against the hardware meters;
* :class:`~repro.obs.audit.AuditLog` — structured "why" records from
  every control-plane decision point (install via :func:`install_audit`);
* :class:`~repro.obs.burnrate.BurnRateMonitor` — per-benchmark SLO
  burn-rate alerting on deterministic log-bucket histograms;
* :mod:`~repro.obs.explain` — ranked root causes for missed-SLO
  workflows from the exported artifacts;
* :mod:`~repro.obs.bench` — the ``repro bench`` telemetry panel.
"""

from __future__ import annotations

from typing import Optional

# NB: repro.obs.bench is deliberately NOT imported here — it pulls in the
# experiment harness, which imports the sim kernel, which imports
# repro.obs.tracer; importing bench at package-init time would close that
# loop into a cycle. Use ``import repro.obs.bench`` directly (the CLI does).
from repro.obs.audit import AuditLog, AuditRecord
from repro.obs.burnrate import (
    BurnRateConfig,
    BurnRateMonitor,
    LogBucketHistogram,
)
from repro.obs.diff import diff_documents, format_diff
from repro.obs.explain import explain, format_explanation, load_explain_data
from repro.obs.export import (
    chrome_trace_events,
    epoch_rows,
    queueing_by_function,
    run_summary,
    write_chrome_trace,
    write_epoch_metrics,
)
from repro.obs.fingerprint import (
    FingerprintRecorder,
    canon,
    canonical_json,
    cluster_fingerprint,
    digest,
)
from repro.obs.ledger import EnergyConservationError, EnergyLedger
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    profiled,
)
from repro.obs.prof import active as active_profiler
from repro.obs.prof import install as install_profiler
from repro.obs.prof import uninstall as uninstall_profiler
from repro.obs.registry import (
    EPOCH_INSTANT_COLUMNS,
    LEDGER_COMPONENTS,
    LEDGER_EPOCH_COLUMNS,
)
from repro.obs.report import report
from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)
from repro.obs.validate import validate_events, validate_file

__all__ = [
    "EPOCH_INSTANT_COLUMNS",
    "LEDGER_COMPONENTS",
    "LEDGER_EPOCH_COLUMNS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "AuditLog",
    "AuditRecord",
    "BurnRateConfig",
    "BurnRateMonitor",
    "CounterRecord",
    "EnergyConservationError",
    "EnergyLedger",
    "FingerprintRecorder",
    "InstantRecord",
    "LogBucketHistogram",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "SpanRecord",
    "Tracer",
    "active_audit",
    "active_profiler",
    "active_tracer",
    "canon",
    "canonical_json",
    "chrome_trace_events",
    "cluster_fingerprint",
    "diff_documents",
    "digest",
    "epoch_rows",
    "explain",
    "format_diff",
    "format_explanation",
    "install",
    "install_audit",
    "install_profiler",
    "load_explain_data",
    "profiled",
    "queueing_by_function",
    "report",
    "run_summary",
    "uninstall",
    "uninstall_audit",
    "uninstall_profiler",
    "validate_events",
    "validate_file",
    "write_chrome_trace",
    "write_epoch_metrics",
]

#: The process-wide tracer the experiment harness attaches to every
#: cluster it builds (None = tracing disabled).
_active: Optional[Tracer] = None

#: The process-wide audit log, same lifecycle as the tracer.
_active_audit: Optional[AuditLog] = None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer for subsequent experiment runs."""
    global _active
    _active = tracer
    return tracer


def uninstall() -> None:
    """Disable experiment tracing (does not clear recorded data)."""
    global _active
    _active = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _active


def install_audit(audit: AuditLog) -> AuditLog:
    """Make ``audit`` the active decision log for subsequent runs."""
    global _active_audit
    _active_audit = audit
    return audit


def uninstall_audit() -> None:
    """Disable decision auditing (does not clear recorded data)."""
    global _active_audit
    _active_audit = None


def active_audit() -> Optional[AuditLog]:
    """The installed audit log, or None when auditing is disabled."""
    return _active_audit
