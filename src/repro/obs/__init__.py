"""repro.obs — invocation-lifecycle tracing and trace export.

A zero-overhead-when-disabled observability subsystem: the platform is
threaded with hooks that dispatch through ``Environment.trace`` (the
shared :data:`~repro.obs.tracer.NULL_TRACER` by default). Installing a
real :class:`~repro.obs.tracer.Tracer` — via :func:`install` for the
experiment harness, or ``tracer.bind(env)`` directly — records typed
span/instant/counter streams that export to Perfetto-loadable Chrome
trace JSON, per-epoch metrics time series, and plain-text summaries.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    chrome_trace_events,
    epoch_rows,
    queueing_by_function,
    run_summary,
    write_chrome_trace,
    write_epoch_metrics,
)
from repro.obs.report import report
from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)
from repro.obs.validate import validate_events, validate_file

__all__ = [
    "NULL_TRACER",
    "CounterRecord",
    "InstantRecord",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "chrome_trace_events",
    "epoch_rows",
    "install",
    "queueing_by_function",
    "report",
    "run_summary",
    "uninstall",
    "validate_events",
    "validate_file",
    "write_chrome_trace",
    "write_epoch_metrics",
]

#: The process-wide tracer the experiment harness attaches to every
#: cluster it builds (None = tracing disabled).
_active: Optional[Tracer] = None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the active tracer for subsequent experiment runs."""
    global _active
    _active = tracer
    return tracer


def uninstall() -> None:
    """Disable experiment tracing (does not clear recorded data)."""
    global _active
    _active = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _active
