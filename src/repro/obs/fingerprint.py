"""Canonical run fingerprints and progressive per-epoch chain digests.

This module is the single home of the canonical-JSON digest that every
determinism anchor in the repo shares (it used to live twice, as
``tests/fingerprints.py::_canon`` and ``repro.verify.fuzz::_canonical``):

* :func:`canon` / :func:`canonical_json` — a JSON-stable, full-precision
  form of any metrics value (floats via ``repr``, numpy scalars
  unwrapped, dict keys stringified and sorted, dataclasses by field);
* :func:`cluster_fingerprint` — the whole-run SHA-256 over every
  observable outcome of one finalized cluster. The stored seed
  fingerprints (``tests/data/seed_fingerprint.json``) and the shrunk
  fuzz-corpus artifacts (``corpus/``) pin this digest byte-for-byte, so
  its payload and serialization must never drift silently.

On top of the whole-run digest it adds **progressive fingerprints**: a
:class:`FingerprintRecorder` attached to a tracer
(``Tracer(fingerprint=FingerprintRecorder())``) that, when a run closes,
folds each observability stream into a rolling SHA-256 **chain** per
epoch and per subsystem:

* ``metrics`` — the per-epoch metrics row (invocations, energy, p50/p99,
  SLO violations, every counter column);
* ``ledger`` — per-epoch joules per attribution component (present when
  the tracer carries an :class:`~repro.obs.ledger.EnergyLedger`);
* ``audit`` — the decision records inside the epoch (present when an
  audit log is installed);
* ``instants`` — every trace instant inside the epoch.

Chain link ``e`` is ``sha256(chain[e-1] + "\\n" + payload_json[e])``, so
two runs' chains agree at epoch ``e`` iff every epoch up to and
including ``e`` agreed — which is what lets ``repro diff`` *bisect* two
chains to the first diverging epoch instead of comparing full payloads.

The recorder only reads recorded tracer/audit/ledger state after the
run has finished: fingerprints-on runs are bit-identical to the stored
seed fingerprints, including under chaos. Everything serializes to a
small ``fingerprints.json`` artifact (:meth:`FingerprintRecorder.write`)
alongside a run **manifest** (seed, config digest, artifact paths).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, List, Optional

try:  # numpy is the repo's one hard dependency, but keep this importable
    import numpy as _np
    _BOOL_TYPES: tuple = (bool, _np.bool_)
    _FLOAT_TYPES: tuple = (float, _np.floating)
    _INT_TYPES: tuple = (int, _np.integer)
except ImportError:  # pragma: no cover - numpy is baked into the image
    _BOOL_TYPES = (bool,)
    _FLOAT_TYPES = (float,)
    _INT_TYPES = (int,)

#: Artifact schema identifier of a fingerprints.json document.
FORMAT = "repro.obs.fingerprint/1"

#: Chain subsystems in diff-priority order: a decision (audit) precedes
#: the point events it causes (instants), which precede the rolled-up
#: outcomes (metrics) and the energy attribution (ledger).
SUBSYSTEMS = ("audit", "instants", "metrics", "ledger")

#: Instant names rolled into the per-run summary counts, as
#: ``summary["counts"][<key>]`` (a compact cross-run attribution view).
SUMMARY_INSTANTS = (
    ("retry", "retries"),
    ("hedge", "hedges"),
    ("invocation_timeout", "timeouts"),
    ("cancel", "cancels"),
    ("doomed_drop", "doomed_drops"),
    ("workflow_doomed", "workflows_doomed"),
    ("retry_budget_exhausted", "retry_budget_denials"),
    ("admission_shed", "admission_sheds"),
    ("tenant_throttle", "tenant_throttles"),
    ("ha_redispatch", "ha_redispatches"),
)


# ---------------------------------------------------------------------------
# Canonical JSON (the shared digest substrate)
# ---------------------------------------------------------------------------
def canon(value: Any) -> Any:
    """A JSON-stable, full-precision form of any metrics value."""
    if isinstance(value, _BOOL_TYPES):
        return bool(value)
    if isinstance(value, _FLOAT_TYPES):
        return repr(float(value))
    if isinstance(value, _INT_TYPES):
        return int(value)
    if isinstance(value, dict):
        return {repr(k) if isinstance(k, float) else str(k): canon(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canon(v) for v in value]
    if dataclasses.is_dataclass(value):
        return {f.name: canon(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    return value


def canonical_json(value: Any) -> str:
    """The one serialization every digest in the repo is built on.

    ``sort_keys=True`` with the default separators — the stored seed
    fingerprints and corpus artifacts were produced with exactly this
    call, so changing it invalidates every pinned digest at once.
    """
    return json.dumps(canon(value), sort_keys=True)


def digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def chain_seed(subsystem: str) -> str:
    """The genesis link of one subsystem's epoch chain."""
    return hashlib.sha256(f"{FORMAT}/{subsystem}".encode()).hexdigest()


def chain_digest(previous: str, payload_json: str) -> str:
    """One rolling-chain step: ``sha256(prev + "\\n" + payload)``."""
    return hashlib.sha256(
        (previous + "\n" + payload_json).encode()).hexdigest()


def fold_chain(subsystem: str, payload_jsons: List[str]) -> List[str]:
    """Fold canonical epoch payloads into the full chain-digest list."""
    link = chain_seed(subsystem)
    chain: List[str] = []
    for payload in payload_jsons:
        link = chain_digest(link, payload)
        chain.append(link)
    return chain


# ---------------------------------------------------------------------------
# The whole-run fingerprint (the determinism anchor)
# ---------------------------------------------------------------------------
def cluster_outcome(cluster) -> Dict[str, Any]:
    """Every observable outcome of one finalized cluster, canonicalized.

    This is the pinned payload behind the stored seed fingerprints and
    the fuzz-corpus artifacts: extend it only when baseline behaviour is
    *meant* to change (and regenerate both).
    """
    m = cluster.metrics
    return canon({
        "functions": m.function_records,
        "workflows": m.workflow_records,
        "retries": m.retries,
        "hedges": m.hedges,
        "timeouts": m.timeouts,
        "failures": m.failures,
        "lost": m.lost_invocations,
        "failed_workflows": m.failed_workflows,
        "retry_energy_j": m.retry_energy_j,
        "energy": [s.meter.total_j for s in cluster.servers],
    })


def cluster_fingerprint(cluster) -> str:
    """SHA-256 over every observable outcome of one finalized cluster."""
    blob = json.dumps(cluster_outcome(cluster), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Progressive per-epoch chains
# ---------------------------------------------------------------------------
class FingerprintRecorder:
    """Builds per-epoch, per-subsystem chain digests for recorded runs.

    Attach one to a tracer (``Tracer(fingerprint=FingerprintRecorder())``)
    and the experiment harness closes it after each run; or call
    :meth:`close_run` directly with a finalized cluster and its tracer.
    Entries accumulate across runs (one per experiment arm), and
    :meth:`write` serializes them — with an optional manifest — to a
    ``fingerprints.json`` document ``repro diff`` consumes.
    """

    def __init__(self, epoch_s: float = 2.0):
        if epoch_s <= 0:
            raise ValueError(f"epoch length must be positive: {epoch_s}")
        self.epoch_s = epoch_s
        #: One JSON-ready entry per closed run.
        self.entries: List[Dict[str, Any]] = []
        #: Canonical epoch-payload strings per run index per subsystem —
        #: kept in memory (never serialized) so the verify layer can
        #: independently recompute the chains as a self-check.
        self.payloads: Dict[int, Dict[str, List[str]]] = {}

    # ------------------------------------------------------------------
    # Closing a run
    # ------------------------------------------------------------------
    def close_run(self, cluster, tracer, audit=None) -> Dict[str, Any]:
        """Fold the just-finished run into chains; returns its entry."""
        from repro.obs.export import epoch_rows  # deferred: avoids cycle
        from repro.obs.registry import LEDGER_EPOCH_COLUMNS
        tracer.finish_run()
        run = tracer._run
        label = (tracer.run_labels[run]
                 if 0 <= run < len(tracer.run_labels) else "run")
        epoch_s = self.epoch_s
        rows = [row for row in epoch_rows(tracer, epoch_s)
                if row["run"] == run]
        n_epochs = len(rows)

        def bin_of(t: float) -> int:
            return max(0, min(n_epochs - 1, int(t / epoch_s)))

        # metrics: the epoch row minus run identity and ledger columns
        # (the ledger stream chains separately, at component granularity).
        strip = {"run", "system"} | set(LEDGER_EPOCH_COLUMNS)
        payloads: Dict[str, List[str]] = {
            "metrics": [canonical_json({k: v for k, v in row.items()
                                        if k not in strip})
                        for row in rows],
        }

        # instants: every point event, minus the run index (two files'
        # arms may sit at different run indices yet be identical runs).
        instant_bins: List[List[Dict[str, Any]]] = [[] for _ in rows]
        for inst in tracer.instants:
            if inst.run != run:
                continue
            instant_bins[bin_of(inst.t)].append({
                "name": inst.name, "track": inst.track,
                "t": round(inst.t, 9), "args": inst.args})
        payloads["instants"] = [canonical_json(bin) for bin in instant_bins]

        # audit: the decision stream, when a log is installed.
        if audit is not None:
            audit_bins: List[List[Dict[str, Any]]] = [[] for _ in rows]
            for record in audit.records:
                if record.run != run:
                    continue
                row = record.to_dict()
                del row["run"]
                audit_bins[bin_of(record.t)].append(row)
            payloads["audit"] = [canonical_json(bin) for bin in audit_bins]

        # ledger: per-epoch joules per component, when one is attached
        # and this run was closed (entries classified).
        ledger = getattr(tracer, "ledger", None)
        if ledger is not None and any(r.run == run for r in ledger.reports):
            per_epoch = ledger.epoch_component_j(run, n_epochs, epoch_s)
            payloads["ledger"] = [canonical_json(row) for row in per_epoch]

        entry = {
            "run": run,
            "label": label,
            "final": cluster_fingerprint(cluster),
            "n_epochs": n_epochs,
            "chains": {sub: fold_chain(sub, payloads[sub])
                       for sub in payloads},
            "summary": self._summary(cluster, tracer, run, ledger),
        }
        self.entries.append(entry)
        self.payloads[run] = payloads
        return entry

    def _summary(self, cluster, tracer, run: int,
                 ledger) -> Dict[str, Any]:
        """The compact attribution rollup ``repro diff`` reports from."""
        misses: Dict[str, int] = {}
        workflows = completed = 0
        for span in tracer.spans:
            if span.run != run or span.kind != "workflow":
                continue
            workflows += 1
            if span.args.get("status") != "completed":
                continue
            completed += 1
            if not span.args.get("met_slo", True):
                misses[span.name] = misses.get(span.name, 0) + 1
        counts = {key: 0 for _, key in SUMMARY_INSTANTS}
        names = dict(SUMMARY_INSTANTS)
        for inst in tracer.instants:
            if inst.run != run:
                continue
            key = names.get(inst.name)
            if key is not None:
                counts[key] += 1
        # Cluster-wide EWT: counter samples arrive node-by-node at the
        # same timestamps; sum per timestamp, then average over time.
        ewt_by_t: Dict[float, float] = {}
        for sample in tracer.counters:
            if sample.run == run and sample.series == "ewt_s":
                ewt_by_t[sample.t] = ewt_by_t.get(sample.t, 0.0) \
                    + sample.value
        ewt_mean = (sum(ewt_by_t.values()) / len(ewt_by_t)
                    if ewt_by_t else None)
        by_component = None
        if ledger is not None and any(r.run == run for r in ledger.reports):
            by_component = {k: float(v)
                            for k, v in ledger.by_component(run).items()}
        return {
            "energy_total_j": float(cluster.total_energy_j),
            "energy_by_component": by_component,
            "workflows": workflows,
            "workflows_completed": completed,
            "slo_misses_by_benchmark": dict(sorted(misses.items())),
            "ewt_mean_s": ewt_mean,
            "counts": counts,
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def document(self, manifest: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        """The JSON-ready fingerprints document (payloads stay local)."""
        return {
            "format": FORMAT,
            "epoch_s": self.epoch_s,
            "manifest": dict(manifest or {}),
            "runs": [dict(entry) for entry in self.entries],
        }

    def write(self, path: str,
              manifest: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        document = self.document(manifest)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return document


def load_document(path: str) -> Dict[str, Any]:
    """Read and validate one fingerprints.json document."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise ValueError(
            f"not a fingerprints document (format="
            f"{document.get('format')!r}"
            if isinstance(document, dict) else
            "not a fingerprints document (top level is not an object)")
    runs = document.get("runs")
    if not isinstance(runs, list):
        raise ValueError("fingerprints document has no runs list")
    epoch_s = document.get("epoch_s")
    if not isinstance(epoch_s, (int, float)) or not math.isfinite(epoch_s) \
            or epoch_s <= 0:
        raise ValueError(f"bad epoch_s in fingerprints document: {epoch_s!r}")
    return document
