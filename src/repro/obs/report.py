"""Post-hoc trace analysis: the ``repro report <trace>`` subcommand.

Reads a Chrome trace-event JSON file produced by
:func:`repro.obs.export.write_chrome_trace` and prints, per run, the top
functions by energy, by queueing delay, and by deadline misses — the
"where did my p99 / my joules go" question the per-invocation spans were
recorded to answer.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Tuple


class TraceStats:
    """Per-function aggregates recovered from an exported trace file."""

    def __init__(self) -> None:
        #: run index → run display label.
        self.runs: Dict[int, str] = {}
        # (run, function) → aggregate.
        self.energy_j: Dict[Tuple[int, str], float] = defaultdict(float)
        self.queue_s: Dict[Tuple[int, str], float] = defaultdict(float)
        self.misses: Dict[Tuple[int, str], int] = defaultdict(int)
        self.completed: Dict[Tuple[int, str], int] = defaultdict(int)
        #: run → tenant → settled bill row (from ``tenant_bill`` instants).
        self.tenant_bills: Dict[int, Dict[str, dict]] = {}
        #: (run, tenant) → count of ``tenant_throttle`` instants.
        self.tenant_throttles: Dict[Tuple[int, str], int] = defaultdict(int)

    def top(self, table: Dict[Tuple[int, str], float], run: int,
            n: int) -> List[Tuple[str, float]]:
        ranked = sorted(
            ((fn, value) for (r, fn), value in table.items()
             if r == run and value > 0),
            key=lambda item: (-item[1], item[0]))
        return ranked[:n]

    def tenant_rows(self, run: int) -> List[dict]:
        """Per-tenant bill rows for ``run``, biggest energy user first.

        A trace with throttle instants but no settled bill (the run was
        never settled) still gets rows so the throttles show up.
        """
        rows = {name: dict(row)
                for name, row in self.tenant_bills.get(run, {}).items()}
        for (r, tenant), count in self.tenant_throttles.items():
            if r != run:
                continue
            row = rows.setdefault(tenant, {
                "tenant": tenant, "energy_j": 0.0, "energy_share": 0.0,
                "cost_usd": 0.0, "throttles": 0})
            row["throttles"] = max(row.get("throttles", 0), count)
        return sorted(rows.values(),
                      key=lambda row: (-row["energy_j"], row["tenant"]))


def _run_of_pid(pid_names: Dict[int, str], pid: int) -> Tuple[int, str]:
    """Recover (run index, run label) from a process_name like
    ``"EcoFaaS [2] invocations"``."""
    name = pid_names.get(pid, "")
    if "[" in name and "]" in name:
        label = name.split("[", 1)[0].strip()
        index = name.split("[", 1)[1].split("]", 1)[0]
        if index.isdigit():
            return int(index), label
    return 0, name or "run"


def load_stats(path: str) -> TraceStats:
    """Aggregate one exported trace file into :class:`TraceStats`."""
    with open(path) as handle:
        document = json.load(handle)
    events = (document if isinstance(document, list)
              else document.get("traceEvents", []))
    pid_names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
    stats = TraceStats()
    # Invocation 'e' events carry the full measured breakdown in args;
    # queue-phase spans are reassembled from their b/e pairs.
    queue_begin: Dict[Tuple[int, int], float] = {}
    uid_function: Dict[Tuple[int, int], str] = {}
    for event in events:
        phase, cat = event.get("ph"), event.get("cat")
        if phase == "i":
            name = event.get("name")
            if name not in ("tenant_bill", "tenant_throttle"):
                continue
            run, label = _run_of_pid(pid_names, event["pid"])
            stats.runs.setdefault(run, label)
            args = event.get("args", {})
            tenant = str(args.get("tenant", "?"))
            if name == "tenant_bill":
                stats.tenant_bills.setdefault(run, {})[tenant] = {
                    "tenant": tenant,
                    "energy_j": float(args.get("energy_j", 0.0)),
                    "energy_share": float(args.get("energy_share", 0.0)),
                    "cost_usd": float(args.get("cost_usd", 0.0)),
                    "throttles": int(args.get("throttles", 0)),
                }
            else:
                stats.tenant_throttles[(run, tenant)] += 1
            continue
        if phase not in ("b", "e"):
            continue
        run, label = _run_of_pid(pid_names, event["pid"])
        stats.runs.setdefault(run, label)
        key = (run, event["id"])
        if cat == "invocation":
            if phase == "b":
                uid_function[key] = event["name"]
            else:
                args = event.get("args", {})
                if args.get("status") != "completed" or args.get("prewarm"):
                    continue
                function = event["name"]
                stats.completed[(run, function)] += 1
                stats.energy_j[(run, function)] += float(
                    args.get("energy_j", 0.0))
                if not args.get("met_deadline", True):
                    stats.misses[(run, function)] += 1
        elif cat == "phase" and event["name"] == "queue":
            if phase == "b":
                queue_begin[key] = event["ts"]
            else:
                t0 = queue_begin.pop(key, None)
                if t0 is not None:
                    function = uid_function.get(key, "?")
                    stats.queue_s[(run, function)] += (
                        (event["ts"] - t0) / 1e6)
    return stats


def format_report(stats: TraceStats, top_n: int = 10) -> str:
    lines: List[str] = []
    for run in sorted(stats.runs):
        label = stats.runs[run]
        total = sum(count for (r, _), count in stats.completed.items()
                    if r == run)
        lines.append(f"== run {run} ({label}): {total} completed"
                     f" invocations ==")
        sections = (
            ("top functions by energy", stats.energy_j, "J", "{:.1f}"),
            ("top functions by queueing delay", stats.queue_s, "s",
             "{:.3f}"),
            ("top functions by deadline misses", stats.misses, "",
             "{:.0f}"),
        )
        for title, table, unit, fmt in sections:
            ranked = stats.top(table, run, top_n)
            lines.append(f"-- {title} --")
            if not ranked:
                lines.append("   (none)")
                continue
            width = max(len(fn) for fn, _ in ranked)
            for function, value in ranked:
                lines.append(f"   {function.ljust(width)}"
                             f"  {fmt.format(value)}{unit}")
        tenants = stats.tenant_rows(run)
        if tenants:  # section only exists when the run was multi-tenant
            lines.append("-- tenants (energy share / billed cost /"
                         " throttles) --")
            width = max(len(row["tenant"]) for row in tenants)
            for row in tenants:
                lines.append(
                    f"   {row['tenant'].ljust(width)}"
                    f"  {row['energy_j']:10.1f}J"
                    f"  {row['energy_share'] * 100:5.1f}%"
                    f"  ${row['cost_usd']:.6f}"
                    f"  {row['throttles']} throttle"
                    f"{'s' if row['throttles'] != 1 else ''}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def stats_to_dict(stats: TraceStats, top_n: int = 10) -> dict:
    """The report as a JSON-serializable document (``--format json``)."""
    runs = []
    for run in sorted(stats.runs):
        completed = sum(count for (r, _), count in stats.completed.items()
                        if r == run)
        runs.append({
            "run": run,
            "label": stats.runs[run],
            "completed_invocations": completed,
            "top_energy_j": [
                {"function": fn, "energy_j": value}
                for fn, value in stats.top(stats.energy_j, run, top_n)],
            "top_queueing_s": [
                {"function": fn, "queue_s": value}
                for fn, value in stats.top(stats.queue_s, run, top_n)],
            "top_deadline_misses": [
                {"function": fn, "misses": int(value)}
                for fn, value in stats.top(stats.misses, run, top_n)],
            "tenants": stats.tenant_rows(run),
        })
    return {"source": "repro.obs.report", "runs": runs}


def report(path: str, top_n: int = 10, fmt: str = "text") -> str:
    """Load ``path`` and render the report as text or JSON."""
    stats = load_stats(path)
    if fmt == "json":
        return json.dumps(stats_to_dict(stats, top_n), indent=1,
                          sort_keys=True) + "\n"
    return format_report(stats, top_n)
