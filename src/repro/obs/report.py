"""Post-hoc trace analysis: the ``repro report <trace>`` subcommand.

Reads a Chrome trace-event JSON file produced by
:func:`repro.obs.export.write_chrome_trace` and prints, per run, the top
functions by energy, by queueing delay, and by deadline misses — the
"where did my p99 / my joules go" question the per-invocation spans were
recorded to answer.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Tuple


class TraceStats:
    """Per-function aggregates recovered from an exported trace file."""

    def __init__(self) -> None:
        #: run index → run display label.
        self.runs: Dict[int, str] = {}
        # (run, function) → aggregate.
        self.energy_j: Dict[Tuple[int, str], float] = defaultdict(float)
        self.queue_s: Dict[Tuple[int, str], float] = defaultdict(float)
        self.misses: Dict[Tuple[int, str], int] = defaultdict(int)
        self.completed: Dict[Tuple[int, str], int] = defaultdict(int)

    def top(self, table: Dict[Tuple[int, str], float], run: int,
            n: int) -> List[Tuple[str, float]]:
        ranked = sorted(
            ((fn, value) for (r, fn), value in table.items()
             if r == run and value > 0),
            key=lambda item: (-item[1], item[0]))
        return ranked[:n]


def _run_of_pid(pid_names: Dict[int, str], pid: int) -> Tuple[int, str]:
    """Recover (run index, run label) from a process_name like
    ``"EcoFaaS [2] invocations"``."""
    name = pid_names.get(pid, "")
    if "[" in name and "]" in name:
        label = name.split("[", 1)[0].strip()
        index = name.split("[", 1)[1].split("]", 1)[0]
        if index.isdigit():
            return int(index), label
    return 0, name or "run"


def load_stats(path: str) -> TraceStats:
    """Aggregate one exported trace file into :class:`TraceStats`."""
    with open(path) as handle:
        document = json.load(handle)
    events = (document if isinstance(document, list)
              else document.get("traceEvents", []))
    pid_names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
    stats = TraceStats()
    # Invocation 'e' events carry the full measured breakdown in args;
    # queue-phase spans are reassembled from their b/e pairs.
    queue_begin: Dict[Tuple[int, int], float] = {}
    uid_function: Dict[Tuple[int, int], str] = {}
    for event in events:
        phase, cat = event.get("ph"), event.get("cat")
        if phase not in ("b", "e"):
            continue
        run, label = _run_of_pid(pid_names, event["pid"])
        stats.runs.setdefault(run, label)
        key = (run, event["id"])
        if cat == "invocation":
            if phase == "b":
                uid_function[key] = event["name"]
            else:
                args = event.get("args", {})
                if args.get("status") != "completed" or args.get("prewarm"):
                    continue
                function = event["name"]
                stats.completed[(run, function)] += 1
                stats.energy_j[(run, function)] += float(
                    args.get("energy_j", 0.0))
                if not args.get("met_deadline", True):
                    stats.misses[(run, function)] += 1
        elif cat == "phase" and event["name"] == "queue":
            if phase == "b":
                queue_begin[key] = event["ts"]
            else:
                t0 = queue_begin.pop(key, None)
                if t0 is not None:
                    function = uid_function.get(key, "?")
                    stats.queue_s[(run, function)] += (
                        (event["ts"] - t0) / 1e6)
    return stats


def format_report(stats: TraceStats, top_n: int = 10) -> str:
    lines: List[str] = []
    for run in sorted(stats.runs):
        label = stats.runs[run]
        total = sum(count for (r, _), count in stats.completed.items()
                    if r == run)
        lines.append(f"== run {run} ({label}): {total} completed"
                     f" invocations ==")
        sections = (
            ("top functions by energy", stats.energy_j, "J", "{:.1f}"),
            ("top functions by queueing delay", stats.queue_s, "s",
             "{:.3f}"),
            ("top functions by deadline misses", stats.misses, "",
             "{:.0f}"),
        )
        for title, table, unit, fmt in sections:
            ranked = stats.top(table, run, top_n)
            lines.append(f"-- {title} --")
            if not ranked:
                lines.append("   (none)")
                continue
            width = max(len(fn) for fn, _ in ranked)
            for function, value in ranked:
                lines.append(f"   {function.ljust(width)}"
                             f"  {fmt.format(value)}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def stats_to_dict(stats: TraceStats, top_n: int = 10) -> dict:
    """The report as a JSON-serializable document (``--format json``)."""
    runs = []
    for run in sorted(stats.runs):
        completed = sum(count for (r, _), count in stats.completed.items()
                        if r == run)
        runs.append({
            "run": run,
            "label": stats.runs[run],
            "completed_invocations": completed,
            "top_energy_j": [
                {"function": fn, "energy_j": value}
                for fn, value in stats.top(stats.energy_j, run, top_n)],
            "top_queueing_s": [
                {"function": fn, "queue_s": value}
                for fn, value in stats.top(stats.queue_s, run, top_n)],
            "top_deadline_misses": [
                {"function": fn, "misses": int(value)}
                for fn, value in stats.top(stats.misses, run, top_n)],
        })
    return {"source": "repro.obs.report", "runs": runs}


def report(path: str, top_n: int = 10, fmt: str = "text") -> str:
    """Load ``path`` and render the report as text or JSON."""
    stats = load_stats(path)
    if fmt == "json":
        return json.dumps(stats_to_dict(stats, top_n), indent=1,
                          sort_keys=True) + "\n"
    return format_report(stats, top_n)
