"""Kernel self-profiling: wall-time attribution and event-loop counters.

The same measure-before-you-bill philosophy the energy ledger applies to
simulated joules applies here to the reproduction's own runtime: before
anyone optimizes the discrete-event kernel, every wall-second of a run
should be attributed to a component, with a conservation check.

A :class:`Profiler` collects two kinds of data, both from the host
wall-clock (``time.perf_counter``) and never from simulation state:

* **kernel counters** — heap push/pop totals, max/mean heap depth,
  callback dispatch counts, and per-event-type counts, sampled by
  ``Environment.schedule``/``step`` through the ``env.prof`` hook;
* **wall-time attribution** — scoped timers around the known-hot
  components (MILP solves, energy integration, tracer overhead, ...),
  accounted *exclusively*: entering a scope stops the parent's clock, so
  the per-path self-times sum to the profiled window by construction.
  The components are named in
  :data:`repro.obs.registry.PROFILE_COMPONENTS`.

Opt-in follows the ``env.trace`` pattern: ``Environment.prof`` is the
shared :data:`NULL_PROFILER` (every hook a no-op) until a real profiler
is bound. Code without an environment at hand (the MILP solver, the
predictor) is instrumented with the :func:`profiled` decorator, which
dispatches through the module-level active profiler installed by
:func:`install` — the decorator short-circuits to a plain call while no
profiler is running, and the profiler only ever *reads* the wall clock,
so profiler-off and profiler-on runs are both bit-identical in every
simulated metric.

Aggregated output:

* :meth:`Profiler.by_component` — hotspot rows (self-time, share, calls);
* :meth:`Profiler.collapsed` — collapsed-stack text (``a;b;c <usec>``)
  loadable by standard flamegraph tools (flamegraph.pl, speedscope,
  inferno);
* :func:`format_hotspots` / :func:`format_scaling` — the text tables the
  ``repro profile`` CLI prints.

This module deliberately imports nothing from the rest of ``repro``
except the (equally import-free) name registry, so the sim kernel and
the core solvers can depend on it without cycles.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import PROFILE_COMPONENTS

#: Component the profiled window opens with; its self-time is everything
#: not claimed by a nested scope (harness setup, trace generation,
#: metric rollups).
ROOT_COMPONENT = "harness"

#: Presentation order of the known components (unknown ones sort after,
#: alphabetically).
_COMPONENT_ORDER = {name: i for i, (name, _) in enumerate(PROFILE_COMPONENTS)}

COMPONENT_DESCRIPTIONS = dict(PROFILE_COMPONENTS)


class NullProfiler:
    """The shared do-nothing profiler: every hook is a no-op.

    Installed as ``Environment.prof`` by default so the kernel's
    instrumentation points pay one attribute lookup and one falsy check
    per event, nothing more.
    """

    enabled = False

    def bind(self, env) -> None:
        pass

    def enter(self, component: str) -> None:
        pass

    def exit(self, component: str) -> None:
        pass

    def note_push(self, depth: int) -> None:
        pass

    def note_event(self, event_type: str, n_callbacks: int) -> None:
        pass


#: The one shared null profiler (kernel hooks dispatch through this when
#: no real profiler is bound).
NULL_PROFILER = NullProfiler()


class Profiler(NullProfiler):
    """Records exclusive wall-time per component path plus kernel counters.

    Lifecycle: construct, :func:`install` (so the decorator-instrumented
    solvers see it), :meth:`start`, run the scenario (``run_cluster``
    binds it to each environment it builds), :meth:`stop`,
    :func:`uninstall`. ``enabled`` is False outside start/stop, which
    short-circuits every hook.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.enabled = False
        self._clock = clock
        self._stack: List[str] = []
        self._mark = 0.0
        self._t0 = 0.0
        #: Total profiled wall-time across start/stop windows.
        self.total_s = 0.0
        #: Exclusive self-time per component path (tuple of scope names).
        self.self_s: Dict[Tuple[str, ...], float] = {}
        #: Scope entry count per component path.
        self.calls: Dict[Tuple[str, ...], int] = {}
        # Kernel counters (Environment.schedule / step).
        self.pushes = 0
        self.pops = 0
        self.callbacks_dispatched = 0
        self.events_by_type: Dict[str, int] = {}
        self.heap_depth_max = 0
        self._heap_depth_sum = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, env) -> None:
        """Attach to ``env``: the kernel's counter hooks route here."""
        env.prof = self

    def start(self) -> None:
        """Open a profiled window rooted at :data:`ROOT_COMPONENT`."""
        if self.enabled:
            raise RuntimeError("profiler is already running")
        self._stack = [ROOT_COMPONENT]
        self._t0 = self._clock()
        self._mark = self._t0
        self.calls[(ROOT_COMPONENT,)] = self.calls.get((ROOT_COMPONENT,),
                                                       0) + 1
        self.enabled = True

    def stop(self) -> float:
        """Close the window; returns total profiled seconds so far."""
        if not self.enabled:
            raise RuntimeError("profiler is not running")
        now = self._clock()
        self._accrue(now)
        self.enabled = False
        self.total_s += now - self._t0
        self._stack = []
        return self.total_s

    # ------------------------------------------------------------------
    # Scoped timers (exclusive accounting)
    # ------------------------------------------------------------------
    def _accrue(self, now: float) -> None:
        dt = now - self._mark
        if dt > 0:
            path = tuple(self._stack)
            self.self_s[path] = self.self_s.get(path, 0.0) + dt
        self._mark = now

    def enter(self, component: str) -> None:
        if not self.enabled:
            return
        self._accrue(self._clock())
        self._stack.append(component)
        path = tuple(self._stack)
        self.calls[path] = self.calls.get(path, 0) + 1

    def exit(self, component: str) -> None:
        if not self.enabled:
            return
        if not self._stack or self._stack[-1] != component:
            raise RuntimeError(
                f"profiler scope mismatch: exiting {component!r} but the"
                f" stack is {self._stack}")
        self._accrue(self._clock())
        self._stack.pop()

    # ------------------------------------------------------------------
    # Kernel counters
    # ------------------------------------------------------------------
    def note_push(self, depth: int) -> None:
        """One event queued; ``depth`` is the heap size after the push."""
        self.pushes += 1
        self._heap_depth_sum += depth
        if depth > self.heap_depth_max:
            self.heap_depth_max = depth

    def note_event(self, event_type: str, n_callbacks: int) -> None:
        """One event popped and about to dispatch ``n_callbacks``."""
        self.pops += 1
        self.callbacks_dispatched += n_callbacks
        self.events_by_type[event_type] = (
            self.events_by_type.get(event_type, 0) + 1)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def profiled_s(self) -> float:
        """Sum of all self-times (equals the window length by design)."""
        return sum(self.self_s.values())

    def by_component(self) -> List[Dict[str, Any]]:
        """Hotspot rows: one per component, presentation-ordered.

        Self-time aggregates every path *ending* in the component, so a
        component's row is its exclusive time no matter where in the
        tree it was entered from.
        """
        rows: Dict[str, Dict[str, Any]] = {}
        for path, seconds in self.self_s.items():
            row = rows.setdefault(path[-1], {"self_s": 0.0, "calls": 0})
            row["self_s"] += seconds
        for path, count in self.calls.items():
            rows.setdefault(path[-1], {"self_s": 0.0, "calls": 0})
            rows[path[-1]]["calls"] += count
        total = self.profiled_s()
        out = []
        for name in sorted(rows, key=lambda n: (_COMPONENT_ORDER.get(
                n, len(_COMPONENT_ORDER)), n)):
            row = rows[name]
            out.append({
                "component": name,
                "self_s": round(row["self_s"], 6),
                "share": round(row["self_s"] / total, 4) if total else 0.0,
                "calls": row["calls"],
            })
        out.sort(key=lambda r: -r["self_s"])
        return out

    def tree(self) -> Dict[str, Any]:
        """The component tree: nested ``{children: {...}, self_s, calls}``."""
        root: Dict[str, Any] = {"self_s": 0.0, "calls": 0, "children": {}}
        for path in sorted(set(self.self_s) | set(self.calls)):
            node = root
            for name in path:
                node = node["children"].setdefault(
                    name, {"self_s": 0.0, "calls": 0, "children": {}})
            node["self_s"] = round(node["self_s"]
                                   + self.self_s.get(path, 0.0), 6)
            node["calls"] += self.calls.get(path, 0)
        return root["children"]

    def collapsed(self) -> str:
        """Collapsed-stack text (one ``a;b;c <microseconds>`` per line).

        Loadable by flamegraph.pl, inferno, or speedscope; the "sample
        count" is integer microseconds of exclusive time.
        """
        lines = []
        for path in sorted(self.self_s):
            usec = int(round(self.self_s[path] * 1e6))
            if usec <= 0:
                continue
            lines.append(";".join(path) + f" {usec}")
        return "\n".join(lines) + ("\n" if lines else "")

    def counters(self) -> Dict[str, Any]:
        """The kernel counters as one JSON-ready dict."""
        return {
            "heap_pushes": self.pushes,
            "heap_pops": self.pops,
            "callbacks_dispatched": self.callbacks_dispatched,
            "heap_depth_max": self.heap_depth_max,
            "heap_depth_mean": round(self._heap_depth_sum / self.pushes, 2)
                               if self.pushes else 0.0,
            "events_by_type": dict(sorted(self.events_by_type.items())),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Everything the profiler measured, as one JSON-ready dict."""
        return {
            "total_s": round(self.total_s, 6),
            "profiled_s": round(self.profiled_s(), 6),
            "components": self.by_component(),
            "tree": self.tree(),
            "counters": self.counters(),
        }


# ---------------------------------------------------------------------------
# Process-wide active profiler (mirrors repro.obs.install / active_tracer)
# ---------------------------------------------------------------------------
_active: NullProfiler = NULL_PROFILER


def install(profiler: Profiler) -> Profiler:
    """Make ``profiler`` the target of :func:`profiled` instrumentation."""
    global _active
    _active = profiler
    return profiler


def uninstall() -> None:
    """Restore the null profiler (does not clear recorded data)."""
    global _active
    _active = NULL_PROFILER


def active() -> Optional[Profiler]:
    """The installed profiler, or None when self-profiling is off."""
    return None if _active is NULL_PROFILER else _active  # type: ignore


def profiled(component: str):
    """Decorator: attribute a callable's wall-time to ``component``.

    While no profiler is installed *and started* this is a falsy check
    plus one extra frame; nested profiled calls account exclusively
    (the callee's time is not double-counted in the caller).
    """
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            prof = _active
            if not prof.enabled:
                return fn(*args, **kwargs)
            prof.enter(component)
            try:
                return fn(*args, **kwargs)
            finally:
                prof.exit(component)
        return wrapper
    return decorate


# ---------------------------------------------------------------------------
# Text rendering (the `repro profile` CLI's tables)
# ---------------------------------------------------------------------------
def format_hotspots(entry: Dict[str, Any]) -> str:
    """One scale's hotspot table from a ``run_profile`` scale entry."""
    counters = entry["counters"]
    lines = [
        f"== profile: scale {entry['scale']:g}x — wall {entry['wall_s']:.2f}s,"
        f" {entry['events_per_s']:,.0f} events/s,"
        f" conservation {100.0 * entry['wall_conservation']:.1f}% ==",
        f"{'component':16s}  {'self_s':>8s}  {'share':>6s}  {'calls':>9s}"
        f"  description",
        f"{'-' * 16}  {'-' * 8}  {'-' * 6}  {'-' * 9}  {'-' * 11}",
    ]
    for row in entry["components"]:
        lines.append(
            f"{row['component']:16s}  {row['self_s']:8.3f}"
            f"  {100.0 * row['share']:5.1f}%  {row['calls']:9d}"
            f"  {COMPONENT_DESCRIPTIONS.get(row['component'], '')}")
    lines.append(
        f"kernel: {counters['heap_pops']} events dispatched"
        f" ({counters['callbacks_dispatched']} callbacks),"
        f" heap depth mean {counters['heap_depth_mean']:g}"
        f" / max {counters['heap_depth_max']}")
    return "\n".join(lines)


def format_scaling(document: Dict[str, Any]) -> str:
    """The cross-scale summary table of a ``run_profile`` document."""
    lines = [
        "== scaling curve ==",
        f"{'scale':>5s}  {'wall_s':>8s}  {'events':>9s}  {'events/s':>9s}"
        f"  {'conserv':>7s}  top component",
        f"{'-' * 5}  {'-' * 8}  {'-' * 9}  {'-' * 9}  {'-' * 7}  {'-' * 13}",
    ]
    for entry in document["scales"]:
        top = entry["components"][0] if entry["components"] else None
        top_text = (f"{top['component']} ({100.0 * top['share']:.1f}%)"
                    if top else "-")
        lines.append(
            f"{entry['scale']:5g}  {entry['wall_s']:8.2f}"
            f"  {entry['counters']['heap_pops']:9d}"
            f"  {entry['events_per_s']:9,.0f}"
            f"  {100.0 * entry['wall_conservation']:6.1f}%  {top_text}")
    return "\n".join(lines)
