"""``repro bench``: benchmark telemetry and regression detection.

Runs a fixed, seed-pinned panel of representative experiments (baseline
and EcoFaaS under low load, chaos, guarded overload, and an HA
partition), measuring for each

* **wall-time** and **peak RSS** — the cost of running the reproduction
  itself (the only nondeterministic numbers in the file), and
* **simulated energy, p99 workflow latency, SLO-miss rate, completed
  workflows** — seed-deterministic results that double as a coarse
  correctness fingerprint.

The panel is written to ``BENCH_<date>.json``; ``--compare <old.json>``
diffs two such files and flags (a) wall-time regressions beyond a
tolerance and (b) *any* drift in the simulated metrics of a same-named
experiment, since those are bit-deterministic given the pinned seeds —
a drift means behavior changed, not noise.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines import BaselineSystem
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import chaos as chaos_experiment
from repro.experiments import overload as overload_experiment
from repro.experiments import partition as partition_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults import FaultPlan
from repro.platform.cluster import ClusterConfig

#: Simulated (seed-deterministic) metric keys compared exactly.
SIM_METRICS = ("energy_j", "p99_latency_s", "slo_miss_rate", "completed")

#: Wall-time regression thresholds for ``--compare``: both the relative
#: and the absolute bar must be exceeded (filters scheduler noise on
#: sub-second experiments).
WALL_REL_TOLERANCE = 0.30
WALL_ABS_FLOOR_S = 0.5


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return None  # non-POSIX platform: omit the column


def _measure(cluster) -> Dict[str, Any]:
    summary = dict(cluster.metrics.bench_summary())
    summary["energy_j"] = round(cluster.total_energy_j, 6)
    return summary


def _scenarios(quick: bool) -> List[Tuple[str, Callable[[], Any]]]:
    """The benchmark panel: (name, runner) pairs, seeds pinned."""
    duration = 8.0 if quick else 30.0
    n_servers = 2 if quick else 3
    cores = 20

    def low_load(system_factory):
        def runner():
            trace = make_load_trace("low", n_servers, duration, seed=3)
            return run_cluster(system_factory(), trace,
                               ClusterConfig(n_servers=n_servers, seed=3))
        return runner

    def chaos():
        trace = make_load_trace("medium", n_servers, duration, seed=4)
        plan = FaultPlan.calibrated(
            duration_s=duration, n_servers=n_servers,
            functions=chaos_experiment.all_function_names(), seed=5)
        config = ClusterConfig(
            n_servers=n_servers, seed=4, drain_s=10.0,
            reliability=chaos_experiment.default_policy())
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config,
                           fault_plan=plan)

    def overload():
        trace = make_load_trace("high", n_servers, duration, seed=6,
                                cores_per_server=cores)
        config = ClusterConfig(
            n_servers=n_servers, seed=6,
            guard=overload_experiment.guard_config(n_servers, cores))
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)

    def partition():
        return partition_experiment.run_one(
            seed=0, with_faults=True,
            duration_s=max(duration, 60.0) if not quick else 60.0,
            n_servers=3)

    return [
        ("baseline_low", low_load(BaselineSystem)),
        ("ecofaas_low", low_load(lambda: EcoFaaSSystem(EcoFaaSConfig()))),
        ("ecofaas_chaos", chaos),
        ("ecofaas_overload", overload),
        ("ecofaas_partition", partition),
    ]


def run_bench(quick: bool = True,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run the panel and return the BENCH document."""
    experiments: Dict[str, Any] = {}
    for name, runner in _scenarios(quick):
        if progress is not None:
            progress(f"bench: running {name} ...")
        rss_before = _peak_rss_kb()
        t0 = time.perf_counter()
        cluster = runner()
        wall = time.perf_counter() - t0
        entry = _measure(cluster)
        entry["wall_s"] = round(wall, 3)
        rss = _peak_rss_kb()
        entry["peak_rss_kb"] = rss
        entry["rss_grew_kb"] = (rss - rss_before
                                if rss is not None and rss_before is not None
                                else None)
        experiments[name] = entry
    return {
        "source": "repro bench (EcoFaaS reproduction)",
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "experiments": experiments,
    }


def default_path(document: Dict[str, Any]) -> str:
    return f"BENCH_{document['date']}.json"


def write_bench(document: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare(old: Dict[str, Any], new: Dict[str, Any],
            wall_rel_tolerance: float = WALL_REL_TOLERANCE
            ) -> List[str]:
    """Regression findings between two BENCH documents (empty = clean).

    Wall-time is noisy, so it only flags past both a relative and an
    absolute threshold. The simulated metrics are seed-deterministic, so
    any drift at all is flagged — unless the two files were produced at
    different panel sizes (``quick`` mismatch), where the panels aren't
    comparable and only experiment presence is checked.
    """
    findings: List[str] = []
    comparable = old.get("quick") == new.get("quick")
    if not comparable:
        findings.append(
            f"panel size mismatch: old quick={old.get('quick')} vs"
            f" new quick={new.get('quick')} — simulated metrics not"
            f" compared")
    old_exp = old.get("experiments", {})
    new_exp = new.get("experiments", {})
    for name in sorted(old_exp):
        if name not in new_exp:
            findings.append(f"{name}: experiment missing from new run")
            continue
        before, after = old_exp[name], new_exp[name]
        wall_before = before.get("wall_s") or 0.0
        wall_after = after.get("wall_s") or 0.0
        if (wall_after > wall_before * (1.0 + wall_rel_tolerance)
                and wall_after - wall_before > WALL_ABS_FLOOR_S):
            findings.append(
                f"{name}: wall-time regression"
                f" {wall_before:.2f}s -> {wall_after:.2f}s"
                f" (+{100.0 * (wall_after / max(wall_before, 1e-9) - 1):.0f}%)")
        if not comparable:
            continue
        for key in SIM_METRICS:
            a, b = before.get(key), after.get(key)
            if a is None and b is None:
                continue
            if a is None or b is None or (
                    abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0)):
                findings.append(
                    f"{name}: simulated metric {key} drifted"
                    f" {a} -> {b} (same-seed run; behavior changed)")
    return findings
