"""``repro bench``: benchmark telemetry and regression detection.

Runs a fixed, seed-pinned panel of representative experiments (baseline
and EcoFaaS under low load, chaos, guarded overload, and an HA
partition), measuring for each

* **wall-time** and **peak RSS** — the cost of running the reproduction
  itself (the only nondeterministic numbers in the file), and
* **simulated energy, p99 workflow latency, SLO-miss rate, completed
  workflows** — seed-deterministic results that double as a coarse
  correctness fingerprint.

The panel is written to ``BENCH_<date>.json``; ``--compare <old.json>``
diffs two such files and flags (a) wall-time regressions beyond a
tolerance and (b) *any* drift in the simulated metrics of a same-named
experiment, since those are bit-deterministic given the pinned seeds —
a drift means behavior changed, not noise. Both checks require the two
files to come from the same panel size (``quick``) — cross-size files
only get the experiment-presence check.

Each experiment entry also carries a ``profile`` section (events/sec,
wall-conservation, top self-time components) from the kernel
self-profiler (``repro.obs.prof``), and :func:`run_profile` drives the
dedicated ``repro profile`` scaling scenario: one pinned workload at a
ladder of trace-duration multipliers, with full hotspot tables and
collapsed-stack output per scale. :func:`history` walks every
``BENCH_*.json`` in a directory and lines the panels up as per-
experiment wall-time / energy trajectories.
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines import BaselineSystem
from repro.core import EcoFaaSSystem
from repro.core.config import EcoFaaSConfig
from repro.experiments import chaos as chaos_experiment
from repro.experiments import overload as overload_experiment
from repro.experiments import partition as partition_experiment
from repro.experiments.common import make_load_trace, run_cluster
from repro.faults import FaultPlan
from repro.obs import prof as prof_mod
from repro.platform.cluster import ClusterConfig

#: Simulated (seed-deterministic) metric keys compared exactly.
SIM_METRICS = ("energy_j", "p99_latency_s", "slo_miss_rate", "completed")

#: Wall-time regression thresholds for ``--compare``: both the relative
#: and the absolute bar must be exceeded (filters scheduler noise on
#: sub-second experiments).
WALL_REL_TOLERANCE = 0.30
WALL_ABS_FLOOR_S = 0.5


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return None  # non-POSIX platform: omit the column


def _measure(cluster) -> Dict[str, Any]:
    summary = dict(cluster.metrics.bench_summary())
    summary["energy_j"] = round(cluster.total_energy_j, 6)
    return summary


def _scenarios(quick: bool) -> List[Tuple[str, Callable[[], Any]]]:
    """The benchmark panel: (name, runner) pairs, seeds pinned."""
    duration = 8.0 if quick else 30.0
    n_servers = 2 if quick else 3
    cores = 20

    def low_load(system_factory):
        def runner():
            trace = make_load_trace("low", n_servers, duration, seed=3)
            return run_cluster(system_factory(), trace,
                               ClusterConfig(n_servers=n_servers, seed=3))
        return runner

    def chaos():
        trace = make_load_trace("medium", n_servers, duration, seed=4)
        plan = FaultPlan.calibrated(
            duration_s=duration, n_servers=n_servers,
            functions=chaos_experiment.all_function_names(), seed=5)
        config = ClusterConfig(
            n_servers=n_servers, seed=4, drain_s=10.0,
            reliability=chaos_experiment.default_policy())
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config,
                           fault_plan=plan)

    def overload():
        trace = make_load_trace("high", n_servers, duration, seed=6,
                                cores_per_server=cores)
        config = ClusterConfig(
            n_servers=n_servers, seed=6,
            guard=overload_experiment.guard_config(n_servers, cores))
        return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace, config)

    def partition():
        return partition_experiment.run_one(
            seed=0, with_faults=True,
            duration_s=max(duration, 60.0) if not quick else 60.0,
            n_servers=3)

    return [
        ("baseline_low", low_load(BaselineSystem)),
        ("ecofaas_low", low_load(lambda: EcoFaaSSystem(EcoFaaSConfig()))),
        ("ecofaas_chaos", chaos),
        ("ecofaas_overload", overload),
        ("ecofaas_partition", partition),
    ]


def _profile_section(profiler: prof_mod.Profiler, wall_s: float,
                     top_n: int = 3) -> Dict[str, Any]:
    """The per-experiment ``profile`` entry of a BENCH document."""
    return {
        "events_per_s": round(profiler.pops / wall_s, 1) if wall_s else 0.0,
        "wall_conservation": round(
            profiler.profiled_s() / wall_s, 4) if wall_s else 0.0,
        "top_components": [
            {"component": row["component"], "self_s": row["self_s"],
             "share": row["share"]}
            for row in profiler.by_component()[:top_n]
        ],
    }


def run_bench(quick: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              profile: bool = True,
              fingerprints: bool = False) -> Dict[str, Any]:
    """Run the panel and return the BENCH document.

    ``profile`` arms the kernel self-profiler around each experiment and
    adds its events/sec, wall-conservation, and top components to the
    entry; it reads only the host wall-clock, so the simulated metrics
    are identical either way.

    ``fingerprints`` additionally arms a tracer with a progressive
    fingerprint recorder per experiment and stores each entry's chain
    digests, letting ``--compare`` point at the first diverging epoch
    and subsystem when a simulated metric drifts. Off by default: the
    tracer costs wall-time, so fingerprinted panels should only be
    wall-compared against other fingerprinted panels.
    """
    import repro.obs as obs
    experiments: Dict[str, Any] = {}
    # ru_maxrss is a process-lifetime *high-water mark*, not current
    # usage: it can only ever rise. rss_grew_kb is therefore the growth
    # of that high-water mark while the entry ran — order-dependent by
    # nature (the biggest experiment claims the growth; later entries
    # that fit under its peak report 0), hence panel_index.
    rss_high_water = _peak_rss_kb()
    for index, (name, runner) in enumerate(_scenarios(quick)):
        if progress is not None:
            progress(f"bench: running {name} ...")
        profiler = prof_mod.install(prof_mod.Profiler()) if profile else None
        tracer = obs.install(obs.Tracer(
            fingerprint=obs.FingerprintRecorder())) if fingerprints else None
        t0 = time.perf_counter()
        try:
            if profiler is not None:
                profiler.start()
            cluster = runner()
            if profiler is not None:
                profiler.stop()
        finally:
            if profiler is not None:
                prof_mod.uninstall()
            if tracer is not None:
                obs.uninstall()
        wall = time.perf_counter() - t0
        entry = _measure(cluster)
        if tracer is not None and tracer.fingerprint.entries:
            last = tracer.fingerprint.entries[-1]
            entry["fingerprint"] = {"final": last["final"],
                                    "n_epochs": last["n_epochs"],
                                    "chains": last["chains"]}
        entry["panel_index"] = index
        entry["wall_s"] = round(wall, 3)
        rss = _peak_rss_kb()
        entry["peak_rss_kb"] = rss
        if rss is not None and rss_high_water is not None:
            entry["rss_grew_kb"] = max(0, rss - rss_high_water)
            rss_high_water = max(rss_high_water, rss)
        else:
            entry["rss_grew_kb"] = None
        if profiler is not None:
            entry["profile"] = _profile_section(profiler, wall)
        experiments[name] = entry
    return {
        "source": "repro bench (EcoFaaS reproduction)",
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "rss_note": "rss_grew_kb tracks the process high-water mark and"
                    " depends on panel order (see panel_index)",
        "experiments": experiments,
    }


def default_path(document: Dict[str, Any]) -> str:
    return f"BENCH_{document['date']}.json"


def write_bench(document: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def compare(old: Dict[str, Any], new: Dict[str, Any],
            wall_rel_tolerance: float = WALL_REL_TOLERANCE
            ) -> List[str]:
    """Regression findings between two BENCH documents (empty = clean).

    Wall-time is noisy, so it only flags past both a relative and an
    absolute threshold. The simulated metrics are seed-deterministic, so
    any drift at all is flagged. Both checks are skipped entirely when
    the two files were produced at different panel sizes (``quick``
    mismatch): a full panel is legitimately many times slower than a
    quick one, so a cross-size wall comparison is pure noise — only
    experiment presence is checked.
    """
    findings: List[str] = []
    comparable = old.get("quick") == new.get("quick")
    if not comparable:
        findings.append(
            f"panel size mismatch: old quick={old.get('quick')} vs"
            f" new quick={new.get('quick')} — wall-time and simulated"
            f" metrics not compared")
    old_exp = old.get("experiments", {})
    new_exp = new.get("experiments", {})
    for name in sorted(old_exp):
        if name not in new_exp:
            findings.append(f"{name}: experiment missing from new run")
            continue
        if not comparable:
            continue
        before, after = old_exp[name], new_exp[name]
        wall_before = before.get("wall_s") or 0.0
        wall_after = after.get("wall_s") or 0.0
        if (wall_after > wall_before * (1.0 + wall_rel_tolerance)
                and wall_after - wall_before > WALL_ABS_FLOOR_S):
            findings.append(
                f"{name}: wall-time regression"
                f" {wall_before:.2f}s -> {wall_after:.2f}s"
                f" (+{100.0 * (wall_after / max(wall_before, 1e-9) - 1):.0f}%)")
        drifted = False
        for key in SIM_METRICS:
            a, b = before.get(key), after.get(key)
            if a is None and b is None:
                continue
            if a is None or b is None or (
                    abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0)):
                drifted = True
                findings.append(
                    f"{name}: simulated metric {key} drifted"
                    f" {a} -> {b} (same-seed run; behavior changed)")
        if drifted:
            finding = _first_divergence_finding(name, before, after)
            if finding is not None:
                findings.append(finding)
    return findings


def _first_divergence_finding(name: str, before: Dict[str, Any],
                              after: Dict[str, Any]) -> Optional[str]:
    """Point a sim-metric drift at its first diverging epoch/subsystem.

    Available when both panels ran with ``--fingerprints``; chains are
    bisected exactly as ``repro diff`` does.
    """
    from repro.obs.diff import PRIORITY, first_mismatch
    chains_a = (before.get("fingerprint") or {}).get("chains")
    chains_b = (after.get("fingerprint") or {}).get("chains")
    if not chains_a or not chains_b:
        return None
    diverged = []
    for sub in set(chains_a) & set(chains_b):
        epoch = first_mismatch(chains_a[sub], chains_b[sub])
        if epoch is not None:
            diverged.append((sub, epoch))
    if not diverged:
        return (f"{name}: fingerprint chains agree despite the drift"
                f" (divergence is outside the chained subsystems)")
    rank = {sub: i for i, sub in enumerate(PRIORITY)}
    sub, epoch = min(diverged,
                     key=lambda d: (d[1], rank.get(d[0], len(rank))))
    return (f"{name}: first divergence at epoch {epoch} in subsystem"
            f" '{sub}' (re-run with --trace --fingerprints and"
            f" `repro diff` for the decision-level delta)")


# ---------------------------------------------------------------------------
# repro profile: the pinned scaling scenario
# ---------------------------------------------------------------------------
def _profile_scenario(scale: float, quick: bool):
    """One pinned profiling run at ``scale``× the base trace duration.

    EcoFaaS under medium load — the configuration that exercises every
    instrumented component (predictor, DPT/MILP splits, energy
    integration, pool retunes) without the fault machinery's extra
    variance. Seeds pinned so the simulated metrics double as a
    determinism check against an unprofiled run.
    """
    duration = (8.0 if quick else 20.0) * scale
    n_servers = 2 if quick else 3
    trace = make_load_trace("medium", n_servers, duration, seed=7)
    return run_cluster(EcoFaaSSystem(EcoFaaSConfig()), trace,
                       ClusterConfig(n_servers=n_servers, seed=7))


def run_profile(scales: Tuple[float, ...] = (1, 3, 10),
                quick: bool = True,
                progress: Optional[Callable[[str], None]] = None
                ) -> Dict[str, Any]:
    """Profile the pinned scenario at each trace-duration multiplier.

    Returns the PROFILE document: one entry per scale with the hotspot
    rows, component tree, collapsed-stack text, kernel counters, and the
    wall-conservation ratio (self-times over externally measured wall).
    """
    entries: List[Dict[str, Any]] = []
    for scale in scales:
        if progress is not None:
            progress(f"profile: running scale {scale:g}x ...")
        profiler = prof_mod.install(prof_mod.Profiler())
        try:
            t0 = time.perf_counter()
            profiler.start()
            cluster = _profile_scenario(scale, quick)
            profiler.stop()
            wall = time.perf_counter() - t0
        finally:
            prof_mod.uninstall()
        entries.append({
            "scale": scale,
            "wall_s": round(wall, 4),
            "profiled_s": round(profiler.profiled_s(), 4),
            "wall_conservation": round(
                profiler.profiled_s() / wall, 4) if wall else 0.0,
            "events_per_s": round(profiler.pops / wall, 1) if wall else 0.0,
            "sim_metrics": _measure(cluster),
            "counters": profiler.counters(),
            "components": profiler.by_component(),
            "tree": profiler.tree(),
            "collapsed": profiler.collapsed(),
        })
    return {
        "source": "repro profile (EcoFaaS reproduction)",
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "scales": entries,
    }


def default_profile_collapsed_path(document: Dict[str, Any],
                                   scale: float) -> str:
    return f"PROFILE_{document['date']}.scale{scale:g}.collapsed"


# ---------------------------------------------------------------------------
# repro bench --history: the BENCH_*.json trajectory
# ---------------------------------------------------------------------------
def history(directory: str = ".") -> Dict[str, Any]:
    """Collect every ``BENCH_*.json`` under ``directory`` into one view.

    Files are ordered by name — the date-stamped default filenames sort
    chronologically — and grouped per experiment as wall-time / energy
    trajectories. Unreadable files are reported, not fatal.
    """
    points: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                document = json.load(handle)
            experiments = document["experiments"]
        except (OSError, ValueError, KeyError, TypeError) as error:
            skipped.append(f"{os.path.basename(path)}: {error}")
            continue
        points.append({
            "file": os.path.basename(path),
            "date": document.get("date"),
            "quick": document.get("quick"),
            "experiments": {
                name: {"wall_s": entry.get("wall_s"),
                       "energy_j": entry.get("energy_j")}
                for name, entry in experiments.items()
            },
        })
    names = sorted({name for point in points
                    for name in point["experiments"]})
    return {
        "source": "repro bench --history",
        "directory": directory,
        "files": [point["file"] for point in points],
        "skipped": skipped,
        "experiments": {
            name: [
                {"file": point["file"], "date": point["date"],
                 "quick": point["quick"],
                 **point["experiments"][name]}
                for point in points if name in point["experiments"]
            ]
            for name in names
        },
    }


def format_history(document: Dict[str, Any]) -> str:
    """Render a :func:`history` document as per-experiment text tables."""
    if not document["files"]:
        return (f"no BENCH_*.json files under {document['directory']}\n")
    lines = [f"== bench history: {len(document['files'])} panel(s)"
             f" under {document['directory']} =="]
    for name, trajectory in document["experiments"].items():
        lines.append(f"-- {name} --")
        lines.append(f"  {'file':24s}  {'panel':5s}  {'wall_s':>8s}"
                     f"  {'energy_j':>12s}")
        for point in trajectory:
            wall = point.get("wall_s")
            energy = point.get("energy_j")
            lines.append(
                f"  {point['file']:24s}"
                f"  {'quick' if point.get('quick') else 'full':5s}"
                f"  {wall if wall is not None else '-':>8}"
                f"  {energy if energy is not None else '-':>12}")
    for note in document["skipped"]:
        lines.append(f"skipped {note}")
    return "\n".join(lines) + "\n"
