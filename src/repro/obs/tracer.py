"""Invocation-lifecycle tracing: typed span/event records.

A :class:`Tracer` accumulates three kinds of records, all stamped with
simulation time read from the bound :class:`repro.sim.Environment`:

* **spans** — durations with a begin and an end: whole invocations
  (``kind="invocation"``), their queue/cold-start/run/block phases
  (``kind="phase"``), and end-to-end workflows (``kind="workflow"``);
* **instants** — point events: preemptions, frequency transitions, pool
  resize/retune decisions, container boots/kills, injected faults,
  retries and hedges;
* **counters** — sampled numeric time series: pool sizes, per-node power
  draw, EWT, outstanding jobs.

Instrumentation hooks throughout the platform call ``env.trace.<hook>``.
By default ``env.trace`` is the shared :data:`NULL_TRACER`, whose hooks
are all no-ops, so untraced runs pay nothing beyond an attribute lookup
and an empty call — and, because the tracer only *reads* simulation
state, traced runs produce bit-identical metrics to untraced runs.

This module deliberately imports nothing from the rest of ``repro``
(beyond the equally import-free self-profiler, which meters the tracer's
own overhead) so the sim kernel can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.prof import profiled

#: Span phases of an invocation, in the paper's terminology: ``queue``
#: maps to T_Queue, ``run`` to T_Run, ``block`` to T_Block; ``cold_start``
#: is the container-boot setup work preceding the first run segment.
PHASES = ("queue", "cold_start", "run", "block")


@dataclass
class SpanRecord:
    """A closed (or still-open) duration in one traced run."""

    run: int
    kind: str           # "invocation" | "phase" | "workflow"
    name: str           # function / phase / benchmark name
    uid: int            # job id or workflow id (unique within kind+run)
    t0: float
    t1: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0


@dataclass(frozen=True)
class InstantRecord:
    """A point event on one track."""

    run: int
    name: str
    track: str
    t: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterRecord:
    """One sample of a numeric time series on one track."""

    run: int
    track: str
    series: str
    t: float
    value: float


class NullTracer:
    """The shared do-nothing tracer: every hook is a no-op.

    Installed as ``Environment.trace`` by default so instrumentation
    points never need a None check. ``enabled`` lets hot paths skip
    argument computation entirely.
    """

    enabled = False
    #: Optional energy-attribution ledger (``repro.obs.ledger``). None on
    #: the null tracer — and on real tracers built without one — so the
    #: hardware accrual points pay a single attribute check.
    ledger = None
    #: Optional SLO burn-rate monitor (``repro.obs.burnrate``).
    burnrate = None
    #: Optional progressive-fingerprint recorder
    #: (``repro.obs.fingerprint``). Like the ledger and burn-rate
    #: monitor it only reads recorded state after a run finishes, so
    #: attaching one keeps runs bit-identical.
    fingerprint = None

    def bind(self, env) -> None:
        pass

    def begin_run(self, label: str) -> None:
        pass

    def link(self, workflow_uid, job_uid) -> None:
        """Record that workflow ``workflow_uid`` dispatched job ``job_uid``."""

    def invocation_begin(self, uid, name, **args) -> None:
        pass

    def invocation_end(self, uid, status, **args) -> None:
        pass

    def phase(self, uid, name, **args) -> None:
        pass

    def workflow_begin(self, uid, name, **args) -> None:
        pass

    def workflow_end(self, uid, status, **args) -> None:
        pass

    def instant(self, name, track, **args) -> None:
        pass

    def counter(self, track, series, value) -> None:
        pass


#: The one shared null tracer (hooks dispatch through this when no real
#: tracer is installed).
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records spans, instants, and counters across one or more runs.

    One tracer may observe several clusters in sequence (e.g. the three
    systems of an experiment): :meth:`begin_run` opens a new run scope
    (closing any spans the previous run left open) and :meth:`bind`
    attaches the tracer to that run's environment, which is where all
    timestamps come from.
    """

    enabled = True

    def __init__(self, counter_period_s: float = 0.5, ledger=None,
                 burnrate=None, fingerprint=None):
        if counter_period_s <= 0:
            raise ValueError(
                f"counter period must be positive: {counter_period_s}")
        #: Period of the read-only counter sampler armed by traced runs.
        self.counter_period_s = counter_period_s
        #: Attached energy ledger / burn-rate monitor / progressive
        #: fingerprint recorder (all opt-in; all only *read* simulation
        #: state, so attaching them keeps runs bit-identical).
        self.ledger = ledger
        self.burnrate = burnrate
        self.fingerprint = fingerprint
        if ledger is not None:
            ledger.attach(self)
        #: Labels of the runs seen so far, in order.
        self.run_labels: List[str] = []
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counters: List[CounterRecord] = []
        #: Workflow → job dispatch links as (run, workflow_uid, job_uid).
        self.wf_links: List[tuple] = []
        self._env = None
        self._run = -1
        #: Latest timestamp seen per run (used to close dangling spans).
        self.run_end_s: List[float] = []
        # Open spans of the current run, by uid.
        self._open_invocations: Dict[int, SpanRecord] = {}
        self._open_phases: Dict[int, SpanRecord] = {}
        self._open_workflows: Dict[int, SpanRecord] = {}

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._env is None:
            raise RuntimeError("tracer is not bound to an environment")
        return self._env.now

    def bind(self, env) -> None:
        """Attach to ``env``: timestamps come from it, hooks route here."""
        self._env = env
        env.trace = self

    def begin_run(self, label: str) -> None:
        """Open a new run scope (e.g. one system of an experiment)."""
        self.finish_run()
        self._run += 1
        self.run_labels.append(label)
        self.run_end_s.append(0.0)
        if self.ledger is not None:
            self.ledger.begin_run(self._run, label)
        if self.burnrate is not None:
            self.burnrate.begin_run(self._run, label)

    def finish_run(self) -> None:
        """Close spans the run left open (jobs still in flight at drain).

        Idempotent; called automatically by :meth:`begin_run` and by the
        exporters.
        """
        if self._run < 0:
            return
        end = self.run_end_s[self._run]
        if self._env is not None:
            # The run may end with a silent stretch (drain with no hooks
            # firing); the environment clock has the true end time.
            end = max(end, self._env.now)
        self.run_end_s[self._run] = end
        for table in (self._open_phases, self._open_invocations,
                      self._open_workflows):
            for span in table.values():
                span.t1 = end
                span.args.setdefault("status", "unfinished")
            table.clear()

    def _stamp(self) -> float:
        t = self.now
        if self._run < 0:
            # Hooks fired before any begin_run: open an anonymous run so
            # nothing is ever silently dropped.
            self._run = 0
            self.run_labels.append("run")
            self.run_end_s.append(0.0)
        if t > self.run_end_s[self._run]:
            self.run_end_s[self._run] = t
        return t

    # ------------------------------------------------------------------
    # Invocation spans and phases
    # ------------------------------------------------------------------
    @profiled("obs.trace")
    def invocation_begin(self, uid: int, name: str, **args) -> None:
        t = self._stamp()
        span = SpanRecord(self._run, "invocation", name, uid, t, args=args)
        self._open_invocations[uid] = span
        self.spans.append(span)

    @profiled("obs.trace")
    def invocation_end(self, uid: int, status: str, **args) -> None:
        t = self._stamp()
        self._close_phase(uid, t)
        span = self._open_invocations.pop(uid, None)
        if span is None:
            return  # duplicate end (idempotent abort) or begin untraced
        span.t1 = t
        span.args.update(args)
        span.args["status"] = status

    @profiled("obs.trace")
    def phase(self, uid: int, name: str, **args) -> None:
        """The invocation ``uid`` enters phase ``name`` now."""
        t = self._stamp()
        self._close_phase(uid, t)
        span = SpanRecord(self._run, "phase", name, uid, t, args=args)
        self._open_phases[uid] = span
        self.spans.append(span)

    def _close_phase(self, uid: int, t: float) -> None:
        open_phase = self._open_phases.pop(uid, None)
        if open_phase is not None:
            open_phase.t1 = t

    # ------------------------------------------------------------------
    # Workflow spans
    # ------------------------------------------------------------------
    @profiled("obs.trace")
    def workflow_begin(self, uid: int, name: str, **args) -> None:
        t = self._stamp()
        span = SpanRecord(self._run, "workflow", name, uid, t, args=args)
        self._open_workflows[uid] = span
        self.spans.append(span)

    @profiled("obs.trace")
    def workflow_end(self, uid: int, status: str, **args) -> None:
        t = self._stamp()
        span = self._open_workflows.pop(uid, None)
        if span is None:
            return
        span.t1 = t
        span.args.update(args)
        span.args["status"] = status
        if self.burnrate is not None:
            met = status == "completed" and bool(
                span.args.get("met_slo", True))
            self.burnrate.observe(self, span.name, t, met,
                                  latency_s=span.duration_s)

    def link(self, workflow_uid: int, job_uid: int) -> None:
        """Cross-link a dispatched job to its workflow (uid ↔ uid)."""
        if self._run < 0:
            self._stamp()
        self.wf_links.append((self._run, workflow_uid, job_uid))

    # ------------------------------------------------------------------
    # Instants and counters
    # ------------------------------------------------------------------
    @profiled("obs.trace")
    def instant(self, name: str, track: str, **args) -> None:
        t = self._stamp()  # before reading _run: may open the first run
        self.instants.append(InstantRecord(self._run, name, track, t, args))

    @profiled("obs.trace")
    def counter(self, track: str, series: str, value: float) -> None:
        t = self._stamp()
        self.counters.append(
            CounterRecord(self._run, track, series, t, float(value)))

    # ------------------------------------------------------------------
    # Introspection helpers (used by exporters and tests)
    # ------------------------------------------------------------------
    def spans_of(self, kind: str, run: Optional[int] = None
                 ) -> List[SpanRecord]:
        return [s for s in self.spans
                if s.kind == kind and (run is None or s.run == run)]

    def instants_named(self, name: str, run: Optional[int] = None
                       ) -> List[InstantRecord]:
        return [i for i in self.instants
                if i.name == name and (run is None or i.run == run)]
