"""The shared name registries of the observability subsystem.

One place for the mappings that used to be duplicated between the
exporters and the newer ledger/burn-rate code:

* :data:`EPOCH_INSTANT_COLUMNS` — trace instant name → epoch-metrics
  column. :func:`repro.obs.export.epoch_rows` counts each named instant
  into its column; anything emitting a new countable instant adds one
  entry here and the epoch CSV/JSON picks it up everywhere at once.
* :data:`LEDGER_COMPONENTS` — the energy-attribution ledger's component
  taxonomy (see ``DESIGN.md`` §9), in presentation order.
* :data:`LEDGER_EPOCH_COLUMNS` — the per-epoch ledger columns derived
  from the taxonomy (``energy_<component>_j``).
* :data:`PROFILE_COMPONENTS` — the self-profiler's wall-time component
  taxonomy (see ``DESIGN.md`` §11), in presentation order, with the
  one-line description the hotspot tables print.

This module deliberately imports nothing from the rest of ``repro`` so
both the tracer side and the exporter side can depend on it.
"""

from __future__ import annotations

#: Instant name → epoch-metrics column (counted per epoch).
EPOCH_INSTANT_COLUMNS = {
    "retry": "retries",
    "hedge": "hedges",
    "invocation_timeout": "timeouts",
    "preemption": "preemptions",
    "freq_transition": "freq_transitions",
    "ha_suspect": "ha_suspicions",
    "ha_redispatch": "ha_redispatches",
    "ha_failover": "ha_failovers",
    "ha_fenced": "ha_fenced",
    "ha_frozen": "ha_frozen",
    "slo_burn_fast": "slo_fast_burns",
    "slo_burn_slow": "slo_slow_burns",
    "tenant_throttle": "tenant_throttles",
    "power_cap_step": "power_cap_steps",
    "cancel": "cancels",
    "doomed_drop": "doomed_drops",
    "workflow_doomed": "workflows_doomed",
    "retry_budget_exhausted": "retry_budget_denials",
    "retry_budget_refund": "retry_budget_refunds",
}

#: The ledger's component taxonomy: every metered joule lands in exactly
#: one of these (conservation is validated against the hardware meters).
LEDGER_COMPONENTS = (
    "run",          # productive run-segment energy of winning attempts
    "block",        # cores held idle through a job's I/O block (RTC mode)
    "cold_start",   # container-boot setup work, prewarms included
    "idle",         # unheld idle cores
    "freq_switch",  # DVFS transition stalls and idle retunes
    "retry_waste",  # attempts later aborted or abandoned (wasted work)
    "cancelled",    # joules already burned by attempts the cancel layer killed
    "doomed",       # completed work inside workflows doomed mid-chain
    "shed",         # work executed for workflows that ultimately failed
    "static",       # background uncore + DRAM standby power
)

#: Per-epoch ledger columns added to the epoch metrics when a ledger is
#: attached to the tracer.
LEDGER_EPOCH_COLUMNS = tuple(f"energy_{c}_j" for c in LEDGER_COMPONENTS)

#: The self-profiler's component taxonomy (repro.obs.prof): every
#: profiled wall-second lands in exactly one component's *self* time
#: (the scoped timers account exclusively, so the self-times sum to the
#: profiled window by construction — the wall-conservation check).
PROFILE_COMPONENTS = (
    ("harness", "setup, trace generation, and result rollups"),
    ("kernel.dispatch", "event-loop callback dispatch + platform logic"),
    ("hardware.energy", "per-segment energy integration and finalize"),
    ("hardware.power", "instantaneous power-model snapshots"),
    ("core.predictor", "frequency-profile predictions and observations"),
    ("core.dpt", "delay-power-table deadline splitting"),
    ("core.milp", "branch-and-bound MILP solves"),
    ("obs.trace", "tracer span/instant/counter recording"),
    ("obs.ledger", "energy-ledger entry recording and run close"),
    ("obs.audit", "decision audit record construction"),
    ("guard", "admission, breaker, and prediction-sanity checks"),
    ("cancel", "doom checks, cooperative kills, and retry budgeting"),
    ("ha", "membership checks and dispatch fencing"),
    ("tenancy", "tenant meter polling and budget checks"),
)
