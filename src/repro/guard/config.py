"""Guard tunables: admission, breakers, safe mode, checkpoints.

A :class:`GuardConfig` switches on the graceful-degradation machinery of
``repro.guard``. Every sub-policy is independently optional: any of the
four sections may be ``None``, and a :class:`Cluster` built without a
``GuardConfig`` at all runs the exact pre-guard code paths (the
regression suite pins this down to the byte).

All guard decisions are pure functions of simulation time and observed
counters — no random draws — so guarded runs are exactly as deterministic
as unguarded ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


def _require_finite(name: str, value: float) -> None:
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite: {value}")


@dataclass(frozen=True)
class AdmissionConfig:
    """Frontend admission control and brownout load shedding.

    Two mechanisms compose:

    * **token buckets** — one bucket per benchmark, refilled at
      ``rate_rps`` with ``burst`` capacity, enforced on best-effort work
      always and on SLO-bearing work only at the deepest brownout level;
    * **brownout levels** — the cluster's estimated wait time per core
      (the EWT signal the dispatchers already maintain) is compared to
      ``brownout_ewt_s``: level 0 below the first threshold, level 1
      between the two (best-effort work is shed), level 2 above the
      second (SLO-bearing work is rate-limited to the bucket too).

    Best-effort work is always dropped before SLO-bearing work: a
    benchmark listed in ``best_effort`` is shed at any brownout level
    >= 1 and is bucket-limited even at level 0.
    """

    #: Sustained admission rate per benchmark, workflows/second.
    rate_rps: float = 50.0
    #: Bucket capacity (burst headroom above the sustained rate).
    burst: float = 25.0
    #: (level-1, level-2) EWT-per-core thresholds, seconds.
    brownout_ewt_s: Tuple[float, float] = (1.0, 3.0)
    #: Benchmarks treated as best-effort (shed first in a brownout).
    best_effort: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require_finite("rate_rps", self.rate_rps)
        _require_finite("burst", self.burst)
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive: {self.rate_rps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1 token: {self.burst}")
        if len(self.brownout_ewt_s) != 2:
            raise ValueError("brownout_ewt_s needs exactly two thresholds")
        low, high = self.brownout_ewt_s
        _require_finite("brownout_ewt_s[0]", low)
        _require_finite("brownout_ewt_s[1]", high)
        if not 0 < low <= high:
            raise ValueError(
                f"brownout thresholds must satisfy 0 < low <= high:"
                f" {self.brownout_ewt_s}")


@dataclass(frozen=True)
class BreakerConfig:
    """Per-function circuit breakers at the frontend.

    A breaker trips **open** when, within the trailing ``window_s``, at
    least ``min_failures`` attempt failures (crash-aborted attempts,
    written-off timeouts, and — optionally — deadline misses) occurred
    and they make up at least ``failure_rate`` of the attempts. While
    open, invocations of the function fail fast instead of feeding the
    retry loop. After ``open_for_s`` the breaker goes **half-open** and
    admits one probe invocation: success closes the breaker, failure
    re-opens it for another ``open_for_s``.
    """

    window_s: float = 10.0
    min_failures: int = 3
    failure_rate: float = 0.5
    open_for_s: float = 5.0
    #: Count deadline misses of successful attempts as failures too.
    count_deadline_misses: bool = False

    def __post_init__(self) -> None:
        for name in ("window_s", "failure_rate", "open_for_s"):
            _require_finite(name, getattr(self, name))
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive: {self.window_s}")
        if self.min_failures < 1:
            raise ValueError(
                f"min_failures must be >= 1: {self.min_failures}")
        if not 0 < self.failure_rate <= 1:
            raise ValueError(
                f"failure_rate must be in (0, 1]: {self.failure_rate}")
        if self.open_for_s <= 0:
            raise ValueError(
                f"open_for_s must be positive: {self.open_for_s}")


@dataclass(frozen=True)
class SafeModeConfig:
    """Control-plane fallbacks: solver budget, predictor sanity, pinning.

    * ``milp_node_budget`` caps the branch-and-bound node count of one
      ``solve_milp`` call; a solve that exhausts the budget makes the
      Workflow Controller fall back to the proportional split (the same
      policy Baseline+PowerCtrl uses) until the next ``T_update``.
    * Predictions (``T_Run`` / ``T_Block`` / ``Energy``) are screened:
      NaN, negative, non-finite, or values more than ``prediction_rel_max``
      times the last known-good prediction (or above
      ``prediction_abs_max_s`` seconds / joules outright) are replaced by
      the last known-good value and counted as mispredictions.
    * A function whose profile has not absorbed a new observation for
      ``dpt_staleness_s`` seconds has an untrustworthy Delay-Power Table
      row; its dispatches are pinned to the top frequency (the paper's
      always-safe level) until fresh data arrives.
    """

    #: Branch-and-bound node budget per MILP solve (None = unbudgeted).
    milp_node_budget: Optional[int] = 2_000
    #: Relative sanity bound against the last known-good prediction.
    prediction_rel_max: float = 20.0
    #: Absolute sanity bound (seconds or joules, matching the quantity).
    prediction_abs_max_s: float = 600.0
    #: Profile staleness bound before frequency pinning (None = no pinning).
    dpt_staleness_s: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.milp_node_budget is not None and self.milp_node_budget < 1:
            raise ValueError(
                f"milp_node_budget must be >= 1: {self.milp_node_budget}")
        _require_finite("prediction_rel_max", self.prediction_rel_max)
        _require_finite("prediction_abs_max_s", self.prediction_abs_max_s)
        if self.prediction_rel_max <= 1:
            raise ValueError(
                f"prediction_rel_max must be > 1: {self.prediction_rel_max}")
        if self.prediction_abs_max_s <= 0:
            raise ValueError(
                f"prediction_abs_max_s must be positive:"
                f" {self.prediction_abs_max_s}")
        if self.dpt_staleness_s is not None:
            _require_finite("dpt_staleness_s", self.dpt_staleness_s)
            if self.dpt_staleness_s <= 0:
                raise ValueError(
                    f"dpt_staleness_s must be positive:"
                    f" {self.dpt_staleness_s}")


@dataclass(frozen=True)
class CheckpointConfig:
    """Node-controller checkpoints and the refresh watchdog.

    Every ``period_s`` each node controller snapshots its transient
    control state (pool levels and core targets, smoothed demand). A
    crash-recovered controller (the ``repro.faults`` reboot hook) restores
    the latest snapshot instead of rebooting to cold state — unless the
    snapshot is older than ``max_staleness_s``, in which case cold state
    is safer than stale state. The watchdog forces a pool refresh on any
    controller that has not refreshed for ``watchdog_factor`` times its
    configured period (a stuck control loop under overload).
    """

    period_s: float = 1.0
    max_staleness_s: float = 10.0
    watchdog_factor: float = 3.0

    def __post_init__(self) -> None:
        for name in ("period_s", "max_staleness_s", "watchdog_factor"):
            _require_finite(name, getattr(self, name))
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive: {self.period_s}")
        if self.max_staleness_s <= 0:
            raise ValueError(
                f"max_staleness_s must be positive: {self.max_staleness_s}")
        if self.watchdog_factor < 1:
            raise ValueError(
                f"watchdog_factor must be >= 1: {self.watchdog_factor}")


@dataclass(frozen=True)
class GuardConfig:
    """The full graceful-degradation policy of one cluster.

    Any section left ``None`` disables that guard; a cluster with no
    ``GuardConfig`` at all runs the pre-guard code byte-for-byte.
    """

    admission: Optional[AdmissionConfig] = None
    breaker: Optional[BreakerConfig] = None
    safe_mode: Optional[SafeModeConfig] = None
    checkpoint: Optional[CheckpointConfig] = None

    @classmethod
    def full(cls, **overrides) -> "GuardConfig":
        """Every guard enabled at its default operating point."""
        values = {
            "admission": AdmissionConfig(),
            "breaker": BreakerConfig(),
            "safe_mode": SafeModeConfig(),
            "checkpoint": CheckpointConfig(),
        }
        values.update(overrides)
        return cls(**values)
