"""Per-function circuit breakers (closed / open / half-open).

A breaker watches one function's attempt outcomes at the frontend and
fails invocations fast while the function is known-bad, so the retry
machinery of :class:`repro.platform.reliability.ReliabilityPolicy` cannot
amplify an outage into a retry storm. Transitions are driven purely by
simulation time and outcome counts — no randomness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.guard.config import BreakerConfig

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One function's breaker state machine."""

    def __init__(self, config: BreakerConfig, name: str = "",
                 observer=None):
        self.config = config
        self.name = name
        #: Optional transition observer ``(name, old, new)`` — the
        #: verify layer's legality monitor. None keeps transitions on
        #: the plain assignment path.
        self.observer = observer
        self.state = CLOSED
        #: Trailing attempt outcomes: (time, is_failure).
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._opened_at: Optional[float] = None
        #: A half-open probe is in flight (only one is admitted).
        self._probe_in_flight = False
        #: Times the breaker tripped open (including re-opens).
        self.open_count = 0

    def _set_state(self, new_state: str) -> None:
        old = self.state
        self.state = new_state
        if self.observer is not None and old != new_state:
            self.observer(self.name, old, new_state)

    # ------------------------------------------------------------------
    # Outcome ingestion
    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def record_failure(self, now: float) -> None:
        """One attempt failed (crash-abort, timeout, or counted miss)."""
        if self.state == HALF_OPEN:
            # The probe failed: back to open, restart the cooldown.
            self._trip(now)
            return
        self._outcomes.append((now, True))
        self._prune(now)
        if self.state == CLOSED and self._should_trip():
            self._trip(now)

    def record_success(self, now: float) -> None:
        """One attempt produced the invocation's result."""
        if self.state == HALF_OPEN:
            self._reset()
            return
        self._outcomes.append((now, False))
        self._prune(now)

    def _should_trip(self) -> bool:
        failures = sum(1 for _, failed in self._outcomes if failed)
        if failures < self.config.min_failures:
            return False
        return failures >= self.config.failure_rate * len(self._outcomes)

    def _trip(self, now: float) -> None:
        self._set_state(OPEN)
        self._opened_at = now
        self._probe_in_flight = False
        self._outcomes.clear()
        self.open_count += 1

    def _reset(self) -> None:
        self._set_state(CLOSED)
        self._opened_at = None
        self._probe_in_flight = False
        self._outcomes.clear()

    def snapshot(self) -> Dict[str, object]:
        """Decision-state summary for audit records (read-only)."""
        failures = sum(1 for _, failed in self._outcomes if failed)
        return {"state": self.state,
                "window_attempts": len(self._outcomes),
                "window_failures": failures,
                "open_count": self.open_count}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """May one attempt of this function be dispatched now?

        While open, returns False until ``open_for_s`` has elapsed; the
        first allowed call after the cooldown is the half-open probe, and
        further calls fail fast until the probe resolves.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.config.open_for_s:
                return False
            self._set_state(HALF_OPEN)
            self._probe_in_flight = False
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True


class BreakerBoard:
    """The frontend's breakers, one per function, created lazily."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        #: Transition observer handed to every breaker (see
        #: :attr:`CircuitBreaker.observer`). Arming a verifier sets it
        #: and back-fills the breakers created so far.
        self.observer = None
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, function_name: str) -> CircuitBreaker:
        if function_name not in self._breakers:
            self._breakers[function_name] = CircuitBreaker(
                self.config, name=function_name, observer=self.observer)
        return self._breakers[function_name]

    def states(self) -> Dict[str, str]:
        return {name: breaker.state
                for name, breaker in sorted(self._breakers.items())}

    def total_opens(self) -> int:
        return sum(b.open_count for b in self._breakers.values())
