"""Frontend admission control: token buckets and brownout shedding.

The admission controller sits in front of :meth:`Cluster.submit_workflow`.
Its decisions depend only on simulation time and the cluster's live EWT
signal, so guarded runs stay deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.guard.config import AdmissionConfig

#: Shed reasons (also the ``reason`` arg of the ``shed`` trace instant).
SHED_BROWNOUT = "brownout"          # best-effort work during a brownout
SHED_RATE_LIMIT = "rate_limit"      # best-effort bucket empty
SHED_OVERLOAD = "overload"          # SLO-bearing bucket empty at level 2


class TokenBucket:
    """A deterministic token bucket refilled by simulation time."""

    def __init__(self, rate_rps: float, burst: float):
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive: {rate_rps}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst}")
        self.rate_rps = rate_rps
        self.burst = burst
        self._tokens = burst
        self._last_refill_s = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill_s
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate_rps)
        self._last_refill_s = now

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (without consuming any)."""
        self._refill(now)
        return self._tokens

    def take(self, now: float) -> bool:
        """Consume one token if available; False means rate-limited."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-benchmark token buckets plus EWT-driven brownout levels."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._buckets: Dict[str, TokenBucket] = {}
        #: Current brownout level (0 = normal); updated on every decision.
        self.level = 0
        #: Shed counts by (benchmark, reason).
        self.shed_counts: Dict[Tuple[str, str], int] = {}

    def bucket(self, benchmark: str) -> TokenBucket:
        if benchmark not in self._buckets:
            self._buckets[benchmark] = TokenBucket(self.config.rate_rps,
                                                   self.config.burst)
        return self._buckets[benchmark]

    def brownout_level(self, ewt_per_core_s: float) -> int:
        low, high = self.config.brownout_ewt_s
        if ewt_per_core_s >= high:
            return 2
        if ewt_per_core_s >= low:
            return 1
        return 0

    def is_best_effort(self, benchmark: str) -> bool:
        return benchmark in self.config.best_effort

    def admit(self, benchmark: str, now: float, ewt_per_core_s: float,
              force_best_effort: bool = False) -> Optional[str]:
        """Admit one workflow arrival, or return the shed reason.

        Best-effort work is shed first: it is bucket-limited at every
        brownout level and dropped outright at level >= 1. SLO-bearing
        work is only rate-limited at level 2 — so below saturation (EWT
        under the thresholds) no SLO-bearing workflow is ever shed.

        ``force_best_effort`` demotes this one arrival into the
        best-effort class regardless of configuration — the tenancy
        layer's "over-budget tenants shed first" wiring.
        """
        self.level = self.brownout_level(ewt_per_core_s)
        if force_best_effort or self.is_best_effort(benchmark):
            if self.level >= 1:
                return self._shed(benchmark, SHED_BROWNOUT)
            if not self.bucket(benchmark).take(now):
                return self._shed(benchmark, SHED_RATE_LIMIT)
            return None
        if self.level >= 2 and not self.bucket(benchmark).take(now):
            return self._shed(benchmark, SHED_OVERLOAD)
        return None

    def _shed(self, benchmark: str, reason: str) -> str:
        key = (benchmark, reason)
        self.shed_counts[key] = self.shed_counts.get(key, 0) + 1
        return reason

    def snapshot(self, benchmark: str, now: float) -> Dict[str, object]:
        """Decision-state summary for audit records (read-only)."""
        return {"brownout_level": self.level,
                "tokens": round(self.bucket(benchmark).peek(now), 4),
                "best_effort": self.is_best_effort(benchmark)}
