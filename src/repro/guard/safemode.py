"""Safe-mode control fallbacks: prediction screening and staleness.

The control plane's predictions can go pathological in exactly the
regimes where they matter most — NaNs out of a degenerate fit, negative
values from a barely-trained MLP, or explosive extrapolations under load
patterns the profile has never seen. :class:`PredictionGuard` screens
every prediction against sanity bounds and substitutes the last
known-good value when one fails, and tracks per-function observation
recency so dispatch can pin to a safe frequency when the Delay-Power
Table has gone stale.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.guard.config import SafeModeConfig


class PredictionGuard:
    """Screens predictions; tracks profile staleness per function."""

    def __init__(self, config: SafeModeConfig):
        self.config = config
        #: Last known-good prediction per (function, kind).
        self._known_good: Dict[Tuple[str, str], float] = {}
        #: Last observation time per function (profile freshness).
        self._last_observation_s: Dict[str, float] = {}
        #: Mispredictions caught, per (function, kind).
        self.mispredict_counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Prediction screening
    # ------------------------------------------------------------------
    def _violation(self, value: float, last_good: Optional[float]
                   ) -> Optional[str]:
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        if value < 0:
            return "negative"
        if value > self.config.prediction_abs_max_s:
            return "abs_bound"
        if (last_good is not None and last_good > 0
                and value > self.config.prediction_rel_max * last_good):
            return "rel_bound"
        return None

    def sanitize(self, function_name: str, kind: str,
                 value: float) -> Tuple[float, Optional[str]]:
        """Screen one prediction.

        Returns ``(usable_value, violation)``: a sane ``value`` is
        remembered as the new known-good and passed through
        (``violation`` is None); a pathological one is replaced by the
        last known-good prediction — or 0.0 when the very first
        prediction is already bad, which downstream treats as "no
        estimate" and handles at the top frequency.
        """
        key = (function_name, kind)
        last_good = self._known_good.get(key)
        violation = self._violation(value, last_good)
        if violation is None:
            self._known_good[key] = value
            return value, None
        self.mispredict_counts[key] = self.mispredict_counts.get(key, 0) + 1
        return (last_good if last_good is not None else 0.0), violation

    @property
    def mispredictions(self) -> int:
        return sum(self.mispredict_counts.values())

    # ------------------------------------------------------------------
    # DPT staleness
    # ------------------------------------------------------------------
    def note_observation(self, function_name: str, now: float) -> None:
        """A fresh measurement of ``function_name`` just landed."""
        self._last_observation_s[function_name] = now

    def dpt_stale(self, function_name: str, now: float) -> bool:
        """True when the function's profile is too old to trust.

        A function never observed at all is *not* stale — the dispatcher
        already runs unprofiled functions at the top frequency, so
        pinning would be redundant there.
        """
        bound = self.config.dpt_staleness_s
        if bound is None:
            return False
        seen = self._last_observation_s.get(function_name)
        return seen is not None and now - seen > bound
