"""The per-cluster guard runtime: wiring, accounting, trace emission.

One :class:`GuardRuntime` is created by a :class:`Cluster` whose config
carries a :class:`GuardConfig`, and installed as ``env.guard`` (the same
pattern as ``env.trace``). Every instrumentation point in the platform
checks ``guard is None`` first, so unguarded runs execute the pre-guard
code byte-for-byte.

The runtime centralises three concerns so the mechanism classes stay
pure: reading cluster-wide signals (the EWT-per-core brownout input),
folding guard decisions into :class:`MetricsCollector` counters, and
emitting ``repro.obs`` instants for every decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.guard.admission import AdmissionController
from repro.guard.breaker import BreakerBoard, CircuitBreaker, CLOSED, OPEN
from repro.guard.checkpoint import CheckpointStore
from repro.guard.config import GuardConfig
from repro.guard.safemode import PredictionGuard
from repro.obs.prof import profiled

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.platform.system import NodeSystem

#: Frontend trace track for guard decisions (matches reliability events).
FRONTEND_TRACK = "frontend"


class GuardRuntime:
    """All armed guards of one cluster."""

    def __init__(self, cluster: "Cluster", config: GuardConfig):
        self.cluster = cluster
        self.config = config
        self.env = cluster.env
        self.metrics = cluster.metrics
        self.admission: Optional[AdmissionController] = (
            AdmissionController(config.admission)
            if config.admission is not None else None)
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard(config.breaker)
            if config.breaker is not None else None)
        self.predictions: Optional[PredictionGuard] = (
            PredictionGuard(config.safe_mode)
            if config.safe_mode is not None else None)
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(config.checkpoint)
            if config.checkpoint is not None else None)
        #: Last brownout level an audit record was written for; the
        #: admission controller itself recomputes its level on every
        #: decision, so change detection has to live out here.
        self._audit_level = 0

    def arm(self) -> None:
        """Start the periodic guard processes (checkpointer + watchdog)."""
        if self.checkpoints is not None:
            self.env.process(self._checkpoint_loop(), name="guard-checkpoint")

    # ------------------------------------------------------------------
    # Cluster-wide signals
    # ------------------------------------------------------------------
    def ewt_per_core_s(self) -> float:
        """Cluster backlog: summed pool EWT over the cluster's cores."""
        total_ewt = 0.0
        total_cores = 0
        for node in self.cluster.nodes:
            total_cores += node.server.n_cores
            if node.down:
                continue
            total_ewt += sum(pool.ewt_seconds for pool in node.iter_pools())
        if total_cores == 0:
            return 0.0
        return total_ewt / total_cores

    # ------------------------------------------------------------------
    # Admission (Cluster.submit_workflow)
    # ------------------------------------------------------------------
    @profiled("guard")
    def admit_workflow(self, benchmark: str) -> bool:
        """Admission decision for one arrival; False = shed (accounted)."""
        if self.admission is None:
            return True
        ewt = self.ewt_per_core_s()
        tenancy = getattr(self.env, "tenancy", None)
        demoted = (tenancy is not None
                   and tenancy.demote_to_best_effort(benchmark))
        reason = self.admission.admit(benchmark, self.env.now, ewt,
                                      force_best_effort=demoted)
        audit = self.env.audit
        if audit is not None and self.admission.level != self._audit_level:
            audit.record(
                "brownout_change", FRONTEND_TRACK,
                inputs={"ewt_per_core_s": round(ewt, 6),
                        "previous_level": self._audit_level},
                action={"level": self.admission.level},
                alternatives=[{"level": self._audit_level,
                               "rejected": "EWT crossed a threshold"}],
                reason="cluster EWT-per-core moved across the brownout"
                       " thresholds")
            self._audit_level = self.admission.level
        if reason is None:
            return True
        self.metrics.record_shed(benchmark, reason)
        self.env.trace.instant(
            "shed", FRONTEND_TRACK, benchmark=benchmark, reason=reason,
            brownout_level=self.admission.level)
        if audit is not None:
            audit.record(
                "admission_shed", FRONTEND_TRACK,
                inputs={"benchmark": benchmark,
                        "ewt_per_core_s": round(ewt, 6),
                        **self.admission.snapshot(benchmark, self.env.now)},
                action={"shed": reason},
                alternatives=[{"admit": True,
                               "rejected": f"shed policy: {reason}"}],
                reason="admission controller shed the arrival to protect"
                       " SLO-bearing work")
        return False

    # ------------------------------------------------------------------
    # Circuit breakers (Cluster._invoke_reliably)
    # ------------------------------------------------------------------
    def breaker_for(self, function_name: str) -> Optional[CircuitBreaker]:
        if self.breakers is None:
            return None
        return self.breakers.breaker(function_name)

    @profiled("guard")
    def breaker_allows(self, function_name: str) -> bool:
        """May an attempt of this function be dispatched now?

        A False return is a fast-fail: it is counted and traced here, and
        the caller gives up on the invocation without burning a retry.
        """
        breaker = self.breaker_for(function_name)
        if breaker is None or breaker.allow(self.env.now):
            return True
        self.metrics.breaker_fast_fails += 1
        self.env.trace.instant("breaker_fast_fail", FRONTEND_TRACK,
                               function=function_name)
        return False

    def record_attempt_failure(self, function_name: str,
                               node: Optional["NodeSystem"] = None) -> None:
        breaker = self.breaker_for(function_name)
        if breaker is None:
            return
        ha = getattr(self.env, "ha", None)
        if ha is not None and node is not None and ha.node_suspected(node):
            # The membership table blames the node, not the function:
            # charging the breaker would fail the function cluster-wide
            # for one machine's partition or crash.
            self.metrics.breaker_node_blames += 1
            self.env.trace.instant("breaker_node_blame", FRONTEND_TRACK,
                                   function=function_name, node=node.track)
            return
        opens_before = breaker.open_count
        audit = self.env.audit
        snapshot = breaker.snapshot() if audit is not None else None
        breaker.record_failure(self.env.now)
        if breaker.open_count > opens_before:
            self.metrics.breaker_opens += 1
            self.env.trace.instant("breaker_open", FRONTEND_TRACK,
                                   function=function_name,
                                   opens=breaker.open_count)
            if audit is not None:
                audit.record(
                    "breaker_trip", FRONTEND_TRACK,
                    inputs={"function": function_name, **snapshot},
                    action={"state": OPEN,
                            "open_count": breaker.open_count},
                    alternatives=[{"state": CLOSED,
                                   "rejected": "windowed failure rate"
                                               " above the trip"
                                               " threshold"}],
                    reason="attempt failures tripped the circuit breaker;"
                           " further calls fail fast until the cooldown")

    def record_attempt_success(self, function_name: str,
                               met_deadline: bool) -> None:
        breaker = self.breaker_for(function_name)
        if breaker is None:
            return
        if (self.breakers.config.count_deadline_misses and not met_deadline):
            self.record_attempt_failure(function_name)
            return
        was_open = breaker.state == OPEN
        breaker.record_success(self.env.now)
        if was_open or breaker.state != "closed":
            return
        # (No instant for routine successes; only state transitions.)

    # ------------------------------------------------------------------
    # Safe mode (dispatcher + workflow controller)
    # ------------------------------------------------------------------
    @property
    def milp_node_budget(self) -> Optional[int]:
        if self.config.safe_mode is None:
            return None
        return self.config.safe_mode.milp_node_budget

    def record_milp_fallback(self, workflow_name: str) -> None:
        self.metrics.milp_fallbacks += 1
        self.env.trace.instant("milp_fallback", FRONTEND_TRACK,
                               workflow=workflow_name)

    @profiled("guard")
    def sanitize_prediction(self, function_name: str, kind: str,
                            value: float, track: str) -> float:
        """Screen one prediction; pathological values are replaced."""
        if self.predictions is None:
            return value
        usable, violation = self.predictions.sanitize(function_name, kind,
                                                      value)
        if violation is not None:
            self.metrics.mispredictions += 1
            self.env.trace.instant(
                "mispredict", track, function=function_name, kind=kind,
                violation=violation)
        return usable

    def note_observation(self, function_name: str) -> None:
        if self.predictions is not None:
            self.predictions.note_observation(function_name, self.env.now)

    def dpt_stale(self, function_name: str) -> bool:
        return (self.predictions is not None
                and self.predictions.dpt_stale(function_name, self.env.now))

    def record_freq_pin(self, function_name: str, track: str) -> None:
        self.metrics.freq_pins += 1
        self.env.trace.instant("freq_pin", track, function=function_name)

    # ------------------------------------------------------------------
    # Checkpoints + watchdog
    # ------------------------------------------------------------------
    def _checkpoint_loop(self):
        config = self.config.checkpoint
        while True:
            yield self.env.timeout(config.period_s)
            for node in self.cluster.nodes:
                if node.down:
                    continue
                if node.watchdog_check(config.watchdog_factor):
                    self.metrics.watchdog_kicks += 1
                    self.env.trace.instant("watchdog_refresh", node.track)
                if self.checkpoints.take(node.server.server_id,
                                         self.env.now,
                                         node.checkpoint_state()):
                    self.metrics.checkpoints_taken += 1

    def maybe_restore(self, node: "NodeSystem") -> bool:
        """Reboot hook: resume the node from its freshest checkpoint."""
        if self.checkpoints is None:
            return False
        checkpoint = self.checkpoints.fresh(node.server.server_id,
                                            self.env.now)
        if checkpoint is None:
            stale = self.checkpoints.latest(node.server.server_id)
            if stale is not None:
                self.env.trace.instant(
                    "checkpoint_discard", node.track,
                    age_s=self.env.now - stale.taken_at_s)
            return False
        if not node.restore_state(dict(checkpoint.state)):
            return False
        self.metrics.checkpoint_restores += 1
        self.env.trace.instant(
            "checkpoint_restore", node.track,
            age_s=self.env.now - checkpoint.taken_at_s)
        return True
