"""repro.guard — overload protection and graceful degradation.

Four opt-in guard families for the EcoFaaS control plane:

- **Admission control** (:mod:`repro.guard.admission`): per-function
  token buckets and EWT-driven brownout shedding at the frontend.
- **Circuit breakers** (:mod:`repro.guard.breaker`): per-function
  closed/open/half-open breakers that stop retry storms.
- **Safe mode** (:mod:`repro.guard.safemode`): prediction sanity
  screening, MILP iteration budgets, DPT staleness pinning.
- **Checkpoints** (:mod:`repro.guard.checkpoint`): periodic controller
  snapshots with staleness-bounded restore on crash recovery, plus a
  refresh watchdog.

Everything is opt-in: a cluster whose config carries no
:class:`GuardConfig` runs the exact pre-guard code path and produces
bit-identical results (regression-tested against a stored fingerprint).
"""

from repro.guard.admission import (
    SHED_BROWNOUT,
    SHED_OVERLOAD,
    SHED_RATE_LIMIT,
    AdmissionController,
    TokenBucket,
)
from repro.guard.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.guard.checkpoint import CheckpointStore, ControllerCheckpoint
from repro.guard.config import (
    AdmissionConfig,
    BreakerConfig,
    CheckpointConfig,
    GuardConfig,
    SafeModeConfig,
)
from repro.guard.runtime import GuardRuntime
from repro.guard.safemode import PredictionGuard

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerBoard",
    "BreakerConfig",
    "CheckpointConfig",
    "CheckpointStore",
    "CircuitBreaker",
    "ControllerCheckpoint",
    "GuardConfig",
    "GuardRuntime",
    "PredictionGuard",
    "SafeModeConfig",
    "TokenBucket",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "SHED_BROWNOUT",
    "SHED_OVERLOAD",
    "SHED_RATE_LIMIT",
]
