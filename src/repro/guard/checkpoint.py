"""Controller checkpoints: periodic snapshots, staleness-bounded restore.

Node controllers rebuild to cold state after a crash (the
``repro.faults`` reboot hook) — the safe but expensive choice: a rebooted
EcoFaaS node collapses back to one max-frequency pool and re-learns its
pool shape over several ``T_refresh`` windows. A :class:`CheckpointStore`
keeps each node's latest control-state snapshot so the reboot can resume
from it instead, unless the snapshot has aged past the staleness bound
(stale control state is worse than cold state).

What a snapshot holds is controller-specific and opaque here: nodes
expose ``checkpoint_state()`` / ``restore_state()`` hooks (see
:class:`repro.platform.system.NodeSystem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.guard.config import CheckpointConfig


@dataclass(frozen=True)
class ControllerCheckpoint:
    """One node controller snapshot."""

    taken_at_s: float
    state: Dict[str, Any]


class CheckpointStore:
    """Latest checkpoint per node, with staleness-bounded lookup."""

    def __init__(self, config: CheckpointConfig):
        self.config = config
        self._latest: Dict[int, ControllerCheckpoint] = {}
        #: Snapshots taken (all nodes, all periods).
        self.taken = 0

    def take(self, node_id: int, now: float,
             state: Optional[Dict[str, Any]]) -> bool:
        """Store ``state`` as the node's latest snapshot (None = no-op)."""
        if state is None:
            return False
        self._latest[node_id] = ControllerCheckpoint(now, state)
        self.taken += 1
        return True

    def fresh(self, node_id: int, now: float
              ) -> Optional[ControllerCheckpoint]:
        """The node's latest snapshot, or None if absent or too stale."""
        checkpoint = self._latest.get(node_id)
        if checkpoint is None:
            return None
        if now - checkpoint.taken_at_s > self.config.max_staleness_s:
            return None
        return checkpoint

    def latest(self, node_id: int) -> Optional[ControllerCheckpoint]:
        return self._latest.get(node_id)
