"""The two-component CPU work model.

A unit of on-core work is ``(gcycles, mem_seconds)``: a frequency-scaled
compute part (``gcycles / f_ghz`` seconds at ``f_ghz``) and a
frequency-insensitive part (memory stalls, whose latency is set by DRAM, not
the core clock). This reproduces the measured shape of Fig. 2a — compute-
bound functions (MLTrain, CNNServ) slow down ~1/f while I/O- or memory-bound
ones (WebServ) barely move — and is the standard analytic DVFS model.

Work units are *consumed*: a core executing a unit for ``elapsed`` seconds
at frequency ``f`` removes a proportional share of both components, so
preemption and mid-phase frequency changes conserve total work exactly (a
property the test-suite checks with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WorkUnit:
    """Remaining on-core work: compute gigacycles + memory-stall seconds."""

    gcycles: float
    mem_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.gcycles < 0 or self.mem_seconds < 0:
            raise ValueError(
                f"work components must be non-negative: {self}")

    @property
    def done(self) -> bool:
        """True once no work remains (within float tolerance)."""
        return self.gcycles <= 1e-12 and self.mem_seconds <= 1e-12

    def duration(self, freq_ghz: float) -> float:
        """Seconds needed to finish the remaining work at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        return self.gcycles / freq_ghz + self.mem_seconds

    def consume(self, freq_ghz: float, elapsed: float) -> None:
        """Remove ``elapsed`` seconds of execution at ``freq_ghz``.

        The compute and memory components are assumed uniformly interleaved,
        so each shrinks by the same fraction of its remaining amount. Asking
        for more time than the remaining duration is an error (callers must
        clamp to ``duration``) — silently over-consuming would hide
        scheduler bugs.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed}")
        total = self.duration(freq_ghz)
        if elapsed > total + 1e-9:
            raise ValueError(
                f"cannot consume {elapsed}s, only {total}s remain")
        if total <= 0:
            return
        fraction = min(1.0, elapsed / total)
        self.gcycles *= (1.0 - fraction)
        self.mem_seconds *= (1.0 - fraction)
        if fraction >= 1.0:
            self.gcycles = 0.0
            self.mem_seconds = 0.0

    def copy(self) -> "WorkUnit":
        """An independent copy (templates are never executed directly)."""
        return WorkUnit(self.gcycles, self.mem_seconds)

    @classmethod
    def from_profile(cls, seconds_at_max: float, compute_fraction: float,
                     max_freq_ghz: float) -> "WorkUnit":
        """Build a unit from a measured duration at the top frequency.

        ``compute_fraction`` is the share of ``seconds_at_max`` spent in
        frequency-scaled compute; the rest is memory time.
        """
        if not 0.0 <= compute_fraction <= 1.0:
            raise ValueError(
                f"compute_fraction must be in [0, 1], got {compute_fraction}")
        if seconds_at_max < 0:
            raise ValueError(f"negative duration {seconds_at_max}")
        compute_s = seconds_at_max * compute_fraction
        return cls(gcycles=compute_s * max_freq_ghz,
                   mem_seconds=seconds_at_max * (1.0 - compute_fraction))
