"""Analytic server power model.

The paper measures package + DRAM energy with CPU Energy Meter (RAPL) and
apportions socket power to cores using frequency and active-cycle counts
(Section VII). We model the same decomposition analytically:

* per-core active power ``P_act(f) = core_static + k · f³`` — the classic
  CMOS model (dynamic power ∝ C·V²·f with V roughly linear in f),
* per-core idle power (clock-gated),
* per-socket uncore power (LLC, ring, memory controller),
* DRAM background power per server plus an activity term per busy core.

Defaults are calibrated to the Intel Xeon E5-2660 v3 (10 cores/socket,
105 W TDP): at 3.0 GHz with all ten cores active a socket draws
``10·(1.5 + 0.26·27) + 18 ≈ 103 W``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.prof import profiled


@dataclass(frozen=True)
class PowerModel:
    """Power coefficients for one server; all values in watts (and GHz)."""

    core_static_w: float = 1.5
    core_dynamic_w_per_ghz3: float = 0.26
    core_idle_w: float = 0.4
    uncore_w_per_socket: float = 18.0
    dram_background_w: float = 8.0
    dram_active_w_per_core: float = 0.7
    sockets: int = 2
    cores_per_socket: int = 10

    def __post_init__(self) -> None:
        for name in ("core_static_w", "core_dynamic_w_per_ghz3",
                     "core_idle_w", "uncore_w_per_socket",
                     "dram_background_w", "dram_active_w_per_core"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def core_active_power(self, freq_ghz: float) -> float:
        """Power of one core executing instructions at ``freq_ghz``."""
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_ghz}")
        return self.core_static_w + self.core_dynamic_w_per_ghz3 * freq_ghz ** 3

    def core_idle_power(self) -> float:
        """Power of one idle (clock-gated) core."""
        return self.core_idle_w

    def background_power(self) -> float:
        """Always-on power: uncore on every socket + DRAM background."""
        return self.uncore_w_per_socket * self.sockets + self.dram_background_w

    def dram_active_power(self, busy_cores: int) -> float:
        """DRAM activity power attributable to ``busy_cores`` running cores."""
        if busy_cores < 0:
            raise ValueError(f"busy_cores must be non-negative: {busy_cores}")
        return self.dram_active_w_per_core * busy_cores

    @profiled("hardware.power")
    def server_power(self, core_freqs_ghz: list, busy_flags: list) -> float:
        """Instantaneous whole-server power for a core state snapshot.

        ``core_freqs_ghz[i]`` is core *i*'s frequency and ``busy_flags[i]``
        whether it is executing. Convenience for tests and the energy meter
        cross-check; the simulator itself integrates incrementally.
        """
        if len(core_freqs_ghz) != len(busy_flags):
            raise ValueError("core_freqs and busy_flags must align")
        busy = sum(1 for flag in busy_flags if flag)
        core_power = sum(
            self.core_active_power(f) if flag else self.core_idle_power()
            for f, flag in zip(core_freqs_ghz, busy_flags))
        return core_power + self.background_power() + self.dram_active_power(busy)
