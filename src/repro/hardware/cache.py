"""LLC-way and memory-bandwidth throttling (the pqos study of Fig. 3).

The paper partitions the 16-way LLC and throttles memory bandwidth with
Intel RDT and observes that serverless functions barely care: at 4 ways the
worst response-time increase is 6 %, at 20 % bandwidth it is 4 %. We model
the same effect as a multiplier on the *memory-time* component of a
function's work — compute cycles are unaffected by either knob, and the
normalized penalty grows with the reciprocal of the allocation, saturating
at a per-function sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceThrottleModel:
    """Memory-time inflation under LLC-way / bandwidth throttling.

    ``max_llc_ways`` is the full allocation (16 on the Haswell platform).
    A function's ``llc_sensitivity`` / ``bw_sensitivity`` (both in [0, 1])
    scale the normalized penalty curves; at the minimum allocation the
    memory time of a fully sensitive function doubles.
    """

    max_llc_ways: int = 16
    min_llc_ways: int = 2
    min_bw_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.min_llc_ways < 1 or self.max_llc_ways <= self.min_llc_ways:
            raise ValueError(
                f"invalid way range [{self.min_llc_ways}, {self.max_llc_ways}]")
        if not 0 < self.min_bw_fraction < 1:
            raise ValueError(
                f"min_bw_fraction must be in (0, 1): {self.min_bw_fraction}")

    def llc_penalty(self, ways: int) -> float:
        """Normalized [0, 1] penalty for an allocation of ``ways`` ways."""
        if not self.min_llc_ways <= ways <= self.max_llc_ways:
            raise ValueError(
                f"ways must be in [{self.min_llc_ways}, {self.max_llc_ways}],"
                f" got {ways}")
        worst = self.max_llc_ways / self.min_llc_ways - 1.0
        return (self.max_llc_ways / ways - 1.0) / worst

    def bw_penalty(self, bw_fraction: float) -> float:
        """Normalized [0, 1] penalty for a bandwidth cap of ``bw_fraction``."""
        if not self.min_bw_fraction <= bw_fraction <= 1.0:
            raise ValueError(
                f"bw_fraction must be in [{self.min_bw_fraction}, 1],"
                f" got {bw_fraction}")
        worst = 1.0 / self.min_bw_fraction - 1.0
        return (1.0 / bw_fraction - 1.0) / worst

    def memory_time_multiplier(self, llc_ways: int, bw_fraction: float,
                               llc_sensitivity: float,
                               bw_sensitivity: float) -> float:
        """Multiplier applied to a work unit's ``mem_seconds``.

        Sensitivities are per-function: how much of the memory time is
        serviced by the throttled resource.
        """
        for name, value in (("llc_sensitivity", llc_sensitivity),
                            ("bw_sensitivity", bw_sensitivity)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        return (1.0
                + llc_sensitivity * self.llc_penalty(llc_ways)
                + bw_sensitivity * self.bw_penalty(bw_fraction))
