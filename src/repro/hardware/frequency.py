"""Discrete DVFS frequency scales and frequency-transition costs.

The paper's platform exposes 7 userspace-settable frequencies from 1.2 GHz
to 3.0 GHz in 0.3 GHz steps (Section VII). Changing frequency costs

* ~10 µs in hardware,
* a few tens of µs through the kernel/MSR path available to the (root)
  node controller (Section VIII-D), and
* 10–20 ms when a sandboxed userspace process has to cross the container
  and kernel boundaries (Section III-4) — the cost that cripples
  per-invocation DVFS in Baseline+PowerCtrl.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: The evaluation platform's levels, in GHz (Section VII).
HASWELL_LEVELS_GHZ: Tuple[float, ...] = (1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0)


@dataclass(frozen=True)
class FrequencyScale:
    """An ordered set of discrete core frequencies, in GHz."""

    levels: Tuple[float, ...] = HASWELL_LEVELS_GHZ

    def __post_init__(self) -> None:
        levels = tuple(float(level) for level in self.levels)
        if not levels:
            raise ValueError("a frequency scale needs at least one level")
        if any(level <= 0 for level in levels):
            raise ValueError(f"frequencies must be positive: {levels}")
        if list(levels) != sorted(set(levels)):
            raise ValueError(f"levels must be strictly increasing: {levels}")
        object.__setattr__(self, "levels", levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    def __contains__(self, freq: float) -> bool:
        return any(abs(freq - level) < 1e-9 for level in self.levels)

    @property
    def min(self) -> float:
        return self.levels[0]

    @property
    def max(self) -> float:
        return self.levels[-1]

    def index(self, freq: float) -> int:
        """Index of an exact level; raises ``ValueError`` for foreign values."""
        for i, level in enumerate(self.levels):
            if abs(level - freq) < 1e-9:
                return i
        raise ValueError(f"{freq} GHz is not a level of {self.levels}")

    def ceil(self, freq: float) -> float:
        """Smallest level >= ``freq`` (the pool a dispatcher would pick).

        Values above the top level clamp to the top level.
        """
        i = bisect.bisect_left(self.levels, freq - 1e-9)
        if i >= len(self.levels):
            return self.max
        return self.levels[i]

    def floor(self, freq: float) -> float:
        """Largest level <= ``freq``; values below the range clamp to min."""
        i = bisect.bisect_right(self.levels, freq + 1e-9) - 1
        if i < 0:
            return self.min
        return self.levels[i]

    def next_higher(self, freq: float) -> Optional[float]:
        """The level one step above ``freq``, or None at the top."""
        i = self.index(freq)
        if i + 1 >= len(self.levels):
            return None
        return self.levels[i + 1]

    def next_lower(self, freq: float) -> Optional[float]:
        """The level one step below ``freq``, or None at the bottom."""
        i = self.index(freq)
        if i == 0:
            return None
        return self.levels[i - 1]

    def at_or_above(self, freq: float) -> Tuple[float, ...]:
        """All levels >= ``freq`` in ascending order."""
        return tuple(level for level in self.levels if level >= freq - 1e-9)

    def step_down(self, freq: float, steps: int = 1) -> float:
        """The level ``steps`` below ``freq``, clamped at the minimum.

        The power-cap governor's ladder helper: tightening one actuation
        step lowers the cluster frequency ceiling by one level.
        """
        if steps < 0:
            raise ValueError(f"steps must be >= 0: {steps}")
        i = max(0, self.index(freq) - steps)
        return self.levels[i]

    @classmethod
    def from_granularity(cls, step_mhz: int, lo_mhz: int = 1200,
                         hi_mhz: int = 3000) -> "FrequencyScale":
        """Build a scale from ``lo`` to ``hi`` MHz in ``step`` MHz increments.

        Used by the Fig. 21 granularity study (50 / 300 / 600 MHz steps).
        The top frequency is always included even when the step does not
        divide the range exactly.
        """
        if step_mhz <= 0:
            raise ValueError(f"step must be positive, got {step_mhz}")
        if hi_mhz <= lo_mhz:
            raise ValueError(f"empty range [{lo_mhz}, {hi_mhz}] MHz")
        levels_mhz = list(range(lo_mhz, hi_mhz + 1, step_mhz))
        if levels_mhz[-1] != hi_mhz:
            levels_mhz.append(hi_mhz)
        return cls(tuple(mhz / 1000.0 for mhz in levels_mhz))


@dataclass
class DvfsCostModel:
    """Time costs of a core-frequency transition, per issuing path.

    ``sandbox_switch_s`` is sampled uniformly from a range because the
    paper reports 10–20 ms depending on contention for the kernel path.
    """

    hardware_switch_s: float = 10e-6
    kernel_switch_s: float = 50e-6
    sandbox_switch_range_s: Tuple[float, float] = (10e-3, 20e-3)
    #: Extra sandbox delay per concurrent switcher, modelling the observed
    #: contention when many containers invoke the OS at once (Section VIII-C).
    sandbox_contention_s: float = 2e-3
    rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        lo, hi = self.sandbox_switch_range_s
        if not 0 <= lo <= hi:
            raise ValueError(
                f"invalid sandbox switch range {self.sandbox_switch_range_s}")
        if min(self.hardware_switch_s, self.kernel_switch_s) < 0:
            raise ValueError("switch costs must be non-negative")

    def kernel_cost(self) -> float:
        """Cost of a switch issued by the privileged node controller."""
        return self.kernel_switch_s

    def sandbox_cost(self, concurrent_switchers: int = 0) -> float:
        """Cost of a switch issued from inside a container/VM sandbox."""
        lo, hi = self.sandbox_switch_range_s
        if self.rng is None:
            base = (lo + hi) / 2.0
        else:
            base = float(self.rng.uniform(lo, hi))
        return base + self.sandbox_contention_s * max(0, concurrent_switchers)
