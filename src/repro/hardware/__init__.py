"""Simulated hardware substrate.

Models the evaluation platform of the paper — dual-socket Intel Haswell
E5-2660 v3 servers (20 cores) with ACPI userspace DVFS at 7 levels between
1.2 and 3.0 GHz — at the level of detail the EcoFaaS mechanisms observe:

* :mod:`~repro.hardware.frequency` — discrete frequency scales and the cost
  of changing frequency (hardware, kernel/MSR, and sandboxed-userspace
  paths).
* :mod:`~repro.hardware.work` — the two-component work model
  ``T_run(f) = gcycles / f + mem_seconds`` that yields the measured shape of
  frequency sensitivity.
* :mod:`~repro.hardware.power` — analytic per-core power ``P(f) = s + k·f³``
  plus uncore and DRAM power.
* :mod:`~repro.hardware.energy` — integrating energy meters and frequency
  timelines (the simulated counterpart of RAPL / CPU Energy Meter).
* :mod:`~repro.hardware.core` / :mod:`~repro.hardware.server` — cores that
  execute work with preemption and frequency changes, grouped into servers.
* :mod:`~repro.hardware.cache` — LLC-way / memory-bandwidth throttling
  penalties (the pqos experiment of Fig. 3).
"""

from repro.hardware.cache import ResourceThrottleModel
from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter, FrequencyTimeline
from repro.hardware.frequency import DvfsCostModel, FrequencyScale
from repro.hardware.power import PowerModel
from repro.hardware.server import Server
from repro.hardware.work import WorkUnit

__all__ = [
    "Core",
    "DvfsCostModel",
    "EnergyMeter",
    "FrequencyScale",
    "FrequencyTimeline",
    "PowerModel",
    "ResourceThrottleModel",
    "Server",
    "WorkUnit",
]
