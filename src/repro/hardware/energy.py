"""Energy accounting: the simulated counterpart of RAPL / CPU Energy Meter.

:class:`EnergyMeter` integrates joules by component (active cores, idle
cores, uncore, DRAM, DVFS-transition overhead) and can additionally
*attribute* energy to named consumers (function names), mirroring the
paper's power-model apportionment of socket energy to invocations.

:class:`FrequencyTimeline` records the average core frequency over time
(Fig. 14) from irregular samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.obs.prof import profiled

#: Energy components tracked by the meter.
COMPONENTS = ("core_active", "core_idle", "uncore", "dram", "dvfs_overhead")


class EnergyMeter:
    """An integrating meter of joules by component and by consumer."""

    def __init__(self) -> None:
        self._by_component: Dict[str, float] = {c: 0.0 for c in COMPONENTS}
        self._by_consumer: Dict[str, float] = {}

    def add(self, component: str, joules: float) -> None:
        """Accrue ``joules`` into ``component``."""
        if component not in self._by_component:
            raise KeyError(
                f"unknown component {component!r}; expected one of {COMPONENTS}")
        if joules < 0:
            raise ValueError(f"cannot accrue negative energy: {joules}")
        self._by_component[component] += joules

    def attribute(self, consumer: str, joules: float) -> None:
        """Attribute ``joules`` of (already-accrued) energy to a consumer."""
        if joules < 0:
            raise ValueError(f"cannot attribute negative energy: {joules}")
        self._by_consumer[consumer] = self._by_consumer.get(consumer, 0.0) + joules

    @property
    def total_j(self) -> float:
        """Total metered energy in joules across all components."""
        return sum(self._by_component.values())

    def component_j(self, component: str) -> float:
        """Energy accrued to one component."""
        return self._by_component[component]

    def by_component(self) -> Dict[str, float]:
        """A copy of the component → joules map."""
        return dict(self._by_component)

    def consumer_j(self, consumer: str) -> float:
        """Energy attributed to one consumer (0.0 when never seen)."""
        return self._by_consumer.get(consumer, 0.0)

    def by_consumer(self) -> Dict[str, float]:
        """A copy of the consumer → joules map."""
        return dict(self._by_consumer)

    def merge(self, other: "EnergyMeter") -> None:
        """Fold another meter (e.g. another server's) into this one."""
        for component, joules in other._by_component.items():
            self._by_component[component] += joules
        for consumer, joules in other._by_consumer.items():
            self._by_consumer[consumer] = (
                self._by_consumer.get(consumer, 0.0) + joules)


@profiled("hardware.energy")
def combine(meters: Sequence["EnergyMeter"]) -> "EnergyMeter":
    """A fresh meter holding the sum of ``meters`` (cluster-wide rollup)."""
    total = EnergyMeter()
    for meter in meters:
        total.merge(meter)
    return total


@dataclass
class FrequencyTimeline:
    """Time series of the average core frequency in a server (Fig. 14)."""

    samples: List[Tuple[float, float]] = field(default_factory=list)

    def sample(self, time_s: float, core_freqs_ghz: Sequence[float]) -> None:
        """Record the mean of ``core_freqs_ghz`` at ``time_s``."""
        if not core_freqs_ghz:
            raise ValueError("cannot sample an empty frequency vector")
        if self.samples and time_s < self.samples[-1][0]:
            raise ValueError(
                f"samples must be time-ordered: {time_s} < {self.samples[-1][0]}")
        mean = sum(core_freqs_ghz) / len(core_freqs_ghz)
        self.samples.append((time_s, mean))

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self.samples]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def time_average(self) -> float:
        """Time-weighted mean frequency over the sampled interval."""
        if not self.samples:
            raise ValueError("no samples recorded")
        if len(self.samples) == 1:
            return self.samples[0][1]
        total_time = 0.0
        weighted = 0.0
        for (t0, v0), (t1, _) in zip(self.samples, self.samples[1:]):
            dt = t1 - t0
            total_time += dt
            weighted += v0 * dt
        if total_time == 0:
            return self.samples[0][1]
        return weighted / total_time
