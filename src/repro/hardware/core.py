"""A simulated CPU core.

A core executes one :class:`~repro.hardware.work.WorkUnit` at a time at its
current frequency, metering energy as it goes. The API is shaped by what
the three evaluated systems' schedulers need:

* ``start(work, ...)`` — begin executing; an optional ``pre_overhead_s``
  occupies the core *before* work begins (context-switch cost, or the
  10–20 ms sandboxed frequency-switch of Baseline+PowerCtrl).
* ``preempt()`` — stop the current job, returning its remaining work
  (consumed exactly; work is conserved).
* ``set_frequency(freq, cost_s)`` — change frequency; while busy the
  running job stalls for ``cost_s`` and then continues at the new speed
  (the elastic-pool refresh path).

Energy accrual is incremental: every state change closes the previous
segment at the power of the mode it ran in (idle / active / transition) and
attributes active energy to the running consumer, mirroring the paper's
power-model apportionment.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.hardware.energy import EnergyMeter
from repro.hardware.power import PowerModel
from repro.hardware.work import WorkUnit
from repro.obs.prof import profiled
from repro.sim.engine import Environment

#: Core accounting modes.
IDLE = "idle"
ACTIVE = "active"
TRANSITION = "transition"


class Core:
    """One core of a simulated server."""

    def __init__(self, env: Environment, core_id: int, power: PowerModel,
                 meter: EnergyMeter, frequency_ghz: float,
                 ipc_factor: float = 1.0):
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive: {frequency_ghz}")
        if ipc_factor <= 0:
            raise ValueError(f"ipc_factor must be positive: {ipc_factor}")
        self.env = env
        self.core_id = core_id
        self.power = power
        self.meter = meter
        #: Microarchitectural speed factor (Section VI-E3 heterogeneity):
        #: work retires at ``frequency x ipc_factor`` effective GHz while
        #: power still follows the nominal frequency.
        self.ipc_factor = ipc_factor
        self._frequency = frequency_ghz
        self._mode = IDLE
        self._mode_since = env.now
        self._work: Optional[WorkUnit] = None
        self._work_since = 0.0
        self._consumer: Optional[str] = None
        self._sink: Any = None
        self._on_complete: Optional[Callable[["Core"], None]] = None
        #: Invalidates stale completion/transition timeouts after preemption.
        self._token = 0
        #: Statistics.
        self.completed_runs = 0
        self.frequency_switches = 0
        #: Attribution tags, maintained by the owning server/scheduler and
        #: read only by the opt-in energy ledger (repro.obs.ledger):
        #: the node track ("node<i>"), the owning pool's name, and the
        #: blocked job a run-to-completion pool holds this core idle for.
        self.track = ""
        self.pool: Optional[str] = None
        self.blocked_hold: Any = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def frequency(self) -> float:
        """Current core frequency in GHz."""
        return self._frequency

    @property
    def effective_ghz(self) -> float:
        """Work-retirement rate: nominal frequency x IPC factor."""
        return self._frequency * self.ipc_factor

    @property
    def busy(self) -> bool:
        """True while a job occupies the core (including its overhead)."""
        return self._work is not None

    @property
    def consumer(self) -> Optional[str]:
        """Name of the consumer currently attributed, if any."""
        return self._consumer

    @property
    def sink(self) -> Any:
        """The opaque per-run object handed to :meth:`start`, if running."""
        return self._sink

    def remaining_time(self) -> float:
        """Seconds until the current job finishes at the current frequency.

        Includes any in-flight transition stall. Zero when idle.
        """
        if self._work is None:
            return 0.0
        stall = max(0.0, self._work_since - self.env.now)
        if self._mode == TRANSITION:
            return stall + self._work.duration(self.effective_ghz)
        elapsed = self.env.now - self._work_since
        return max(0.0, self._work.duration(self.effective_ghz) - elapsed)

    # ------------------------------------------------------------------
    # Energy accrual
    # ------------------------------------------------------------------
    @profiled("hardware.energy")
    def _accrue(self) -> None:
        """Close the current accounting segment at its mode's power."""
        t0 = self._mode_since
        dt = self.env.now - t0
        self._mode_since = self.env.now
        if dt <= 0:
            return
        ledger = self.env.trace.ledger
        if self._mode == IDLE:
            idle_j = self.power.core_idle_power() * dt
            self.meter.add("core_idle", idle_j)
            if ledger is not None:
                if self.blocked_hold is not None:
                    ledger.record_core(self, t0, self.env.now, idle_j,
                                       "blocked_hold", self.blocked_hold)
                else:
                    ledger.record_core(self, t0, self.env.now, idle_j,
                                       "idle")
            return
        active_j = self.power.core_active_power(self._frequency) * dt
        if self._mode == TRANSITION:
            self.meter.add("dvfs_overhead", active_j)
            if ledger is not None:
                ledger.record_core(self, t0, self.env.now, active_j,
                                   "freq_switch", self._sink)
            return
        self.meter.add("core_active", active_j)
        dram_j = self.power.dram_active_power(1) * dt
        self.meter.add("dram", dram_j)
        if self._consumer is not None:
            self.meter.attribute(self._consumer, active_j + dram_j)
        if self._sink is not None and hasattr(self._sink, "record_run"):
            self._sink.record_run(dt, active_j + dram_j)
        if ledger is not None:
            # Setup segments (container boot) are still pending their
            # first advance(), which is what _segment_index == -1 means.
            raw = ("active_setup"
                   if getattr(self._sink, "_segment_index", 0) == -1
                   else "active_run")
            ledger.record_core(self, t0, self.env.now,
                               active_j + dram_j, raw, self._sink)

    def _set_mode(self, mode: str) -> None:
        self._accrue()
        self._mode = mode

    def finalize(self) -> None:
        """Accrue energy up to the present (call at end of simulation)."""
        self._accrue()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self, work: WorkUnit, consumer: str,
              on_complete: Callable[["Core"], None],
              sink: Any = None, pre_overhead_s: float = 0.0) -> None:
        """Begin executing ``work``, calling ``on_complete(core)`` at the end.

        ``pre_overhead_s`` seconds of non-productive occupancy (context
        switch and/or sandboxed frequency switch) precede the work; their
        energy lands in the ``dvfs_overhead`` component.
        """
        if self.busy:
            raise RuntimeError(f"core {self.core_id} is already busy")
        if pre_overhead_s < 0:
            raise ValueError(f"negative pre_overhead {pre_overhead_s}")
        self._token += 1
        token = self._token
        self._work = work
        self._consumer = consumer
        self._sink = sink
        self._on_complete = on_complete
        if pre_overhead_s > 0:
            self._set_mode(TRANSITION)
            self._work_since = self.env.now + pre_overhead_s
            overhead_done = self.env.timeout(pre_overhead_s)
            overhead_done.callbacks.append(
                lambda ev, token=token: self._begin_work(token))
        else:
            self._set_mode(ACTIVE)
            self._work_since = self.env.now
            self._schedule_completion(token)

    def _begin_work(self, token: int) -> None:
        if token != self._token or self._work is None:
            return  # preempted while stalled; nothing to do
        self._set_mode(ACTIVE)
        self._work_since = self.env.now
        self._schedule_completion(token)

    def _schedule_completion(self, token: int) -> None:
        duration = self._work.duration(self.effective_ghz)
        done = self.env.timeout(duration)
        done.callbacks.append(
            lambda ev, token=token: self._complete(token))

    def _complete(self, token: int) -> None:
        if token != self._token or self._work is None:
            return  # stale timeout from before a preemption / freq change
        self._accrue()
        self._work.consume(self.effective_ghz,
                           self._work.duration(self.effective_ghz))
        self._work = None
        self._consumer = None
        self._sink = None
        self._set_mode(IDLE)
        self.completed_runs += 1
        on_complete, self._on_complete = self._on_complete, None
        on_complete(self)

    def preempt(self) -> WorkUnit:
        """Stop the running job; return its (exactly consumed) remainder."""
        if self._work is None:
            raise RuntimeError(f"core {self.core_id} is idle; nothing to preempt")
        self._token += 1  # invalidate outstanding timeouts
        self._accrue()
        if self._mode == ACTIVE:
            elapsed = self.env.now - self._work_since
            if elapsed > 0:
                self._work.consume(
                    self.effective_ghz,
                    min(elapsed, self._work.duration(self.effective_ghz)))
        work = self._work
        self._work = None
        self._consumer = None
        self._sink = None
        self._on_complete = None
        self._set_mode(IDLE)
        return work

    def set_frequency(self, freq_ghz: float, cost_s: float = 0.0) -> None:
        """Change the core frequency, stalling the current job for ``cost_s``.

        With ``cost_s == 0`` the change is free (used when the cost is
        modelled elsewhere, e.g. folded into ``pre_overhead_s``).
        """
        if freq_ghz <= 0:
            raise ValueError(f"frequency must be positive: {freq_ghz}")
        if cost_s < 0:
            raise ValueError(f"negative transition cost {cost_s}")
        if abs(freq_ghz - self._frequency) < 1e-12:
            return
        self.frequency_switches += 1
        if self._work is None:
            self._accrue()
            self._frequency = freq_ghz
            if cost_s > 0:
                # An idle core's transition: charge the overhead energy but
                # do not model occupancy (nothing was waiting on this core).
                switch_j = self.power.core_active_power(freq_ghz) * cost_s
                self.meter.add("dvfs_overhead", switch_j)
                ledger = self.env.trace.ledger
                if ledger is not None:
                    ledger.record_core(self, self.env.now,
                                       self.env.now + cost_s, switch_j,
                                       "freq_switch")
            return
        # Busy path: close the active segment, consume the work done so
        # far at the old speed, stall, then continue at the new speed.
        self._accrue()
        if self._mode == ACTIVE:
            elapsed = self.env.now - self._work_since
            if elapsed > 0:
                self._work.consume(
                    self.effective_ghz,
                    min(elapsed, self._work.duration(self.effective_ghz)))
        self._frequency = freq_ghz
        self._token += 1
        token = self._token
        if cost_s > 0:
            self._mode = TRANSITION
            self._work_since = self.env.now + cost_s
            stall_done = self.env.timeout(cost_s)
            stall_done.callbacks.append(
                lambda ev, token=token: self._begin_work(token))
        else:
            self._mode = ACTIVE
            self._work_since = self.env.now
            self._schedule_completion(token)
