"""A simulated server: cores + energy meter + background power.

Matches the evaluation platform (Section VII): 20 cores across two sockets,
7 DVFS levels. Background (uncore + DRAM standby) power accrues for the
whole lifetime of the server at :meth:`finalize` time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.core import Core
from repro.hardware.energy import EnergyMeter, FrequencyTimeline
from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.obs.prof import profiled
from repro.sim.engine import Environment


class Server:
    """A server with ``n_cores`` DVFS-capable cores and one energy meter."""

    def __init__(self, env: Environment, server_id: int = 0,
                 n_cores: Optional[int] = None,
                 scale: Optional[FrequencyScale] = None,
                 power: Optional[PowerModel] = None,
                 initial_freq_ghz: Optional[float] = None,
                 machine_type: str = "haswell",
                 ipc_factor: float = 1.0):
        self.env = env
        self.server_id = server_id
        self.scale = scale or FrequencyScale()
        self.power = power or PowerModel()
        #: Microarchitecture label + relative per-clock speed (VI-E3).
        self.machine_type = machine_type
        self.ipc_factor = ipc_factor
        self.n_cores = n_cores if n_cores is not None else self.power.total_cores
        if self.n_cores < 1:
            raise ValueError(f"need at least one core, got {self.n_cores}")
        self.meter = EnergyMeter()
        freq = initial_freq_ghz if initial_freq_ghz is not None else self.scale.max
        if freq not in self.scale:
            raise ValueError(
                f"initial frequency {freq} GHz is not in {self.scale.levels}")
        self.cores: List[Core] = [
            Core(env, core_id=i, power=self.power, meter=self.meter,
                 frequency_ghz=freq, ipc_factor=ipc_factor)
            for i in range(self.n_cores)
        ]
        for core in self.cores:
            core.track = f"node{server_id}"
        self.timeline = FrequencyTimeline()
        #: Advisory per-server power-cap share (repro.tenancy): the
        #: power-cap governor stamps its active cluster cap divided over
        #: the servers here. Purely observational — actuation happens
        #: through the node controllers — but it makes headroom a
        #: first-class hardware signal.
        self.power_cap_w: Optional[float] = None
        self._created_at = env.now
        self._finalized_until = env.now

    def idle_cores(self) -> List[Core]:
        """The currently idle cores, in id order."""
        return [core for core in self.cores if not core.busy]

    def busy_cores(self) -> List[Core]:
        """The currently busy cores, in id order."""
        return [core for core in self.cores if core.busy]

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of busy cores."""
        return len(self.busy_cores()) / self.n_cores

    def core_frequencies(self) -> List[float]:
        """Current frequency of every core, in core-id order."""
        return [core.frequency for core in self.cores]

    def sample_timeline(self) -> None:
        """Record the current average core frequency (Fig. 14 data)."""
        self.timeline.sample(self.env.now, self.core_frequencies())

    def power_snapshot_w(self) -> float:
        """Instantaneous whole-server power draw in watts.

        The time-integral of this snapshot over a run equals the metered
        energy (a cross-check the test-suite exercises).
        """
        return self.power.server_power(
            self.core_frequencies(),
            [core.busy for core in self.cores])

    def power_headroom_w(self) -> Optional[float]:
        """Watts of headroom under the advertised cap share, if any.

        Negative = currently drawing over the cap share. None when no
        power-cap governor has stamped a cap on this server.
        """
        if self.power_cap_w is None:
            return None
        return self.power_cap_w - self.power_snapshot_w()

    @profiled("hardware.energy")
    def finalize(self) -> None:
        """Accrue all outstanding energy up to the current time.

        Safe to call repeatedly; background power is charged exactly once
        per elapsed interval.
        """
        for core in self.cores:
            core.finalize()
        t0 = self._finalized_until
        elapsed = self.env.now - t0
        if elapsed > 0:
            background_j = self.power.background_power() * elapsed
            # Split the always-on power between its two physical sources so
            # the component breakdown stays meaningful.
            uncore_share = (self.power.uncore_w_per_socket * self.power.sockets
                            / self.power.background_power())
            self.meter.add("uncore", background_j * uncore_share)
            self.meter.add("dram", background_j * (1.0 - uncore_share))
            self._finalized_until = self.env.now
            ledger = self.env.trace.ledger
            if ledger is not None:
                ledger.record_static(f"node{self.server_id}", t0,
                                     self.env.now, background_j)

    @property
    def total_energy_j(self) -> float:
        """Total metered energy; call :meth:`finalize` first for accuracy."""
        return self.meter.total_j
