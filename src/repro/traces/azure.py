"""Synthetic Azure-Functions-like invocation traces.

Calibrated to the statistics the paper quotes from the production traces
(Sections III-5 and VIII-A):

* heavy-tailed function popularity — in a 10 s window ~119 distinct
  functions run, a function is invoked 14 times on average, and the top
  decile exceeds 113 invocations;
* burstiness — "the same function is invoked many times in a short
  period", with up to 33 concurrent invocations of one function;
* churn — the distinct-function count per window (Fig. 7) rises from ~3
  (mean, 1 s windows in a small cluster) to dozens in 10 s windows.

The generator superimposes, per function, a low-rate background Poisson
process and Poisson-arriving *bursts* of geometrically-sized invocation
trains with sub-second spacing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.traces.trace import Trace, TraceEvent


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic trace generator."""

    n_functions: int = 400
    duration_s: float = 600.0
    #: Mean per-function background arrival rate, Hz (before popularity).
    base_rate_hz: float = 0.08
    #: Zipf exponent of rank-based popularity (1.3 reproduces the quoted
    #: "top 12 functions account for 76 % of invocations").
    zipf_exponent: float = 1.3
    #: Lognormal jitter sigma around the Zipf rank weights.
    popularity_sigma: float = 0.3
    #: Per-function burst arrival rate, Hz (scales with popularity).
    burst_rate_hz: float = 0.02
    #: Mean invocations per burst (geometric).
    burst_size_mean: float = 12.0
    #: Mean spacing between invocations inside a burst, seconds.
    burst_spacing_s: float = 0.05
    #: Cluster-wide load-spike rate, Hz (0 disables). During a spike
    #: window every function's background rate is multiplied — this is
    #: what produces the paper's extreme "36 distinct functions in one
    #: second" tail, which per-function-independent bursts cannot reach.
    spike_rate_hz: float = 0.0
    #: Spike window length, seconds.
    spike_duration_s: float = 1.0
    #: Rate multiplier during a spike.
    spike_boost: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_functions < 1:
            raise ValueError("need at least one function")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        for attr in ("base_rate_hz", "burst_rate_hz", "burst_size_mean",
                     "burst_spacing_s", "zipf_exponent"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.spike_rate_hz < 0:
            raise ValueError("spike_rate_hz must be non-negative")
        if self.spike_rate_hz > 0 and (self.spike_duration_s <= 0
                                       or self.spike_boost <= 1.0):
            raise ValueError("spikes need positive duration and boost > 1")

    @classmethod
    def small_cluster(cls, duration_s: float = 600.0,
                      seed: int = 0) -> "AzureTraceConfig":
        """The Fig. 7 setting: a small cluster with modest churn
        (~3 distinct functions per second on average, up to ~36)."""
        return cls(n_functions=120, duration_s=duration_s,
                   base_rate_hz=0.03, zipf_exponent=1.1,
                   burst_rate_hz=0.004, burst_size_mean=10.0,
                   burst_spacing_s=0.08,
                   spike_rate_hz=0.01, spike_duration_s=1.0,
                   spike_boost=12.0, seed=seed)

    @classmethod
    def evaluation(cls, duration_s: float = 600.0,
                   seed: int = 0) -> "AzureTraceConfig":
        """The Section VIII-A setting: ~119 distinct functions per 10 s
        window, mean 14 invocations per function per window, bursty."""
        return cls(n_functions=150, duration_s=duration_s,
                   base_rate_hz=0.35, zipf_exponent=1.3,
                   burst_rate_hz=0.056, burst_size_mean=14.0,
                   burst_spacing_s=0.04, seed=seed)


def _poisson_arrivals(rng: np.random.Generator, rate_hz: float,
                      duration_s: float) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, duration)."""
    n = rng.poisson(rate_hz * duration_s)
    return np.sort(rng.uniform(0.0, duration_s, size=n))


def generate_azure_trace(config: AzureTraceConfig) -> Trace:
    """Generate a synthetic trace; function names are ``fn000`` ... ."""
    rng = np.random.default_rng(config.seed)
    ranks = np.arange(1, config.n_functions + 1, dtype=float)
    popularity = ranks ** -config.zipf_exponent
    popularity *= np.exp(
        config.popularity_sigma * rng.standard_normal(config.n_functions))
    popularity /= popularity.mean()  # so base_rate_hz is the mean rate
    spikes = _poisson_arrivals(rng, config.spike_rate_hz,
                               config.duration_s)
    events: List[TraceEvent] = []
    for i in range(config.n_functions):
        name = f"fn{i:03d}"
        weight = popularity[i]
        for t in _poisson_arrivals(
                rng, config.base_rate_hz * weight, config.duration_s):
            events.append(TraceEvent(float(t), name))
        for burst_start in _poisson_arrivals(
                rng, config.burst_rate_hz * weight, config.duration_s):
            size = rng.geometric(1.0 / config.burst_size_mean)
            gaps = rng.exponential(config.burst_spacing_s, size=size)
            t = burst_start
            for gap in gaps:
                t += gap
                if t >= config.duration_s:
                    break
                events.append(TraceEvent(float(t), name))
        # Cluster-wide load spikes hit every function simultaneously.
        for spike_start in spikes:
            extra_rate = (config.base_rate_hz * weight
                          * (config.spike_boost - 1.0))
            n_extra = rng.poisson(extra_rate * config.spike_duration_s)
            for offset in rng.uniform(0.0, config.spike_duration_s,
                                      size=n_extra):
                t = float(spike_start + offset)
                if t < config.duration_s:
                    events.append(TraceEvent(t, name))
    return Trace(events, config.duration_s)


def map_to_benchmarks(trace: Trace, benchmarks: Sequence[str],
                      ) -> Trace:
    """Assign benchmarks to the most popular trace functions (§VIII-A).

    The paper selects the 12 most popular functions (76 % of invocations)
    and assigns one evaluated benchmark to each. Returns the restricted and
    renamed trace. Popularity rank *k* maps to ``benchmarks[k]``, so order
    the list lightest-first for a realistic short-functions-are-popular
    mix.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark to map")
    popular = trace.benchmarks()[:len(benchmarks)]
    if len(popular) < len(benchmarks):
        raise ValueError(
            f"trace has only {len(popular)} distinct functions,"
            f" cannot map {len(benchmarks)} benchmarks")
    mapping: Dict[str, str] = dict(zip(popular, benchmarks))
    return trace.restrict_to(popular).rename(mapping)
