"""Trace containers and windowed statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence


@dataclass(frozen=True, order=True)
class TraceEvent:
    """One invocation request: arrival time + target benchmark/workflow."""

    time_s: float
    benchmark: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"negative arrival time {self.time_s}")


class Trace:
    """A time-ordered sequence of invocation requests."""

    def __init__(self, events: Sequence[TraceEvent], duration_s: float):
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        self.events: List[TraceEvent] = sorted(events)
        self.duration_s = float(duration_s)
        if self.events and self.events[-1].time_s > self.duration_s:
            raise ValueError(
                f"event at {self.events[-1].time_s}s lies beyond the trace"
                f" duration {self.duration_s}s")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def mean_rate_rps(self) -> float:
        """Average requests per second over the trace duration."""
        return len(self.events) / self.duration_s

    def invocation_counts(self) -> Dict[str, int]:
        """Total invocations per benchmark."""
        return dict(Counter(event.benchmark for event in self.events))

    def benchmarks(self) -> List[str]:
        """Distinct benchmark names, most popular first."""
        counts = Counter(event.benchmark for event in self.events)
        return [name for name, _ in counts.most_common()]

    def distinct_per_window(self, window_s: float) -> List[int]:
        """Distinct benchmarks invoked in each ``window_s`` slice (Fig. 7).

        Windows are back-to-back ``[k·w, (k+1)·w)`` slices covering the
        trace duration; empty windows count zero distinct functions.
        """
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s}")
        n_windows = max(1, int(self.duration_s // window_s))
        seen: List[set] = [set() for _ in range(n_windows)]
        for event in self.events:
            index = min(int(event.time_s // window_s), n_windows - 1)
            seen[index].add(event.benchmark)
        return [len(s) for s in seen]

    def count_per_window(self, window_s: float) -> List[int]:
        """Total invocations in each window."""
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s}")
        n_windows = max(1, int(self.duration_s // window_s))
        counts = [0] * n_windows
        for event in self.events:
            counts[min(int(event.time_s // window_s), n_windows - 1)] += 1
        return counts

    def restrict_to(self, benchmarks: Sequence[str]) -> "Trace":
        """A new trace holding only events of the given benchmarks."""
        keep = set(benchmarks)
        return Trace([e for e in self.events if e.benchmark in keep],
                     self.duration_s)

    def rename(self, mapping: Dict[str, str]) -> "Trace":
        """A new trace with benchmark names substituted via ``mapping``."""
        return Trace(
            [TraceEvent(e.time_s, mapping.get(e.benchmark, e.benchmark))
             for e in self.events],
            self.duration_s)

    def truncate(self, duration_s: float) -> "Trace":
        """A new trace holding only events before ``duration_s``."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        return Trace([e for e in self.events if e.time_s < duration_s],
                     min(duration_s, self.duration_s))


def cdf(values: Sequence[float]) -> List[tuple]:
    """Empirical CDF as sorted (value, cumulative fraction) pairs."""
    if not values:
        raise ValueError("cannot compute the CDF of nothing")
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
