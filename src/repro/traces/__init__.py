"""Invocation traces and load generation.

* :mod:`~repro.traces.trace` — trace containers and windowed statistics
  (distinct-function CDFs, Fig. 7).
* :mod:`~repro.traces.azure` — a synthetic generator calibrated to the
  statistics the paper quotes from the Azure Functions production traces
  (burstiness, heavy-tailed popularity, co-location dynamics).
* :mod:`~repro.traces.poisson` — open-loop Poisson arrivals at target CPU
  utilisation (the Low/Medium/High loads of Section VII).
"""

from repro.traces.azure import AzureTraceConfig, generate_azure_trace
from repro.traces.poisson import (
    PoissonLoadConfig,
    generate_poisson_trace,
    rate_for_utilization,
)
from repro.traces.trace import Trace, TraceEvent

__all__ = [
    "AzureTraceConfig",
    "PoissonLoadConfig",
    "Trace",
    "TraceEvent",
    "generate_azure_trace",
    "generate_poisson_trace",
    "rate_for_utilization",
]
