"""Open-loop Poisson load generation at target CPU utilisation.

Section VII varies load "using a Poisson distribution to model the request
inter-arrival time" and generates Low / Medium / High loads at CPU
utilisations of ~25 / 50 / 70 %. Every request invokes one of the twelve
benchmarks uniformly at random (Section VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.traces.trace import Trace, TraceEvent
from repro.workloads.applications import Workflow

#: The paper's three load points (CPU utilisation fractions).
LOAD_LEVELS = {"low": 0.25, "medium": 0.50, "high": 0.70}


@dataclass(frozen=True)
class PoissonLoadConfig:
    """An open-loop arrival process over a benchmark mix."""

    benchmarks: Sequence[str]
    rate_rps: float
    duration_s: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("need at least one benchmark")
        if self.rate_rps <= 0:
            raise ValueError(f"rate must be positive: {self.rate_rps}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")


def generate_poisson_trace(config: PoissonLoadConfig) -> Trace:
    """Exponential inter-arrivals; benchmark drawn uniformly per request."""
    rng = np.random.default_rng(config.seed)
    events: List[TraceEvent] = []
    t = float(rng.exponential(1.0 / config.rate_rps))
    while t < config.duration_s:
        benchmark = config.benchmarks[rng.integers(len(config.benchmarks))]
        events.append(TraceEvent(t, str(benchmark)))
        t += float(rng.exponential(1.0 / config.rate_rps))
    return Trace(events, config.duration_s)


def expected_core_seconds(workflow: Workflow, freq_ghz: float = 3.0) -> float:
    """Expected on-core seconds one invocation of ``workflow`` consumes."""
    return sum(f.run_seconds(freq_ghz) for f in workflow.functions)


def rate_for_utilization(workflows: Sequence[Workflow], utilization: float,
                         total_cores: int, freq_ghz: float = 3.0) -> float:
    """Request rate (RPS) that drives ``total_cores`` to ``utilization``.

    With requests spread uniformly over the mix, each request consumes the
    mix's mean core-seconds, so
    ``rate = utilization · total_cores / mean_core_seconds``.
    """
    if not workflows:
        raise ValueError("need at least one workflow")
    if not 0 < utilization <= 1:
        raise ValueError(f"utilization must be in (0, 1]: {utilization}")
    if total_cores < 1:
        raise ValueError(f"need at least one core: {total_cores}")
    mean_core_s = float(np.mean(
        [expected_core_seconds(wf, freq_ghz) for wf in workflows]))
    return utilization * total_cores / mean_core_s
