"""Fault schedules as pure data.

A :class:`FaultPlan` is a time-sorted tuple of :class:`FaultEvent` entries.
Plans are built *before* the simulation starts, from their own seeded RNG
(derived the same way as :class:`repro.sim.rng.RngRegistry` streams), so

* the same seed always produces the identical schedule, and
* building a plan never touches the streams workload sampling uses —
  adding faults cannot perturb the fault-free portion of a run.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import stable_hash

#: A node power-fails: in-flight jobs are lost, container state dies, and
#: the node rejoins ``duration_s`` later with a rebuilt controller.
NODE_CRASH = "node_crash"
#: One function's container on one node is killed (OOM-style): a warm
#: container vanishes, an in-flight cold start is discarded.
CONTAINER_KILL = "container_kill"
#: Storage/RPC latency spike: block segments on the node stretch by
#: ``magnitude`` for ``duration_s`` (this is also how remote-call timeouts
#: manifest to the platform — the reliability policy's per-invocation
#: timeout is what turns a long-enough spike into an abandoned attempt).
RPC_SPIKE = "rpc_spike"
#: Frequency-driver stall: DVFS transitions on the node cost ``magnitude``
#: times more for ``duration_s``.
DVFS_STALL = "dvfs_stall"
#: Network partition: the link between two endpoints is cut for
#: ``duration_s`` (the heal time). ``endpoint`` names one side (default
#: ``node<node>``), ``peer`` the other (default the frontend), and
#: ``direction`` selects a symmetric cut (``"both"``) or an asymmetric
#: one (``"out"`` = endpoint->peer only, ``"in"`` = peer->endpoint only).
#: Needs the ``repro.ha`` link model (``ClusterConfig.ha``) to be armed.
NETWORK_PARTITION = "network_partition"
#: A global-controller replica crashes for ``duration_s`` (0 = stays down
#: for the rest of the run). ``node`` is the replica id. Needs the
#: ``repro.ha`` controller group (``ClusterConfig.ha``) to be armed.
CONTROLLER_CRASH = "controller_crash"

FAULT_KINDS = (NODE_CRASH, CONTAINER_KILL, RPC_SPIKE, DVFS_STALL,
               NETWORK_PARTITION, CONTROLLER_CRASH)

#: Valid ``direction`` values of a network partition.
PARTITION_DIRECTIONS = ("both", "out", "in")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time_s: float
    kind: str
    #: Target node index (modulo the cluster size at injection time).
    node: int = 0
    #: Target function name (container kills only).
    function: Optional[str] = None
    #: Crash downtime, or spike/stall/partition window length.
    duration_s: float = 0.0
    #: Latency / transition-cost multiplier (spikes and stalls).
    magnitude: float = 1.0
    #: Partition endpoint on the "a" side (None = ``node<node>``).
    endpoint: Optional[str] = None
    #: Partition endpoint on the "b" side.
    peer: str = "frontend"
    #: Partition direction: "both", "out" (a->b), or "in" (b->a).
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of"
                f" {FAULT_KINDS}")
        for field_name in ("time_s", "duration_s", "magnitude"):
            value = getattr(self, field_name)
            if math.isnan(value) or math.isinf(value):
                raise ValueError(
                    f"{field_name} must be finite: {value!r}")
        if self.time_s < 0:
            raise ValueError(f"negative fault time {self.time_s}")
        if self.node < 0:
            raise ValueError(f"negative node index {self.node}")
        if self.duration_s < 0:
            raise ValueError(f"negative fault duration {self.duration_s}")
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be positive: {self.magnitude}")
        if self.kind == NODE_CRASH and self.duration_s <= 0:
            raise ValueError("a node crash needs a positive downtime")
        if self.kind == CONTAINER_KILL and not self.function:
            raise ValueError("a container kill needs a function name")
        if self.kind in (RPC_SPIKE, DVFS_STALL) and self.duration_s <= 0:
            raise ValueError(f"a {self.kind} needs a positive window")
        if self.kind == NETWORK_PARTITION:
            if self.duration_s <= 0:
                raise ValueError(
                    "a network partition needs a positive heal time")
            if self.direction not in PARTITION_DIRECTIONS:
                raise ValueError(
                    f"partition direction must be one of"
                    f" {PARTITION_DIRECTIONS}: {self.direction!r}")
            if not self.peer:
                raise ValueError("a network partition needs a peer endpoint")
            if self.endpoint is not None and self.endpoint == self.peer:
                raise ValueError(
                    f"a partition needs two distinct endpoints, got"
                    f" {self.endpoint!r} on both sides")

    def endpoint_a(self) -> str:
        """The "a"-side link endpoint of a partition event."""
        if self.endpoint is not None:
            return self.endpoint
        return f"node{self.node}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, time-sorted fault schedule."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.time_s, e.kind, e.node)))
        object.__setattr__(self, "events", ordered)

    @property
    def has_node_crashes(self) -> bool:
        return any(e.kind == NODE_CRASH for e in self.events)

    @property
    def has_partitions(self) -> bool:
        return any(e.kind == NETWORK_PARTITION for e in self.events)

    @property
    def has_controller_crashes(self) -> bool:
        return any(e.kind == CONTROLLER_CRASH for e in self.events)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    # ------------------------------------------------------------------
    # Validation against a concrete cluster shape
    # ------------------------------------------------------------------
    def check(self, n_servers: Optional[int] = None,
              functions: Optional[Sequence[str]] = None,
              n_controllers: Optional[int] = None) -> List[str]:
        """Problems this plan would cause on a cluster of the given shape.

        Per-event shape (finite times, positive windows, known kinds) is
        already enforced by :class:`FaultEvent` at construction; this
        checks the cross-event and cluster-relative properties that a
        single event cannot see: node indices out of range, container
        kills of unknown functions, controller ids out of range, and
        crash windows that overlap on the same node (the second crash
        would hit a node that is already down). Returns a list of
        human-readable problems, empty when the plan is clean.

        Kept separate from construction deliberately: hand-written and
        ``calibrated`` plans target nodes modulo the cluster size at
        injection time and tolerate overlapping crash windows (a crash
        landing on a down node is simply absorbed), so rejecting them
        eagerly would break existing schedules. Fuzzer-generated plans
        and deserialized artifacts call :meth:`validate`.
        """
        problems: List[str] = []
        node_kinds = (NODE_CRASH, CONTAINER_KILL, RPC_SPIKE, DVFS_STALL)
        known = set(functions) if functions is not None else None
        crash_windows: Dict[int, List[Tuple[float, float]]] = {}
        for event in self.events:
            where = f"{event.kind}@{event.time_s:.3f}s"
            if (n_servers is not None and event.kind in node_kinds
                    and event.node >= n_servers):
                problems.append(
                    f"{where}: node {event.node} out of range for a"
                    f" {n_servers}-server cluster")
            if (n_controllers is not None
                    and event.kind == CONTROLLER_CRASH
                    and event.node >= n_controllers):
                problems.append(
                    f"{where}: controller replica {event.node} out of"
                    f" range for a {n_controllers}-replica group")
            if (known is not None and event.kind == CONTAINER_KILL
                    and event.function not in known):
                problems.append(
                    f"{where}: unknown function {event.function!r}")
            if event.kind == NODE_CRASH:
                window = (event.time_s, event.time_s + event.duration_s)
                for start, end in crash_windows.get(event.node, []):
                    if window[0] < end and start < window[1]:
                        problems.append(
                            f"{where}: crash window"
                            f" [{window[0]:.3f}, {window[1]:.3f}]s on"
                            f" node {event.node} overlaps"
                            f" [{start:.3f}, {end:.3f}]s")
                crash_windows.setdefault(event.node, []).append(window)
        return problems

    def validate(self, n_servers: Optional[int] = None,
                 functions: Optional[Sequence[str]] = None,
                 n_controllers: Optional[int] = None) -> "FaultPlan":
        """Raise ``ValueError`` listing every :meth:`check` problem."""
        problems = self.check(n_servers=n_servers, functions=functions,
                              n_controllers=n_controllers)
        if problems:
            raise ValueError(
                "invalid fault plan:\n  " + "\n  ".join(problems))
        return self

    # ------------------------------------------------------------------
    # Serialization (fuzz artifacts)
    # ------------------------------------------------------------------
    def to_json(self) -> List[Dict[str, object]]:
        """JSON-ready event list; round-trips through :meth:`from_json`."""
        return [asdict(event) for event in self.events]

    @classmethod
    def from_json(cls, data: Sequence[Dict[str, object]]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (re-validated)."""
        events = []
        for row in data:
            unknown = set(row) - {f for f in FaultEvent.__dataclass_fields__}
            if unknown:
                raise ValueError(
                    f"unknown fault-event fields: {sorted(unknown)}")
            events.append(FaultEvent(**row))
        return cls(tuple(events))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty (all-zero) plan: injecting it changes nothing."""
        return cls()

    @classmethod
    def calibrated(cls, duration_s: float, n_servers: int,
                   functions: Sequence[str], seed: int = 0,
                   crashes_per_node_hour: float = 60.0,
                   kills_per_node_hour: float = 240.0,
                   spikes_per_hour: float = 120.0,
                   stalls_per_hour: float = 60.0,
                   min_crashes: int = 1) -> "FaultPlan":
        """The default chaos mix, scaled to the run length and cluster size.

        The rates are calibrated for simulation-scale runs (minutes, not
        months): aggressive enough that a quick chaos run exercises every
        fault kind and the retry machinery, which is the point of the
        experiment. ``min_crashes`` guarantees the recovery path fires at
        least once even on very short runs. Faults land in the first 70 %
        of the run so reboots and retries can drain before it ends.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if n_servers < 1:
            raise ValueError(f"need at least one server: {n_servers}")
        rates = {
            "crashes_per_node_hour": crashes_per_node_hour,
            "kills_per_node_hour": kills_per_node_hour,
            "spikes_per_hour": spikes_per_hour,
            "stalls_per_hour": stalls_per_hour,
        }
        for name, rate in rates.items():
            if math.isnan(rate) or math.isinf(rate) or rate < 0:
                raise ValueError(
                    f"{name} must be a finite non-negative rate: {rate}")
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, stable_hash("faults/plan")]))
        hours = duration_s / 3600.0
        window = (0.05 * duration_s, 0.70 * duration_s)

        def times(count: int) -> List[float]:
            return sorted(float(t) for t in rng.uniform(*window, size=count))

        events: List[FaultEvent] = []
        n_crashes = max(min_crashes,
                        int(rng.poisson(crashes_per_node_hour
                                        * n_servers * hours)))
        for t in times(n_crashes):
            events.append(FaultEvent(
                time_s=t, kind=NODE_CRASH,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(2.0, 5.0))))
        if functions:
            n_kills = int(rng.poisson(kills_per_node_hour
                                      * n_servers * hours))
            for t in times(n_kills):
                events.append(FaultEvent(
                    time_s=t, kind=CONTAINER_KILL,
                    node=int(rng.integers(n_servers)),
                    function=str(rng.choice(list(functions)))))
        for t in times(int(rng.poisson(spikes_per_hour * hours))):
            events.append(FaultEvent(
                time_s=t, kind=RPC_SPIKE,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(1.0, 3.0)),
                magnitude=float(rng.uniform(2.0, 6.0))))
        for t in times(int(rng.poisson(stalls_per_hour * hours))):
            events.append(FaultEvent(
                time_s=t, kind=DVFS_STALL,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(1.0, 3.0)),
                magnitude=float(rng.uniform(50.0, 200.0))))
        for event in events:
            if not 0.0 <= event.time_s <= duration_s:
                raise ValueError(
                    f"calibrated plan generated an out-of-window event at"
                    f" t={event.time_s:.3f}s (run duration {duration_s}s)")
        return cls(tuple(events))
