"""Fault schedules as pure data.

A :class:`FaultPlan` is a time-sorted tuple of :class:`FaultEvent` entries.
Plans are built *before* the simulation starts, from their own seeded RNG
(derived the same way as :class:`repro.sim.rng.RngRegistry` streams), so

* the same seed always produces the identical schedule, and
* building a plan never touches the streams workload sampling uses —
  adding faults cannot perturb the fault-free portion of a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import stable_hash

#: A node power-fails: in-flight jobs are lost, container state dies, and
#: the node rejoins ``duration_s`` later with a rebuilt controller.
NODE_CRASH = "node_crash"
#: One function's container on one node is killed (OOM-style): a warm
#: container vanishes, an in-flight cold start is discarded.
CONTAINER_KILL = "container_kill"
#: Storage/RPC latency spike: block segments on the node stretch by
#: ``magnitude`` for ``duration_s`` (this is also how remote-call timeouts
#: manifest to the platform — the reliability policy's per-invocation
#: timeout is what turns a long-enough spike into an abandoned attempt).
RPC_SPIKE = "rpc_spike"
#: Frequency-driver stall: DVFS transitions on the node cost ``magnitude``
#: times more for ``duration_s``.
DVFS_STALL = "dvfs_stall"
#: Network partition: the link between two endpoints is cut for
#: ``duration_s`` (the heal time). ``endpoint`` names one side (default
#: ``node<node>``), ``peer`` the other (default the frontend), and
#: ``direction`` selects a symmetric cut (``"both"``) or an asymmetric
#: one (``"out"`` = endpoint->peer only, ``"in"`` = peer->endpoint only).
#: Needs the ``repro.ha`` link model (``ClusterConfig.ha``) to be armed.
NETWORK_PARTITION = "network_partition"
#: A global-controller replica crashes for ``duration_s`` (0 = stays down
#: for the rest of the run). ``node`` is the replica id. Needs the
#: ``repro.ha`` controller group (``ClusterConfig.ha``) to be armed.
CONTROLLER_CRASH = "controller_crash"

FAULT_KINDS = (NODE_CRASH, CONTAINER_KILL, RPC_SPIKE, DVFS_STALL,
               NETWORK_PARTITION, CONTROLLER_CRASH)

#: Valid ``direction`` values of a network partition.
PARTITION_DIRECTIONS = ("both", "out", "in")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time_s: float
    kind: str
    #: Target node index (modulo the cluster size at injection time).
    node: int = 0
    #: Target function name (container kills only).
    function: Optional[str] = None
    #: Crash downtime, or spike/stall/partition window length.
    duration_s: float = 0.0
    #: Latency / transition-cost multiplier (spikes and stalls).
    magnitude: float = 1.0
    #: Partition endpoint on the "a" side (None = ``node<node>``).
    endpoint: Optional[str] = None
    #: Partition endpoint on the "b" side.
    peer: str = "frontend"
    #: Partition direction: "both", "out" (a->b), or "in" (b->a).
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of"
                f" {FAULT_KINDS}")
        if self.time_s < 0:
            raise ValueError(f"negative fault time {self.time_s}")
        if self.node < 0:
            raise ValueError(f"negative node index {self.node}")
        if self.duration_s < 0:
            raise ValueError(f"negative fault duration {self.duration_s}")
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be positive: {self.magnitude}")
        if self.kind == NODE_CRASH and self.duration_s <= 0:
            raise ValueError("a node crash needs a positive downtime")
        if self.kind == CONTAINER_KILL and not self.function:
            raise ValueError("a container kill needs a function name")
        if self.kind in (RPC_SPIKE, DVFS_STALL) and self.duration_s <= 0:
            raise ValueError(f"a {self.kind} needs a positive window")
        if self.kind == NETWORK_PARTITION:
            if self.duration_s <= 0:
                raise ValueError(
                    "a network partition needs a positive heal time")
            if self.direction not in PARTITION_DIRECTIONS:
                raise ValueError(
                    f"partition direction must be one of"
                    f" {PARTITION_DIRECTIONS}: {self.direction!r}")
            if not self.peer:
                raise ValueError("a network partition needs a peer endpoint")
            if self.endpoint is not None and self.endpoint == self.peer:
                raise ValueError(
                    f"a partition needs two distinct endpoints, got"
                    f" {self.endpoint!r} on both sides")

    def endpoint_a(self) -> str:
        """The "a"-side link endpoint of a partition event."""
        if self.endpoint is not None:
            return self.endpoint
        return f"node{self.node}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, time-sorted fault schedule."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.time_s, e.kind, e.node)))
        object.__setattr__(self, "events", ordered)

    @property
    def has_node_crashes(self) -> bool:
        return any(e.kind == NODE_CRASH for e in self.events)

    @property
    def has_partitions(self) -> bool:
        return any(e.kind == NETWORK_PARTITION for e in self.events)

    @property
    def has_controller_crashes(self) -> bool:
        return any(e.kind == CONTROLLER_CRASH for e in self.events)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty (all-zero) plan: injecting it changes nothing."""
        return cls()

    @classmethod
    def calibrated(cls, duration_s: float, n_servers: int,
                   functions: Sequence[str], seed: int = 0,
                   crashes_per_node_hour: float = 60.0,
                   kills_per_node_hour: float = 240.0,
                   spikes_per_hour: float = 120.0,
                   stalls_per_hour: float = 60.0,
                   min_crashes: int = 1) -> "FaultPlan":
        """The default chaos mix, scaled to the run length and cluster size.

        The rates are calibrated for simulation-scale runs (minutes, not
        months): aggressive enough that a quick chaos run exercises every
        fault kind and the retry machinery, which is the point of the
        experiment. ``min_crashes`` guarantees the recovery path fires at
        least once even on very short runs. Faults land in the first 70 %
        of the run so reboots and retries can drain before it ends.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive: {duration_s}")
        if n_servers < 1:
            raise ValueError(f"need at least one server: {n_servers}")
        rates = {
            "crashes_per_node_hour": crashes_per_node_hour,
            "kills_per_node_hour": kills_per_node_hour,
            "spikes_per_hour": spikes_per_hour,
            "stalls_per_hour": stalls_per_hour,
        }
        for name, rate in rates.items():
            if math.isnan(rate) or math.isinf(rate) or rate < 0:
                raise ValueError(
                    f"{name} must be a finite non-negative rate: {rate}")
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, stable_hash("faults/plan")]))
        hours = duration_s / 3600.0
        window = (0.05 * duration_s, 0.70 * duration_s)

        def times(count: int) -> List[float]:
            return sorted(float(t) for t in rng.uniform(*window, size=count))

        events: List[FaultEvent] = []
        n_crashes = max(min_crashes,
                        int(rng.poisson(crashes_per_node_hour
                                        * n_servers * hours)))
        for t in times(n_crashes):
            events.append(FaultEvent(
                time_s=t, kind=NODE_CRASH,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(2.0, 5.0))))
        if functions:
            n_kills = int(rng.poisson(kills_per_node_hour
                                      * n_servers * hours))
            for t in times(n_kills):
                events.append(FaultEvent(
                    time_s=t, kind=CONTAINER_KILL,
                    node=int(rng.integers(n_servers)),
                    function=str(rng.choice(list(functions)))))
        for t in times(int(rng.poisson(spikes_per_hour * hours))):
            events.append(FaultEvent(
                time_s=t, kind=RPC_SPIKE,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(1.0, 3.0)),
                magnitude=float(rng.uniform(2.0, 6.0))))
        for t in times(int(rng.poisson(stalls_per_hour * hours))):
            events.append(FaultEvent(
                time_s=t, kind=DVFS_STALL,
                node=int(rng.integers(n_servers)),
                duration_s=float(rng.uniform(1.0, 3.0)),
                magnitude=float(rng.uniform(50.0, 200.0))))
        for event in events:
            if not 0.0 <= event.time_s <= duration_s:
                raise ValueError(
                    f"calibrated plan generated an out-of-window event at"
                    f" t={event.time_s:.3f}s (run duration {duration_s}s)")
        return cls(tuple(events))
