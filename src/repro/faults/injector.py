"""Replays a :class:`FaultPlan` into a running cluster.

Every scheduled fault becomes one ordinary ``repro.sim`` process, so chaos
runs replay bit-identically: the injector adds no randomness of its own,
and an empty plan spawns nothing at all.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.faults.plan import (
    CONTAINER_KILL,
    CONTROLLER_CRASH,
    DVFS_STALL,
    NETWORK_PARTITION,
    NODE_CRASH,
    RPC_SPIKE,
    FaultEvent,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.platform.system import NodeSystem


class FaultInjector:
    """Drives a fault plan into one cluster as simulation processes."""

    def __init__(self, cluster: "Cluster", plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.metrics = cluster.metrics
        #: ``(time_s, kind, node_index)`` log of faults actually applied
        #: (crashes on an already-down node, for example, are skipped).
        self.applied: List[Tuple[float, str, int]] = []
        # Active multiplicative factors per node, recomputed as products so
        # overlapping spikes compose and restore exactly.
        self._rpc_active: Dict[int, List[float]] = {}
        self._dvfs_active: Dict[int, List[float]] = {}

    def arm(self) -> None:
        """Spawn one driver process per scheduled fault."""
        for i, event in enumerate(self.plan.events):
            self.cluster.env.process(
                self._drive(event),
                name=f"fault-{i}-{event.kind}")

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _node(self, event: FaultEvent) -> Tuple[int, "NodeSystem"]:
        index = event.node % len(self.cluster.nodes)
        return index, self.cluster.nodes[index]

    def _drive(self, event: FaultEvent):
        env = self.cluster.env
        delay = event.time_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        if event.kind == NETWORK_PARTITION:
            yield from self._drive_partition(event)
            return
        if event.kind == CONTROLLER_CRASH:
            yield from self._drive_controller_crash(event)
            return
        index, node = self._node(event)
        if event.kind == NODE_CRASH:
            if node.down:
                return  # overlapping crash on a node already down
            lost = node.crash()
            self.metrics.record_crash(
                len(lost), sum(job.energy_j for job in lost))
            self.applied.append((env.now, NODE_CRASH, index))
            env.trace.instant(f"fault_{NODE_CRASH}", "faults", node=index,
                              jobs_lost=len(lost),
                              duration_s=event.duration_s)
            yield env.timeout(event.duration_s)
            node.reboot()
            self.metrics.record_recovery(event.duration_s)
            env.trace.instant("node_recovered", "faults", node=index,
                              downtime_s=event.duration_s)
        elif event.kind == CONTAINER_KILL:
            if node.down:
                return  # nothing to kill: the node itself is dead
            prior = node.kill_container(event.function)
            if prior != "cold":
                self.metrics.record_failure(CONTAINER_KILL)
                self.applied.append((env.now, CONTAINER_KILL, index))
                env.trace.instant(f"fault_{CONTAINER_KILL}", "faults",
                                  node=index, function=event.function,
                                  prior=prior)
        elif event.kind == RPC_SPIKE:
            self.metrics.record_failure(RPC_SPIKE)
            self.applied.append((env.now, RPC_SPIKE, index))
            env.trace.instant(f"fault_{RPC_SPIKE}", "faults", node=index,
                              magnitude=event.magnitude,
                              duration_s=event.duration_s)
            yield from self._windowed(node, self._rpc_active, index,
                                      event, "rpc_latency_factor")
        elif event.kind == DVFS_STALL:
            self.metrics.record_failure(DVFS_STALL)
            self.applied.append((env.now, DVFS_STALL, index))
            env.trace.instant(f"fault_{DVFS_STALL}", "faults", node=index,
                              magnitude=event.magnitude,
                              duration_s=event.duration_s)
            yield from self._windowed(node, self._dvfs_active, index,
                                      event, "dvfs_stall_factor")

    def _drive_partition(self, event: FaultEvent):
        """Cut the event's link(s) in the cluster's link table, then heal.

        The cluster refuses to build with a partition plan and no HA
        layer, so ``env.links`` is always live here; cuts and heals go
        through the table's reference counts, which makes overlapping
        partitions compose exactly like overlapping latency spikes.
        """
        env = self.cluster.env
        side_a = event.endpoint or f"node{event.node % len(self.cluster.nodes)}"
        side_b = event.peer
        if event.direction == "out":
            pairs = [(side_a, side_b)]
        elif event.direction == "in":
            pairs = [(side_b, side_a)]
        else:
            pairs = [(side_a, side_b), (side_b, side_a)]
        self.metrics.record_failure(NETWORK_PARTITION)
        self.applied.append((env.now, NETWORK_PARTITION, event.node))
        env.trace.instant(f"fault_{NETWORK_PARTITION}", "faults",
                          a=side_a, b=side_b, direction=event.direction,
                          duration_s=event.duration_s)
        links = env.links
        for src, dst in pairs:
            links.cut(src, dst)
        yield env.timeout(event.duration_s)
        for src, dst in pairs:
            links.heal(src, dst)
        env.trace.instant("partition_healed", "faults", a=side_a, b=side_b)

    def _drive_controller_crash(self, event: FaultEvent):
        """Crash a global-controller replica; rejoin after the downtime."""
        env = self.cluster.env
        ha = env.ha
        rid = event.node % ha.controllers.n
        if ha.controller_crash(rid) is None:
            return  # overlapping crash on a replica already down
        self.metrics.record_failure(CONTROLLER_CRASH)
        self.applied.append((env.now, CONTROLLER_CRASH, rid))
        env.trace.instant(f"fault_{CONTROLLER_CRASH}", "faults",
                          replica=rid, duration_s=event.duration_s)
        if event.duration_s <= 0:
            return  # permanent: the replica stays down for the run
        yield env.timeout(event.duration_s)
        ha.controller_rejoin(rid)

    def _windowed(self, node: "NodeSystem",
                  active: Dict[int, List[float]], index: int,
                  event: FaultEvent, attribute: str):
        """Apply a multiplicative factor for the event's window.

        The node attribute is always recomputed as the product of the
        currently active magnitudes, so overlapping windows compose and
        the factor returns to exactly 1.0 once all of them end.
        """
        factors = active.setdefault(index, [])
        factors.append(event.magnitude)
        setattr(node, attribute, math.prod(factors, start=1.0))
        yield self.cluster.env.timeout(event.duration_s)
        factors.remove(event.magnitude)
        setattr(node, attribute, math.prod(factors, start=1.0))
