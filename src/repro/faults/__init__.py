"""Deterministic fault injection for the simulated platform.

The subsystem has two halves:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` is pure data: a seeded,
  sorted schedule of :class:`FaultEvent` entries (node crash + reboot,
  per-container kill, storage/RPC latency spike, DVFS-driver stall,
  network partition, global-controller crash). Building a plan draws
  from its own named RNG stream, so plans are bit-identical per seed and
  never perturb workload sampling.
* :mod:`repro.faults.injector` — a :class:`FaultInjector` replays a plan
  into a running :class:`~repro.platform.cluster.Cluster` as ordinary
  ``repro.sim`` processes, making chaos runs exactly as reproducible as
  fault-free ones.

The recovery half lives in ``repro.platform``: the frontend's
:class:`~repro.platform.reliability.ReliabilityPolicy` (retry/backoff,
timeout, hedging) and the node controllers' crash/reboot hooks. With no
plan and no policy, every code path is provably inert.
"""

from repro.faults.plan import (
    CONTAINER_KILL,
    CONTROLLER_CRASH,
    DVFS_STALL,
    FAULT_KINDS,
    NETWORK_PARTITION,
    NODE_CRASH,
    RPC_SPIKE,
    FaultEvent,
    FaultPlan,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "CONTAINER_KILL",
    "CONTROLLER_CRASH",
    "DVFS_STALL",
    "FAULT_KINDS",
    "NETWORK_PARTITION",
    "NODE_CRASH",
    "RPC_SPIKE",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]
