"""A function invocation in flight.

A :class:`Job` walks through its spec's segments under a scheduler: run
segments execute on cores (possibly across preemptions and frequency
changes), block segments park the job off-core. The job accumulates the
measured ``T_Queue`` / ``T_Run`` / ``T_Block`` / energy breakdown the
paper's History Tables are built from.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.hardware.work import WorkUnit
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.workloads.spec import BlockSegment, InvocationSpec, RunSegment

def _next_job_id(env: Environment) -> int:
    """Job ids are allocated per environment, starting at 0 each run.

    A process-global counter would leak across runs: the second cluster
    of an experiment would number its jobs from where the first stopped,
    and two identical runs would record different ids in their traces.
    Per-run ids keep the within-run ordering (all seniority tie-breaking
    is unchanged) while making every run's ids — and therefore its trace
    file — reproducible.
    """
    counter = getattr(env, "_job_ids", None)
    if counter is None:
        counter = env._job_ids = itertools.count()
    return next(counter)


class Job:
    """One function invocation moving through a node."""

    def __init__(self, env: Environment, spec: InvocationSpec,
                 benchmark: str, arrival_s: float,
                 deadline_s: Optional[float] = None,
                 setup_work: Optional[WorkUnit] = None,
                 seniority_time_s: Optional[float] = None):
        if arrival_s < 0:
            raise ValueError(f"negative arrival time {arrival_s}")
        self.env = env
        self.job_id = _next_job_id(env)
        self.spec = spec
        self.benchmark = benchmark
        self.arrival_s = arrival_s
        #: Absolute completion deadline (None = no deadline / best effort).
        self.deadline_s = deadline_s
        #: Cold-start work to execute before the first run segment.
        self.setup_work = setup_work
        self.cold_start = setup_work is not None
        #: Called once when the cold-start setup completes (container ready).
        self.on_setup_done: Optional[callable] = None
        #: Prewarm pseudo-jobs boot a container but carry no real work;
        #: they are excluded from latency metrics and profiling.
        self.is_prewarm = False
        #: Set when a node crash killed this attempt: it will never run to
        #: completion, and late wake-ups (block timers, container events)
        #: must ignore it.
        self.aborted = False
        #: Set when the frontend gave up on this attempt (per-invocation
        #: timeout, or it lost a hedge race) while it keeps executing; its
        #: completion is wasted work charged to retry energy.
        self.abandoned = False
        #: Set when the cancellation layer (repro.cancel) killed this
        #: attempt: unlike ``abandoned`` it stops executing — the pool
        #: removed it — and its remaining energy is reclaimed. Always
        #: False when no CancelConfig is armed.
        self.cancelled = False
        #: Absolute doom line attached by repro.cancel (workflow SLO
        #: deadline + slack). None = never doom-checked.
        self.doom_deadline_s: Optional[float] = None
        #: Retry attempt index assigned by the reliability layer (0 = the
        #: first try).
        self.attempt = 0
        #: Optional corrective-action hook (paper Section V): called by the
        #: scheduler at every dispatch with the planned frequency; returns
        #: the (possibly raised) frequency to actually run at, letting the
        #: system recover from queueing mispredictions mid-flight.
        self.dispatch_correction: Optional[callable] = None

        #: Seniority for old-preempts-young. An invocation belonging to a
        #: multi-function application inherits the *application's* arrival
        #: time (a late-stage function of an old request is an old job),
        #: with the id as a deterministic tie-breaker.
        base = arrival_s if seniority_time_s is None else seniority_time_s
        self.seniority = (base, self.job_id)

        # Segment cursor. -1 = setup work pending.
        self._segment_index = -1 if setup_work is not None else 0
        self._current_work: Optional[WorkUnit] = None

        # Measured breakdown.
        self.t_queue = 0.0
        self.t_run = 0.0
        self.t_block = 0.0
        self.energy_j = 0.0
        self._queue_entered: Optional[float] = None
        #: Run-seconds spent at each frequency (Fig. 15 histogram data).
        self.freq_run_seconds: Dict[float, float] = {}
        self._running_at: Optional[float] = None

        #: Chosen dispatch frequency (set by the system when it decides).
        self.chosen_freq_ghz: Optional[float] = None
        #: Expected on-core seconds registered with the FPS (EWT bookkeeping).
        self.registered_run_seconds: Optional[float] = None
        #: Set when the dispatcher had to boost this job to meet its deadline.
        self.boosted = False
        #: Set when the job would have fit a lower-frequency pool that did
        #: not exist (elastic-pool demotion signal).
        self.wanted_lower_freq = False

        self.completion_time: Optional[float] = None
        self.done = Event(env)
        env.trace.invocation_begin(self.job_id, self.function_name,
                                   benchmark=benchmark,
                                   arrival_s=arrival_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Job {self.job_id} {self.function_name}"
                f" seg={self._segment_index}>")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def function_name(self) -> str:
        return self.spec.function_name

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    # ------------------------------------------------------------------
    # Segment cursor (driven by the scheduler)
    # ------------------------------------------------------------------
    def current_work(self) -> WorkUnit:
        """The run work the scheduler should execute next.

        The work unit persists across preemptions (it is consumed in
        place), so calling this repeatedly during one segment returns the
        same partially-consumed unit.
        """
        if self.finished:
            raise RuntimeError(f"{self!r} already finished")
        if self._current_work is None:
            if self._segment_index == -1:
                self._current_work = self.setup_work
            else:
                segment = self.spec.segments[self._segment_index]
                if not isinstance(segment, RunSegment):
                    raise RuntimeError(
                        f"{self!r} is at a block segment, not runnable")
                self._current_work = segment.work
        return self._current_work

    def advance(self) -> Optional[BlockSegment]:
        """Move past the just-completed run segment.

        Returns the following block segment if the job now blocks, or None
        if the job is complete (the caller marks completion) or the next
        segment is a run segment (setup → first run).
        """
        if self._current_work is None or not self._current_work.done:
            raise RuntimeError(
                f"{self!r}: advance() before the current work finished")
        was_setup = self._segment_index == -1
        self._current_work = None
        self._segment_index += 1
        if was_setup and self.on_setup_done is not None:
            self.on_setup_done()
        if self._segment_index >= len(self.spec.segments):
            return None
        segment = self.spec.segments[self._segment_index]
        if isinstance(segment, BlockSegment):
            return segment
        return None

    def skip_block(self) -> None:
        """Move the cursor past the current block segment (after waiting)."""
        segment = self.spec.segments[self._segment_index]
        if not isinstance(segment, BlockSegment):
            raise RuntimeError(f"{self!r} is not at a block segment")
        self._segment_index += 1

    @property
    def is_complete(self) -> bool:
        """True when the cursor has moved past the last segment."""
        return self._segment_index >= len(self.spec.segments)

    def remaining_run_seconds(self, freq_ghz: float) -> float:
        """Ground-truth on-core seconds left at ``freq_ghz`` (oracle view)."""
        total = 0.0
        if self._current_work is not None:
            total += self._current_work.duration(freq_ghz)
        elif self._segment_index == -1 and self.setup_work is not None:
            total += self.setup_work.duration(freq_ghz)
        elif (not self.is_complete
              and isinstance(self.spec.segments[self._segment_index],
                             RunSegment)):
            total += self.spec.segments[self._segment_index].work.duration(
                freq_ghz)
        for segment in self.spec.segments[max(self._segment_index + 1, 0):]:
            if isinstance(segment, RunSegment):
                total += segment.work.duration(freq_ghz)
        return total

    # ------------------------------------------------------------------
    # Accounting hooks
    # ------------------------------------------------------------------
    def record_run(self, dt: float, joules: float) -> None:
        """Called by the core while this job executes (sink protocol)."""
        self.t_run += dt
        self.energy_j += joules
        if self._running_at is not None:
            self.freq_run_seconds[self._running_at] = (
                self.freq_run_seconds.get(self._running_at, 0.0) + dt)

    def note_dispatch(self, freq_ghz: float) -> None:
        """Close the queueing interval: the job starts running."""
        if self._queue_entered is not None:
            self.t_queue += self.env.now - self._queue_entered
            self._queue_entered = None
        self._running_at = freq_ghz
        self.env.trace.phase(
            self.job_id,
            "cold_start" if self._segment_index == -1 else "run",
            freq_ghz=freq_ghz)

    def note_enqueue(self, pool: Optional[str] = None) -> None:
        """Open a queueing interval: the job waits for a core in ``pool``."""
        if self._queue_entered is None:
            self._queue_entered = self.env.now
            if pool is None:
                self.env.trace.phase(self.job_id, "queue")
            else:
                self.env.trace.phase(self.job_id, "queue", pool=pool)
        self._running_at = None

    def note_block(self, seconds: float) -> None:
        self.t_block += seconds
        self._running_at = None
        self.env.trace.phase(self.job_id, "block", seconds=seconds)

    def complete(self) -> None:
        """Mark the job finished and fire its completion event."""
        if self.finished:
            raise RuntimeError(f"{self!r} completed twice")
        if self.aborted:
            raise RuntimeError(f"{self!r} was aborted; it cannot complete")
        if not self.is_complete:
            raise RuntimeError(f"{self!r} has segments left")
        if self.env.verify.enabled:
            # Cancelled work must never run to completion; deliberately
            # not an exception so the verifier (not a crash) reports a
            # cancel-leak as a first-class invariant violation.
            self.env.verify.on_job_complete(self)
        self.completion_time = self.env.now
        if self.env.trace.enabled:
            self.env.trace.invocation_end(
                self.job_id, "completed",
                latency_s=self.latency_s, t_queue=self.t_queue,
                t_run=self.t_run, t_block=self.t_block,
                energy_j=self.energy_j, cold_start=self.cold_start,
                prewarm=self.is_prewarm, abandoned=self.abandoned,
                met_deadline=self.met_deadline, attempt=self.attempt,
                chosen_freq_ghz=self.chosen_freq_ghz)
        self.done.succeed(self)

    def abort(self) -> None:
        """Kill this attempt (node crash): it will never complete.

        The ``done`` event still fires — with the job as payload — so a
        reliability loop waiting on it wakes up and can re-dispatch;
        ``finished`` stays False, which is how waiters tell success from
        loss. Idempotent.
        """
        if self.finished:
            raise RuntimeError(f"{self!r} already finished; cannot abort")
        self.aborted = True
        if self.env.trace.enabled:
            # Idempotent like abort itself: a duplicate end is ignored.
            self.env.trace.invocation_end(
                self.job_id, "aborted",
                t_queue=self.t_queue, t_run=self.t_run,
                t_block=self.t_block, energy_j=self.energy_j,
                cold_start=self.cold_start, prewarm=self.is_prewarm,
                attempt=self.attempt)
        if not self.done.triggered:
            self.done.succeed(self)

    def cancel(self) -> None:
        """Kill this attempt deliberately (repro.cancel): it is doomed.

        Same contract as :meth:`abort` — the ``done`` event fires with
        the job as payload so waiting loops wake, and ``finished`` stays
        False — but the distinct flag keeps crash losses and deliberate
        kills separable in metrics and the energy ledger. Idempotent.
        """
        if self.finished:
            raise RuntimeError(f"{self!r} already finished; cannot cancel")
        self.cancelled = True
        if self.env.trace.enabled:
            self.env.trace.invocation_end(
                self.job_id, "cancelled",
                t_queue=self.t_queue, t_run=self.t_run,
                t_block=self.t_block, energy_j=self.energy_j,
                cold_start=self.cold_start, prewarm=self.is_prewarm,
                attempt=self.attempt)
        if not self.done.triggered:
            self.done.succeed(self)

    # ------------------------------------------------------------------
    # Derived results
    # ------------------------------------------------------------------
    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival to completion)."""
        if self.completion_time is None:
            raise RuntimeError(f"{self!r} has not completed")
        return self.completion_time - self.arrival_s

    @property
    def met_deadline(self) -> bool:
        if self.completion_time is None:
            raise RuntimeError(f"{self!r} has not completed")
        if self.deadline_s is None:
            return True
        return self.completion_time <= self.deadline_s + 1e-9
