"""Run metrics: per-function and end-to-end records, percentiles, rollups."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.platform.job import Job


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0-100) of ``values``."""
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    if len(values) == 0:
        raise ValueError("cannot take a percentile of nothing")
    return float(np.percentile(np.asarray(values, dtype=float), p))


@dataclass(frozen=True)
class FunctionRecord:
    """The measured outcome of one function invocation."""

    benchmark: str
    function: str
    arrival_s: float
    latency_s: float
    t_queue_s: float
    t_run_s: float
    t_block_s: float
    energy_j: float
    cold_start: bool
    chosen_freq_ghz: Optional[float]
    met_deadline: bool
    freq_run_seconds: Dict[float, float]

    @classmethod
    def from_job(cls, job: Job) -> "FunctionRecord":
        return cls(
            benchmark=job.benchmark,
            function=job.function_name,
            arrival_s=job.arrival_s,
            latency_s=job.latency_s,
            t_queue_s=job.t_queue,
            t_run_s=job.t_run,
            t_block_s=job.t_block,
            energy_j=job.energy_j,
            cold_start=job.cold_start,
            chosen_freq_ghz=job.chosen_freq_ghz,
            met_deadline=job.met_deadline,
            freq_run_seconds=dict(job.freq_run_seconds),
        )


@dataclass(frozen=True)
class WorkflowRecord:
    """The measured outcome of one end-to-end application invocation."""

    benchmark: str
    arrival_s: float
    latency_s: float
    slo_s: float

    @property
    def met_slo(self) -> bool:
        return self.latency_s <= self.slo_s + 1e-9


class MetricsCollector:
    """Accumulates records during a run and answers rollup queries."""

    def __init__(self) -> None:
        self.function_records: List[FunctionRecord] = []
        self.workflow_records: List[WorkflowRecord] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_job(self, job: Job) -> None:
        self.function_records.append(FunctionRecord.from_job(job))

    def record_workflow(self, benchmark: str, arrival_s: float,
                        latency_s: float, slo_s: float) -> None:
        self.workflow_records.append(
            WorkflowRecord(benchmark, arrival_s, latency_s, slo_s))

    # ------------------------------------------------------------------
    # End-to-end rollups (what the figures report)
    # ------------------------------------------------------------------
    def _workflow_latencies(self, benchmark: Optional[str]) -> List[float]:
        return [r.latency_s for r in self.workflow_records
                if benchmark is None or r.benchmark == benchmark]

    def latency_avg(self, benchmark: Optional[str] = None) -> float:
        values = self._workflow_latencies(benchmark)
        if not values:
            raise ValueError(f"no workflow records for {benchmark!r}")
        return float(np.mean(values))

    def latency_p99(self, benchmark: Optional[str] = None) -> float:
        """Tail latency as the paper defines it (99th percentile)."""
        values = self._workflow_latencies(benchmark)
        if not values:
            raise ValueError(f"no workflow records for {benchmark!r}")
        return percentile(values, 99.0)

    def slo_violation_rate(self, benchmark: Optional[str] = None) -> float:
        records = [r for r in self.workflow_records
                   if benchmark is None or r.benchmark == benchmark]
        if not records:
            raise ValueError(f"no workflow records for {benchmark!r}")
        return sum(1 for r in records if not r.met_slo) / len(records)

    def completed_workflows(self, benchmark: Optional[str] = None) -> int:
        return len([r for r in self.workflow_records
                    if benchmark is None or r.benchmark == benchmark])

    def benchmarks(self) -> List[str]:
        """Benchmarks seen, alphabetical."""
        return sorted({r.benchmark for r in self.workflow_records})

    # ------------------------------------------------------------------
    # Function-level rollups
    # ------------------------------------------------------------------
    def function_energy_j(self, benchmark: Optional[str] = None) -> float:
        """Per-invocation (core-attributed) energy summed over records."""
        return sum(r.energy_j for r in self.function_records
                   if benchmark is None or r.benchmark == benchmark)

    def cold_start_count(self, benchmark: Optional[str] = None) -> int:
        return sum(1 for r in self.function_records if r.cold_start
                   and (benchmark is None or r.benchmark == benchmark))

    def deadline_miss_rate(self) -> float:
        if not self.function_records:
            raise ValueError("no function records")
        return (sum(1 for r in self.function_records if not r.met_deadline)
                / len(self.function_records))

    def mean_breakdown(self, benchmark: Optional[str] = None) -> Dict[str, float]:
        """Mean T_Queue / T_Run / T_Block across function records."""
        records = [r for r in self.function_records
                   if benchmark is None or r.benchmark == benchmark]
        if not records:
            raise ValueError(f"no function records for {benchmark!r}")
        return {
            "t_queue": float(np.mean([r.t_queue_s for r in records])),
            "t_run": float(np.mean([r.t_run_s for r in records])),
            "t_block": float(np.mean([r.t_block_s for r in records])),
        }

    def frequency_histogram(self) -> Dict[float, int]:
        """Invocations per chosen dispatch frequency (Fig. 15)."""
        histogram: Dict[float, int] = defaultdict(int)
        for record in self.function_records:
            if record.chosen_freq_ghz is not None:
                histogram[record.chosen_freq_ghz] += 1
        return dict(histogram)

    def frequency_time_histogram(self) -> Dict[float, float]:
        """Run-seconds accumulated at each frequency across invocations."""
        histogram: Dict[float, float] = defaultdict(float)
        for record in self.function_records:
            for freq, seconds in record.freq_run_seconds.items():
                histogram[freq] += seconds
        return dict(histogram)
