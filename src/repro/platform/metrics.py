"""Run metrics: per-function and end-to-end records, percentiles, rollups."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.platform.job import Job


def percentile(values: Iterable[float], p: float) -> float:
    """The p-th percentile (0-100) of ``values``.

    Accepts any iterable — lists, tuples, numpy arrays, and one-shot
    generators are all coerced to a flat float array first. An empty
    ``values`` yields NaN — "no data", distinguishable from a genuine
    0.0 latency — so partial runs (e.g. chaos experiments where a
    benchmark never completed) roll up without raising.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {p}")
    if not hasattr(values, "__len__"):
        values = list(values)  # a generator supports neither len nor reuse
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, p))


@dataclass(frozen=True)
class FunctionRecord:
    """The measured outcome of one function invocation."""

    benchmark: str
    function: str
    arrival_s: float
    latency_s: float
    t_queue_s: float
    t_run_s: float
    t_block_s: float
    energy_j: float
    cold_start: bool
    chosen_freq_ghz: Optional[float]
    met_deadline: bool
    freq_run_seconds: Dict[float, float]

    @classmethod
    def from_job(cls, job: Job) -> "FunctionRecord":
        return cls(
            benchmark=job.benchmark,
            function=job.function_name,
            arrival_s=job.arrival_s,
            latency_s=job.latency_s,
            t_queue_s=job.t_queue,
            t_run_s=job.t_run,
            t_block_s=job.t_block,
            energy_j=job.energy_j,
            cold_start=job.cold_start,
            chosen_freq_ghz=job.chosen_freq_ghz,
            met_deadline=job.met_deadline,
            freq_run_seconds=dict(job.freq_run_seconds),
        )


@dataclass(frozen=True)
class WorkflowRecord:
    """The measured outcome of one end-to-end application invocation."""

    benchmark: str
    arrival_s: float
    latency_s: float
    slo_s: float

    @property
    def met_slo(self) -> bool:
        return self.latency_s <= self.slo_s + 1e-9


class MetricsCollector:
    """Accumulates records during a run and answers rollup queries.

    One collector belongs to one run: every :class:`Cluster` constructs a
    fresh instance. A collector that *is* reused across runs (custom
    harnesses carrying one through a sweep) must call :meth:`reset`
    between them, or reliability counters from one run leak into the
    next's rollups.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every record list and counter (reuse across runs)."""
        self.function_records: List[FunctionRecord] = []
        self.workflow_records: List[WorkflowRecord] = []
        # Reliability counters (repro.faults). All stay zero on fault-free
        # runs.
        #: Re-dispatched attempts (the frontend retried an invocation).
        self.retries = 0
        #: Hedged duplicate attempts launched.
        self.hedges = 0
        #: Attempts written off by the per-invocation timeout.
        self.timeouts = 0
        #: Injected faults that actually hit something, by kind.
        self.failures: Dict[str, int] = {}
        #: Outage durations of every completed crash→reboot cycle.
        self.recovery_times_s: List[float] = []
        #: In-flight (non-prewarm) jobs aborted by node crashes.
        self.jobs_lost_to_crash = 0
        #: Crash-lost jobs whose invocation was later completed by another
        #: attempt (re-dispatch or a surviving hedge).
        self.crash_redispatches = 0
        #: Invocations abandoned after exhausting every retry.
        self.lost_invocations = 0
        #: Workflows that failed because one invocation was lost for good.
        self.failed_workflows = 0
        #: Energy burned by attempts that did not produce the result used:
        #: crash-lost partial executions plus abandoned attempts that ran
        #: to completion anyway.
        self.retry_energy_j = 0.0
        #: Abandoned attempts that finished executing after being written
        #: off.
        self.abandoned_completions = 0
        # Guard counters (repro.guard). All stay zero on unguarded runs.
        #: Workflows shed at admission, by reason (brownout / rate_limit /
        #: overload).
        self.shed_workflows: Dict[str, int] = {}
        #: Workflows shed at admission, by benchmark.
        self.shed_by_benchmark: Dict[str, int] = {}
        #: Circuit-breaker trips (closed/half-open -> open).
        self.breaker_opens = 0
        #: Invocations failed fast because their function's breaker was
        #: open.
        self.breaker_fast_fails = 0
        #: Pathological predictions caught and replaced by the guard.
        self.mispredictions = 0
        #: MILP solves that hit the node budget and fell back to the
        #: proportional split.
        self.milp_fallbacks = 0
        #: Dispatches pinned to the top frequency on a stale profile.
        self.freq_pins = 0
        #: Controller checkpoints snapshotted.
        self.checkpoints_taken = 0
        #: Reboots resumed from a fresh checkpoint.
        self.checkpoint_restores = 0
        #: Stuck control loops kicked by the watchdog.
        self.watchdog_kicks = 0
        # High-availability counters (repro.ha). All stay zero without an
        # HAConfig.
        #: Heartbeats dropped because the node was down or its uplink cut.
        self.ha_heartbeats_lost = 0
        #: Membership transitions alive -> suspected.
        self.ha_suspicions = 0
        #: Suspicions of nodes whose process was actually alive.
        self.ha_false_suspicions = 0
        #: Per-suspicion delay from the first missed heartbeat, seconds.
        self.ha_suspicion_latencies_s: List[float] = []
        #: Stranded invocations re-dispatched via the idempotency journal.
        self.ha_redispatches = 0
        #: Surviving duplicate copies fenced when a re-dispatched key won.
        self.ha_duplicates_fenced = 0
        #: Completions recorded for an already-completed key (must stay 0).
        self.ha_duplicate_completions = 0
        #: Stale-epoch control decisions rejected by consumers.
        self.ha_fenced_decisions = 0
        #: Control decisions frozen because no believed leader was
        #: reachable from the consumer.
        self.ha_frozen_decisions = 0
        #: Leader elections after a lease expiry.
        self.ha_failovers = 0
        #: Per-failover delay from leader loss to the new lease, seconds.
        self.ha_failover_times_s: List[float] = []
        #: Successful leader lease renewals.
        self.ha_lease_renewals = 0
        #: Breaker charges skipped because the failing node was suspected
        #: (the node's fault, not the function's).
        self.breaker_node_blames = 0
        # Tenancy counters (repro.tenancy). All stay zero without a
        # TenancyConfig.
        #: Budget-enforcement decisions (sheds, throttled admits, drops).
        self.tenant_throttles = 0
        #: Power-cap governor actuation changes (tightens + releases).
        self.power_cap_steps = 0
        #: Actuation steps that tightened the ladder (draw over cap).
        self.power_cap_tightens = 0
        #: Actuation steps that released the ladder (draw under the
        #: release threshold).
        self.power_cap_releases = 0
        # Cancellation counters (repro.cancel). All stay zero without a
        # CancelConfig.
        #: In-flight attempts the cancel layer killed (hedged losers,
        #: timed-out attempts, doomed siblings, dequeue drops).
        self.cancelled_attempts = 0
        #: Joules those attempts had already burned when killed (charged
        #: work — the ledger's ``cancelled`` bucket).
        self.cancelled_energy_j = 0.0
        #: Estimated run-seconds reclaimed by killing them early (oracle
        #: remaining work at the top frequency).
        self.cancelled_reclaimed_s = 0.0
        #: Queued jobs dropped at dispatch because their remaining work
        #: could no longer fit before the doom line.
        self.doomed_drops = 0
        #: Workflows written off mid-chain once their doom line passed
        #: (a sub-count of ``failed_workflows``).
        self.doomed_workflows = 0
        #: Retries denied because the cluster-wide token window was spent.
        self.retry_budget_denials = 0
        #: Retry tokens retired because the granted retry never dispatched.
        self.retry_budget_refunds = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_job(self, job: Job) -> None:
        if job.abandoned:
            # A written-off attempt ran to completion anyway: its energy is
            # retry waste, and it must not contribute a latency record (the
            # winning attempt already did, or the invocation was lost).
            self.retry_energy_j += job.energy_j
            self.abandoned_completions += 1
            return
        self.function_records.append(FunctionRecord.from_job(job))

    def record_workflow(self, benchmark: str, arrival_s: float,
                        latency_s: float, slo_s: float) -> None:
        self.workflow_records.append(
            WorkflowRecord(benchmark, arrival_s, latency_s, slo_s))

    def record_retry(self) -> None:
        self.retries += 1

    def record_hedge(self) -> None:
        self.hedges += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def record_failure(self, kind: str) -> None:
        self.failures[kind] = self.failures.get(kind, 0) + 1

    def record_crash(self, lost_jobs: int, lost_energy_j: float) -> None:
        """A node crashed, killing ``lost_jobs`` in-flight jobs."""
        self.record_failure("node_crash")
        self.jobs_lost_to_crash += lost_jobs
        self.retry_energy_j += lost_energy_j

    def record_recovery(self, downtime_s: float) -> None:
        """A crashed node finished rebooting after ``downtime_s``."""
        if downtime_s < 0:
            raise ValueError(f"negative downtime {downtime_s}")
        self.recovery_times_s.append(downtime_s)

    def record_workflow_failure(self, benchmark: str) -> None:
        self.failed_workflows += 1
        self.record_failure(f"workflow:{benchmark}")

    def record_workflow_doomed(self, benchmark: str) -> None:
        """A workflow was written off as doomed (repro.cancel).

        Doomed is a sub-case of failed — it counts into both, so the
        lifecycle-conservation equation is unchanged by the cancel layer.
        """
        self.failed_workflows += 1
        self.doomed_workflows += 1
        self.record_failure(f"workflow:{benchmark}")

    def record_shed(self, benchmark: str, reason: str) -> None:
        """Admission control dropped one workflow arrival."""
        self.shed_workflows[reason] = self.shed_workflows.get(reason, 0) + 1
        self.shed_by_benchmark[benchmark] = (
            self.shed_by_benchmark.get(benchmark, 0) + 1)

    def shed_count(self, reason: Optional[str] = None) -> int:
        if reason is not None:
            return self.shed_workflows.get(reason, 0)
        return sum(self.shed_workflows.values())

    # ------------------------------------------------------------------
    # Reliability rollups
    # ------------------------------------------------------------------
    def mttr_s(self) -> float:
        """Mean time to recover across crash→reboot cycles (0.0 if none)."""
        if not self.recovery_times_s:
            return 0.0
        return float(np.mean(self.recovery_times_s))

    def failure_count(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return self.failures.get(kind, 0)
        return sum(self.failures.values())

    # ------------------------------------------------------------------
    # High-availability rollups (repro.ha)
    # ------------------------------------------------------------------
    def ha_false_positive_rate(self) -> float:
        """Fraction of suspicions whose node was actually alive."""
        if self.ha_suspicions == 0:
            return 0.0
        return self.ha_false_suspicions / self.ha_suspicions

    def ha_mean_suspicion_latency_s(self) -> float:
        """Mean first-missed-heartbeat -> suspicion delay (0.0 if none)."""
        if not self.ha_suspicion_latencies_s:
            return 0.0
        return float(np.mean(self.ha_suspicion_latencies_s))

    def ha_mean_failover_s(self) -> float:
        """Mean leader-loss -> new-lease delay (0.0 if none)."""
        if not self.ha_failover_times_s:
            return 0.0
        return float(np.mean(self.ha_failover_times_s))

    # ------------------------------------------------------------------
    # End-to-end rollups (what the figures report)
    # ------------------------------------------------------------------
    def _workflow_latencies(self, benchmark: Optional[str]) -> List[float]:
        return [r.latency_s for r in self.workflow_records
                if benchmark is None or r.benchmark == benchmark]

    def latency_avg(self, benchmark: Optional[str] = None) -> float:
        """Mean end-to-end latency; 0.0 when no workflow completed."""
        values = self._workflow_latencies(benchmark)
        if not values:
            return 0.0
        return float(np.mean(values))

    def latency_p99(self, benchmark: Optional[str] = None) -> float:
        """Tail latency as the paper defines it (99th percentile).

        NaN when no workflow completed (see :func:`percentile`).
        """
        values = self._workflow_latencies(benchmark)
        return percentile(values, 99.0)

    def slo_violation_rate(self, benchmark: Optional[str] = None) -> float:
        """Fraction of completed workflows that blew their SLO.

        0.0 when no workflow completed (nothing violated nothing).
        """
        records = [r for r in self.workflow_records
                   if benchmark is None or r.benchmark == benchmark]
        if not records:
            return 0.0
        return sum(1 for r in records if not r.met_slo) / len(records)

    def completed_workflows(self, benchmark: Optional[str] = None) -> int:
        return len([r for r in self.workflow_records
                    if benchmark is None or r.benchmark == benchmark])

    def benchmarks(self) -> List[str]:
        """Benchmarks seen, alphabetical."""
        return sorted({r.benchmark for r in self.workflow_records})

    def bench_summary(self) -> Dict[str, object]:
        """The seed-deterministic metrics ``repro bench`` fingerprints.

        The p99 is None (rather than NaN) when nothing completed, so the
        summary serializes to strict JSON.
        """
        p99 = self.latency_p99()
        return {
            "p99_latency_s": (round(p99, 6) if p99 == p99 else None),
            "slo_miss_rate": round(self.slo_violation_rate(), 6),
            "completed": self.completed_workflows(),
        }

    # ------------------------------------------------------------------
    # Function-level rollups
    # ------------------------------------------------------------------
    def function_energy_j(self, benchmark: Optional[str] = None) -> float:
        """Per-invocation (core-attributed) energy summed over records."""
        return sum(r.energy_j for r in self.function_records
                   if benchmark is None or r.benchmark == benchmark)

    def cold_start_count(self, benchmark: Optional[str] = None) -> int:
        return sum(1 for r in self.function_records if r.cold_start
                   and (benchmark is None or r.benchmark == benchmark))

    def deadline_miss_rate(self) -> float:
        """Fraction of invocations missing their deadline; 0.0 if none ran."""
        if not self.function_records:
            return 0.0
        return (sum(1 for r in self.function_records if not r.met_deadline)
                / len(self.function_records))

    def mean_breakdown(self, benchmark: Optional[str] = None) -> Dict[str, float]:
        """Mean T_Queue / T_Run / T_Block across function records.

        All-zero when no invocation completed.
        """
        records = [r for r in self.function_records
                   if benchmark is None or r.benchmark == benchmark]
        if not records:
            return {"t_queue": 0.0, "t_run": 0.0, "t_block": 0.0}
        return {
            "t_queue": float(np.mean([r.t_queue_s for r in records])),
            "t_run": float(np.mean([r.t_run_s for r in records])),
            "t_block": float(np.mean([r.t_block_s for r in records])),
        }

    def frequency_histogram(self) -> Dict[float, int]:
        """Invocations per chosen dispatch frequency (Fig. 15)."""
        histogram: Dict[float, int] = defaultdict(int)
        for record in self.function_records:
            if record.chosen_freq_ghz is not None:
                histogram[record.chosen_freq_ghz] += 1
        return dict(histogram)

    def frequency_time_histogram(self) -> Dict[float, float]:
        """Run-seconds accumulated at each frequency across invocations."""
        histogram: Dict[float, float] = defaultdict(float)
        for record in self.function_records:
            for freq, seconds in record.freq_run_seconds.items():
                histogram[freq] += seconds
        return dict(histogram)
