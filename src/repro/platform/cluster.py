"""Cluster assembly: servers, load balancer, and the workflow engine.

The cluster plays the role of the Frontend + Load Balancer of Fig. 1/8 and
drives invocation traces through application workflows: every trace event
starts a workflow; each stage's functions are dispatched (least-loaded node
first) and the stage completes when its slowest member finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.frequency import FrequencyScale
from repro.hardware.power import PowerModel
from repro.hardware.server import Server
from repro.platform.metrics import MetricsCollector
from repro.platform.system import ClusterSystem, NodeSystem
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.traces.trace import Trace
from repro.workloads.applications import Workflow
from repro.workloads.registry import workflow_for


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (defaults match Section VII)."""

    n_servers: int = 5
    cores_per_server: int = 20
    slo_multiple: float = 5.0
    seed: int = 0
    scale: FrequencyScale = field(default_factory=FrequencyScale)
    power: PowerModel = field(default_factory=PowerModel)
    #: Extra simulated seconds after the trace ends to drain in-flight work.
    drain_s: float = 5.0
    #: Input-feature dispersion passed to invocation sampling (Fig. 22).
    input_dispersion: float = 1.0
    #: Heterogeneous machine mix (Section VI-E3): a sequence of
    #: ``(machine_type, ipc_factor)`` pairs cycled over the servers.
    #: None = all servers are identical ("haswell", 1.0).
    machine_mix: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        if self.cores_per_server < 1:
            raise ValueError("need at least one core per server")
        if self.slo_multiple <= 0:
            raise ValueError("SLO multiple must be positive")
        if self.drain_s < 0:
            raise ValueError("drain must be non-negative")


class Cluster:
    """A cluster running one serverless system."""

    def __init__(self, env: Environment, system: ClusterSystem,
                 config: Optional[ClusterConfig] = None):
        self.env = env
        self.system = system
        self.config = config or ClusterConfig()
        self.metrics = MetricsCollector()
        self.rng = RngRegistry(self.config.seed)
        mix = self.config.machine_mix or (("haswell", 1.0),)
        self.servers: List[Server] = [
            Server(env, server_id=i, n_cores=self.config.cores_per_server,
                   scale=self.config.scale, power=self.config.power,
                   machine_type=mix[i % len(mix)][0],
                   ipc_factor=mix[i % len(mix)][1])
            for i in range(self.config.n_servers)
        ]
        self.nodes: List[NodeSystem] = [
            system.make_node(env, server, self.metrics, self.rng)
            for server in self.servers
        ]
        self._rr_index = 0
        #: Workflows in flight (for drain diagnostics).
        self.inflight = 0

    # ------------------------------------------------------------------
    # Load balancing (Fig. 1's Cluster Controller)
    # ------------------------------------------------------------------
    def pick_node(self) -> NodeSystem:
        """Least outstanding jobs; round-robin among ties."""
        best = min(node.outstanding for node in self.nodes)
        candidates = [i for i, node in enumerate(self.nodes)
                      if node.outstanding == best]
        choice = candidates[self._rr_index % len(candidates)]
        self._rr_index += 1
        return self.nodes[choice]

    # ------------------------------------------------------------------
    # Workflow engine
    # ------------------------------------------------------------------
    def submit_workflow(self, workflow: Workflow) -> None:
        """Start one end-to-end application invocation now."""
        self.env.process(self._run_workflow(workflow, self.env.now),
                         name=f"wf-{workflow.name}")

    def _run_workflow(self, workflow: Workflow, arrival_s: float):
        slo_s = workflow.slo_seconds(self.config.slo_multiple)
        deadlines = self.system.function_deadlines(workflow, arrival_s, slo_s)
        self.system.on_workflow_arrival(self, workflow, arrival_s, deadlines)
        self.inflight += 1
        try:
            for stage in workflow.stages:
                jobs = []
                for fn_model in stage.functions:
                    spec = fn_model.sample_invocation(
                        self.rng.stream(f"inputs/{fn_model.name}"),
                        dispersion=self.config.input_dispersion)
                    deadline = (deadlines.get(fn_model.name)
                                if deadlines is not None else None)
                    node = self.pick_node()
                    jobs.append(node.submit(
                        fn_model, spec, deadline, workflow.name,
                        seniority_time_s=arrival_s))
                yield self.env.all_of([job.done for job in jobs])
            self.metrics.record_workflow(
                workflow.name, arrival_s, self.env.now - arrival_s, slo_s)
        finally:
            self.inflight -= 1

    # ------------------------------------------------------------------
    # Trace driving
    # ------------------------------------------------------------------
    def _drive(self, trace: Trace,
               workflows: Dict[str, Workflow]):
        for event in trace:
            delay = event.time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.submit_workflow(workflows[event.benchmark])

    def run_trace(self, trace: Trace,
                  workflows: Optional[Dict[str, Workflow]] = None) -> None:
        """Run a full trace to completion (plus the drain window)."""
        if workflows is None:
            workflows = {name: workflow_for(name)
                         for name in trace.invocation_counts()}
        missing = set(trace.invocation_counts()) - set(workflows)
        if missing:
            raise ValueError(f"trace references unknown workflows: {missing}")
        self.env.process(self._drive(trace, workflows), name="trace-driver")
        self.env.run(until=self.env.now + trace.duration_s
                     + self.config.drain_s)
        self.finalize()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        for node in self.nodes:
            node.finalize()

    @property
    def total_energy_j(self) -> float:
        """Whole-cluster metered energy (call after finalize)."""
        return sum(server.total_energy_j for server in self.servers)

    def energy_by_benchmark(self) -> Dict[str, float]:
        """Core-attributed energy per benchmark across all servers."""
        totals: Dict[str, float] = {}
        for server in self.servers:
            for consumer, joules in server.meter.by_consumer().items():
                totals[consumer] = totals.get(consumer, 0.0) + joules
        return totals

    def energy_by_component(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for server in self.servers:
            for component, joules in server.meter.by_component().items():
                totals[component] = totals.get(component, 0.0) + joules
        return totals
